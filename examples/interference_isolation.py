#!/usr/bin/env python
"""Performance isolation under memory pressure (the Fig. 9 story).

Pins 16 cores to an Intel-MLC-style memory hammer and serves 4 KB
writes with the remaining resources, for a CPU-only tier and a
SmartDS-1 tier sharing the host's memory subsystem. The CPU-only tier
collapses as pressure rises; SmartDS doesn't budge — performance
isolation without partitioning memory bandwidth or cache.

Run:  python examples/interference_isolation.py
"""

from repro.experiments.common import measure_design
from repro.telemetry.reporting import format_table
from repro.units import usec

PRESSURE_LEVELS = [
    ("off", None),
    ("light (20 us delay)", usec(20)),
    ("medium (5 us delay)", usec(5)),
    ("maximum (no delay)", 0.0),
]


def main():
    rows = []
    for design, workers in (("CPU-only", 32), ("SmartDS-1", 2)):
        for label, delay in PRESSURE_LEVELS:
            m = measure_design(
                design,
                n_workers=workers,
                n_requests=2500,
                concurrency=192,
                mlc_threads=0 if delay is None else 16,
                mlc_delay=delay or 0.0,
            )
            rows.append(
                [
                    design,
                    label,
                    round(m.throughput_gbps, 1),
                    round(m.avg_latency_us, 1),
                    round(m.p99_latency_us, 1),
                    round(m.mlc_gbps / 8, 1),
                ]
            )
            print(f"measured {design} with MLC {label}")
    print()
    print(
        format_table(
            ["design", "MLC pressure", "tput (Gb/s)", "avg (us)", "p99 (us)", "MLC (GB/s)"],
            rows,
            title="Write-serving performance while 16 cores hammer memory",
        )
    )
    print(
        "\nSmartDS keeps both its own performance AND lets the background job "
        "take more\nmemory bandwidth - no partitioning needed (paper section 5.3)."
    )


if __name__ == "__main__":
    main()

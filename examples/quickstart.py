#!/usr/bin/env python
"""Quickstart: the paper's Listing 1, runnable.

Builds one SmartDS-equipped middle-tier server, one VM client, and one
storage server, then serves a handful of write requests through the
Table 2 API — split recv, host-side header parsing, hardware-engine
LZ4 compression, mixed send — using *real bytes* from the synthetic
Silesia-like corpus, and finally reads a block back and verifies it
bit-for-bit.

Run:  python examples/quickstart.py
"""

from repro.compression import SilesiaLikeCorpus, lz4_decompress
from repro.core import SmartDsApi, SmartDsDevice
from repro.hostmodel import DdioLlc, MemorySubsystem
from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.params import DEFAULT_PLATFORM
from repro.sim import Simulator
from repro.units import to_usec

HEAD_SIZE = 64
MAX_SIZE = 4096 + 512
N_REQUESTS = 8


def make_endpoint(sim, name):
    port = NetworkPort(sim, rate=DEFAULT_PLATFORM.network.port_rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=DEFAULT_PLATFORM.network)


def main():
    sim = Simulator()
    host_memory = MemorySubsystem.for_host(sim)
    device = SmartDsDevice(sim, host_memory=host_memory, host_llc=DdioLlc())
    api = SmartDsApi(device)

    vm = make_endpoint(sim, "vm0")
    storage = make_endpoint(sim, "storage0")
    blocks = SilesiaLikeCorpus(seed=7, file_size=8192).blocks(4096)[:N_REQUESTS]
    stored = {}  # block_id -> compressed bytes, as the storage server sees them
    log = []

    def middle_tier():
        # --- Listing 1, lines 2-11: buffers and queue pairs -----------------
        h_buf_recv = api.host_alloc(MAX_SIZE)
        h_buf_send = api.host_alloc(MAX_SIZE)
        d_buf_recv = api.dev_alloc(MAX_SIZE)
        d_buf_send = api.dev_alloc(MAX_SIZE)
        ctx = api.open_roce_instance(0)
        qp_recv = vm.connect(ctx.endpoint).peer
        qp_send = ctx.connect_qp(storage)

        for _ in range(N_REQUESTS):
            # --- lines 14-17: split recv --------------------------------------
            e = api.dev_mixed_recv(qp_recv, h_buf_recv, HEAD_SIZE, d_buf_recv, MAX_SIZE)
            yield from api.poll(e)
            payload_size = e.size
            t_recv = sim.now

            # --- lines 19-21: flexible host-side processing ----------------
            parsed = h_buf_recv.content
            h_buf_send.content = {"kind": "storage_write", **parsed}

            if parsed.get("latency_sensitive"):
                # --- lines 24-27: forward the raw block -------------------
                e = api.dev_mixed_send(qp_send, h_buf_send, HEAD_SIZE, d_buf_recv, payload_size)
                yield from api.poll(e)
                log.append((parsed["block_id"], payload_size, payload_size, sim.now - t_recv))
            else:
                # --- lines 29-35: compress on engine 0, then send ---------
                e = api.dev_func(d_buf_recv, payload_size, d_buf_send, MAX_SIZE, ctx.engine)
                yield from api.poll(e)
                compressed_size = e.size
                e = api.dev_mixed_send(
                    qp_send, h_buf_send, HEAD_SIZE, d_buf_send, compressed_size
                )
                yield from api.poll(e)
                log.append(
                    (parsed["block_id"], payload_size, compressed_size, sim.now - t_recv)
                )

    def client():
        qp = vm.queue_pairs[0]
        for block_id, data in enumerate(blocks):
            message = Message(
                kind="write_request",
                src="vm0",
                dst="tier0",
                header_size=HEAD_SIZE,
                payload=Payload.from_bytes(data),
                header={"vm_id": "vm0", "block_id": block_id, "latency_sensitive": False},
            )
            yield qp.send(message)

    def storage_server():
        qp = storage.queue_pairs[0]
        while True:
            message = yield qp.recv()
            stored[message.header["block_id"]] = message.payload.data

    sim.process(middle_tier())
    sim.run(until=1e-9)  # let the middle tier create its queue pairs first
    sim.process(client())
    # Daemon: the storage loop waits for traffic forever by design.
    sim.process(storage_server(), daemon=True)
    sim.run()

    print("block  raw(B)  compressed(B)  ratio  tier latency (us)")
    for block_id, raw, compressed, latency in log:
        print(
            f"{block_id:5d}  {raw:6d}  {compressed:13d}  {raw / compressed:5.2f}"
            f"  {to_usec(latency):8.1f}"
        )

    # Verify what landed on storage decompresses back to the original bytes.
    for block_id, data in enumerate(blocks):
        assert lz4_decompress(stored[block_id]) == data, f"block {block_id} corrupted!"
    print(f"\nall {len(blocks)} blocks verified bit-for-bit on storage")
    print(f"host DRAM bytes touched by payloads: {host_memory.total_bytes}  (AAMS at work)")


if __name__ == "__main__":
    main()

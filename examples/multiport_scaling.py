#!/usr/bin/env python
"""SmartDS multi-port linear scaling (the Fig. 10 / §5.5 story).

Instantiates SmartDS with 1, 2, and 4 networking ports (one client and
one compression engine per port), measures aggregate throughput and
latency, and then extrapolates a full 4U server with up to 8 six-port
cards using the §5.5 water-filling estimator.

Run:  python examples/multiport_scaling.py
"""

from repro.experiments.common import measure_design
from repro.experiments.sec55_multi_nic import estimate
from repro.params import DEFAULT_PLATFORM
from repro.telemetry.reporting import format_table


def main():
    rows = []
    base = None
    per_card_inputs = None
    for ports in (1, 2, 4):
        m = measure_design(
            f"SmartDS-{ports}",
            n_workers=0,  # two host cores per port, the paper's rule
            n_requests=2000 * ports,
            concurrency=192,
        )
        if base is None:
            base = m.throughput_gbps
        if ports == 4:
            per_card_inputs = m
        rows.append(
            [
                ports,
                round(m.throughput_gbps, 1),
                f"{m.throughput_gbps / base:.2f}x",
                round(m.avg_latency_us, 1),
                round(m.p99_latency_us, 1),
                round(m.memory_read_gbps + m.memory_write_gbps, 2),
                round(sum(m.pcie_gbps.values()), 1),
            ]
        )
        print(f"measured SmartDS-{ports}")
    print()
    print(
        format_table(
            [
                "ports",
                "tput (Gb/s)",
                "scaling",
                "avg (us)",
                "p99 (us)",
                "host mem (Gb/s)",
                "PCIe (Gb/s)",
            ],
            rows,
            title="One card, growing port count (Fig. 10)",
        )
    )

    # Extrapolate the multi-card server of §5.5 from the 4-port card.
    scale = 6 / 4
    points = estimate(
        per_card_gbps=per_card_inputs.throughput_gbps * scale,
        per_card_memory_gbps=(
            per_card_inputs.memory_read_gbps + per_card_inputs.memory_write_gbps
        )
        * scale,
        per_card_pcie_gbps=sum(per_card_inputs.pcie_gbps.values()) * scale,
        cpu_only_peak_gbps=54.0,  # measured CPU-only peak, Fig. 7
        platform=DEFAULT_PLATFORM,
    )
    print()
    print(
        format_table(
            ["cards", "tput (Gb/s)", "x CPU-only tier"],
            [[p.cards, round(p.throughput_gbps), round(p.speedup_vs_cpu_only, 1)] for p in points],
            title="Whole 4U server, SmartDS-6 cards (§5.5 estimate)",
        )
    )


if __name__ == "__main__":
    main()

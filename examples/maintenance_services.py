#!/usr/bin/env python
"""Maintenance services: LSM compaction, GC, snapshots, fail-over (§2.2.3).

A CPU-only middle tier serves writes (with deliberate block overwrites)
while the three background services run:

1. LSM compaction folds the retained writes of a chunk (latest version
   wins) and re-persists them;
2. garbage collection reclaims the superseded blocks' disk space on the
   storage servers;
3. a snapshot taken before compaction still sees the old versions;
4. a storage server is killed mid-run — the heartbeat monitor detects
   it and re-replicates every block it held.

Run:  python examples/maintenance_services.py
"""

from repro.middletier import (
    CpuOnlyMiddleTier,
    HeartbeatMonitor,
    LsmCompactionService,
    SnapshotService,
    Testbed,
)
from repro.sim import Simulator
from repro.units import msec, usec
from repro.workloads import ClientDriver, WriteRequestFactory


def main():
    sim = Simulator()
    testbed = Testbed(sim, n_storage_servers=5)
    tier = CpuOnlyMiddleTier(sim, testbed, n_workers=8)
    factory = WriteRequestFactory(testbed.platform, seed=42)
    driver = ClientDriver(sim, tier, factory, concurrency=8)

    compaction = LsmCompactionService(sim, tier, threshold=24, scan_interval=usec(500))
    snapshots = SnapshotService(sim, tier, interval=msec(2))
    monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))

    # Phase 1: 60 writes, where every 3rd write overwrites block 0-19.
    def rewriting_client():
        tier.start()
        for i in range(60):
            message = factory.make()
            message.header["block_id"] = i % 20
            message.header["chunk_id"] = 0
            event = sim.event()
            driver._reply_events[message.request_id] = event
            yield driver.qp.send(message)
            yield event

    sim.process(rewriting_client())
    sim.run(until=msec(15))
    print("phase 1 - writes served:", tier.requests_completed.value)
    print(
        f"  compactions: {compaction.compactions.value}"
        f"  ({compaction.blocks_in.value} blocks in -> {compaction.blocks_out.value} out)"
    )
    print(f"  bytes reclaimed by GC: {compaction.bytes_reclaimed.value}")
    print(f"  snapshots taken: {snapshots.snapshots_taken.value}")

    live = {
        server.address: sum(
            len(server.store.live_blocks(chunk)) for chunk in server.store.chunk_ids()
        )
        for server in testbed.storage_servers
    }
    print("  live blocks per storage server:", live)

    # Phase 2: a few more writes stay retained (below the compaction
    # threshold); then kill one of the servers holding them.
    compaction.stop()

    def trailing_writes():
        for i in range(15):
            message = factory.make()
            message.header["block_id"] = 100 + i
            message.header["chunk_id"] = 0
            event = sim.event()
            driver._reply_events[message.request_id] = event
            yield driver.qp.send(message)
            yield event

    done = sim.process(trailing_writes())
    sim.run(until=done)
    victim = tier._chunk_log[0][0].replicas[0][0]
    print(f"\nphase 2 - killing {victim} ...")
    testbed.server(victim).fail()
    sim.run(until=sim.now + msec(30))
    print(f"  heartbeat detected failures: {monitor.failures_detected.value}")
    print(f"  blocks re-replicated: {monitor.blocks_re_replicated.value}")

    under_replicated = 0
    for entries in tier._chunk_log.values():
        for entry in entries:
            holders = {address for address, _ in entry.replicas}
            if victim in holders or len(holders) < 3:
                under_replicated += 1
    print(f"  retained writes still under-replicated: {under_replicated}")

    compaction.stop()
    snapshots.stop()
    monitor.stop()
    assert under_replicated == 0, "fail-over left data under-replicated!"
    print("\nall retained writes are back on three healthy replicas")


if __name__ == "__main__":
    main()

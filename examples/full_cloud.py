#!/usr/bin/env python
"""A small cloud, end to end (Fig. 2 of the paper).

Two compute servers host two VMs each; their storage agents shard
segments across two SmartDS-equipped middle-tier servers, which
replicate into the shared storage cluster. Guests write and read real
bytes through the full stack; the run closes with the fleet-level
numbers the paper's abstract argues about (servers and watts per Gb/s).

Run:  python examples/full_cloud.py
"""

from repro.analysis import efficiency_table, plan_fleet
from repro.compression import SilesiaLikeCorpus
from repro.compute import StorageAgent, VirtualMachine
from repro.compute.agent import SegmentAllocator
from repro.core import SmartDsMiddleTier
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import gbps, to_usec


def main():
    sim = Simulator()

    # --- the middle tier: two SmartDS servers, segments sharded --------
    tiers = []
    for index in range(2):
        testbed = Testbed(sim, DEFAULT_PLATFORM)
        tiers.append(SmartDsMiddleTier(sim, testbed, address=f"tier{index}"))

    # --- two compute servers, two VMs each; one cloud-wide segment
    # allocator so every virtual disk owns disjoint segments ----------
    allocator = SegmentAllocator(DEFAULT_PLATFORM)
    agents = [
        StorageAgent(sim, address=f"compute{i}", allocator=allocator) for i in range(2)
    ]
    for agent in agents:
        for tier in tiers:
            agent.attach_tier(tier)
    vms = [
        VirtualMachine(sim, agents[i // 2], f"vm{i}") for i in range(4)
    ]
    blocks = SilesiaLikeCorpus(seed=31, file_size=8192).blocks(4096)
    segment_blocks = (
        agents[0].mapper.blocks_per_chunk * agents[0].mapper.chunks_per_segment
    )
    results = {}

    def guest(vm_index):
        vm = vms[vm_index]
        disk = vm.create_disk(capacity_blocks=2 * segment_blocks)
        wrote = []
        # Interleave two segments so both tiers serve this guest.
        for i in range(8):
            lba = i if i % 2 == 0 else segment_blocks + i
            data = blocks[(vm_index * 8 + i) % len(blocks)]
            yield disk.write(lba, data)
            wrote.append((lba, data))
        for lba, data in wrote:
            read_back = yield disk.read(lba)
            assert read_back == data, f"{vm.vm_id} corrupted block at LBA {lba}"
        results[vm.vm_id] = disk

    for index in range(4):
        sim.process(guest(index))
    sim.run()

    rows = []
    for vm_id, disk in sorted(results.items()):
        rows.append(
            [
                vm_id,
                disk.writes.value,
                disk.reads.value,
                round(to_usec(disk.write_latency.mean()), 1),
                round(to_usec(disk.read_latency.mean()), 1),
            ]
        )
    print(
        format_table(
            ["VM", "writes", "reads", "write avg (us)", "read avg (us)"],
            rows,
            title="Four guests, two compute servers, two SmartDS middle tiers",
        )
    )
    per_tier = [tier.requests_completed.value for tier in tiers]
    print(f"\nrequests per middle tier (segment sharding): {per_tier}")
    print("every block verified bit-for-bit after a full write/read cycle")

    # --- zoom out: what this means for a 100k-server middle tier --------
    traffic = gbps(5_400_000 / 1000)  # a PB-scale cloud's storage traffic
    cpu_fleet = plan_fleet("CPU-only", gbps(63.5), traffic)
    smartds_fleet = plan_fleet("SmartDS x8", gbps(2620), traffic)
    print(
        f"\ncarrying {5400:.0f} Gb/s of storage traffic:"
        f" {cpu_fleet.servers} CPU-only servers vs"
        f" {smartds_fleet.servers} SmartDS servers"
        f" ({cpu_fleet.servers / smartds_fleet.servers:.0f}x fewer)"
    )
    print("\nenergy efficiency at peak (measured Fig. 7/10 throughputs):")
    for design, watts, wpg in efficiency_table(
        {"CPU-only": 63.5, "BF2": 40.0, "SmartDS-1": 65.4, "SmartDS-6": 396.6}
    ):
        print(f"  {design:10s} {watts:5.0f} W  ->  {wpg:5.2f} W per Gb/s")


if __name__ == "__main__":
    main()

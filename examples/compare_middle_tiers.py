#!/usr/bin/env python
"""Compare all five middle-tier designs on the paper's write workload.

Drives each design (CPU-only, accelerator-enhanced, naive FPGA,
BlueField-2, SmartDS-1) to saturation with 4 KB writes, 3-way
replication, and corpus-calibrated compression ratios, then prints the
Fig. 7/8-style comparison: throughput, latency, host memory and PCIe
footprints — plus whether the design keeps the control plane in
software (the flexibility axis the paper argues on).

Run:  python examples/compare_middle_tiers.py
"""

from repro.experiments.common import build_tier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import to_gbps, to_usec
from repro.workloads import ClientDriver, WriteRequestFactory

#: design name -> (workers, closed-loop concurrency) to reach its peak.
CONFIGS = {
    "CPU-only": (48, 288),
    "Acc": (2, 256),
    "FPGA-only": (2, 256),
    "BF2": (2, 256),
    "SmartDS-1": (2, 256),
}

N_REQUESTS = 3000


def measure(design, n_workers, concurrency):
    sim = Simulator()
    testbed = Testbed(sim, DEFAULT_PLATFORM)
    memory = MemorySubsystem.for_host(sim)
    tier = build_tier(sim, testbed, design, n_workers, memory)
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(DEFAULT_PLATFORM, seed=1),
        concurrency=concurrency,
    )
    result = sim.run(until=driver.run(N_REQUESTS))
    summary = result.latency.summary()
    pcie = 0.0
    for attr in ("nic", "device"):
        dev = getattr(tier, attr, None)
        if dev is not None and hasattr(dev, "pcie"):
            pcie += dev.pcie.h2d_meter.rate() + dev.pcie.d2h_meter.rate()
    if getattr(tier, "fpga_pcie", None) is not None:
        pcie += tier.fpga_pcie.h2d_meter.rate() + tier.fpga_pcie.d2h_meter.rate()
    return {
        "design": design,
        "workers": n_workers,
        "tput": to_gbps(result.throughput),
        "avg": to_usec(summary["avg"]),
        "p99": to_usec(summary["p99"]),
        "mem": to_gbps(memory.read_meter.rate() + memory.write_meter.rate()),
        "pcie": to_gbps(pcie),
        "flexible": "yes" if tier.flexible else "NO",
    }


def main():
    rows = []
    for design, (workers, concurrency) in CONFIGS.items():
        m = measure(design, workers, concurrency)
        rows.append(
            [
                m["design"],
                m["workers"],
                round(m["tput"], 1),
                round(m["avg"], 1),
                round(m["p99"], 1),
                round(m["mem"], 1),
                round(m["pcie"], 1),
                m["flexible"],
            ]
        )
        print(f"measured {design} ({workers} workers)")
    print()
    print(
        format_table(
            [
                "design",
                "workers",
                "tput (Gb/s)",
                "avg (us)",
                "p99 (us)",
                "host mem (Gb/s)",
                "PCIe (Gb/s)",
                "software control plane",
            ],
            rows,
            title="Middle-tier designs at saturation (4 KB writes, 3-way replication)",
        )
    )
    print(
        "\nReading the table the paper's way: only SmartDS combines peak "
        "throughput,\nnear-zero host memory/PCIe pressure, AND a software "
        "control plane."
    )


if __name__ == "__main__":
    main()

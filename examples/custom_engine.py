#!/usr/bin/env python
"""Deploying a different hardware engine (§4.1's extensibility claim).

The paper: "SmartDS provides a simple interface to deploy different
hardware engines according to the application scenario." This example
builds an *encryption-at-rest* middle tier: every block is LZ4-
compressed and then encrypted on the SmartDS engines before hitting
storage, and the read path inverts both — all through the same Table 2
API calls (`dev_func` with a different engine microprogram), with real
bytes verified end to end.

Run:  python examples/custom_engine.py
"""

from repro.compression import SilesiaLikeCorpus
from repro.core import SmartDsApi, SmartDsDevice
from repro.core.engines import (
    decrypt_op,
    encrypt_op,
    lz4_compress_op,
    lz4_decompress_op,
)
from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.params import DEFAULT_PLATFORM
from repro.sim import Simulator
from repro.units import to_usec

HEAD = 64
MAX = 4096 + 512


def endpoint(sim, name):
    port = NetworkPort(sim, rate=DEFAULT_PLATFORM.network.port_rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=DEFAULT_PLATFORM.network)


def main():
    sim = Simulator()
    device = SmartDsDevice(sim)
    api = SmartDsApi(device)
    vm = endpoint(sim, "vm")
    blocks = SilesiaLikeCorpus(seed=13, file_size=8192).blocks(4096)[:6]
    vault = {}  # what "storage" would hold: compressed + encrypted bytes
    log = []

    def secure_tier():
        ctx = api.open_roce_instance(0)
        qp = vm.connect(ctx.endpoint).peer
        h_buf = api.host_alloc(HEAD)
        d_in = api.dev_alloc(MAX)
        d_mid = api.dev_alloc(MAX)
        d_out = api.dev_alloc(MAX)
        for _ in range(len(blocks)):
            event = api.dev_mixed_recv(qp, h_buf, HEAD, d_in, MAX)
            yield from api.poll(event)
            t0 = sim.now
            # Stage 1: LZ4 on the engine (the default microprogram).
            stage1 = api.dev_func(d_in, event.size, d_mid, MAX, ctx.engine)
            yield from api.poll(stage1)
            # Stage 2: the same engine fabric, encryption microprogram.
            sealed = yield ctx.engine.run(d_mid, stage1.size, d_out, operation=encrypt_op)
            vault[h_buf.content["block_id"]] = sealed.data
            log.append((h_buf.content["block_id"], event.size, sealed.size, sim.now - t0))

    def client():
        qp = vm.queue_pairs[0]
        for block_id, data in enumerate(blocks):
            yield qp.send(
                Message(
                    "write_request",
                    "vm",
                    "tier",
                    header_size=HEAD,
                    payload=Payload.from_bytes(data),
                    header={"block_id": block_id},
                )
            )

    sim.process(secure_tier())
    sim.run(until=1e-9)
    sim.process(client())
    sim.run()

    print("block  raw(B)  sealed(B)  engine time (us)")
    for block_id, raw, sealed, elapsed in log:
        print(f"{block_id:5d}  {raw:6d}  {sealed:9d}  {to_usec(elapsed):10.1f}")

    # Prove the vault contents are (a) unreadable as-is, (b) exactly
    # invertible: decrypt + decompress restores the original bytes.
    for block_id, original in enumerate(blocks):
        sealed = vault[block_id]
        assert sealed != original and original not in sealed
        opened = decrypt_op(Payload.from_bytes(sealed))
        restored = lz4_decompress_op(
            Payload(
                size=opened.size,
                data=opened.data,
                is_compressed=True,
                original_size=len(original),
            )
        )
        assert restored.data == original
    print(f"\nall {len(blocks)} blocks sealed at rest and restored bit-for-bit")
    print("same AAMS datapath, different engine microprogram - zero host involvement")


if __name__ == "__main__":
    main()

"""The hot-block read cache living in SmartDS device memory.

Structure (see ``docs/caching.md``):

- **Segmented LRU**: new blocks enter a probation segment; a second hit
  promotes to the protected segment (bounded at
  ``CacheSpec.protected_fraction`` of the byte budget, demoting its LRU
  back to probation). Scans churn probation and never touch the hot set.
- **TinyLFU admission**: once eviction would be needed, a candidate is
  admitted only if the :class:`~repro.cache.sketch.FrequencySketch`
  ranks it above the probation-LRU victim — one-hit-wonders bounce off.
- **Write-through invalidation with epochs**: every write bumps a
  global epoch and stamps the key; an in-flight fill started before the
  stamp (``begin_fill`` token older than the stamp) is refused, so a
  read after a write ack can never resurrect pre-write bytes.
- **Elastic sizing**: the cache allocates with ``reclaim=False`` (it
  never sheds itself to grow) and registers :meth:`_shed` as a
  reclaimer with the :class:`~repro.core.device.DeviceMemoryAllocator`,
  so request-path pressure shrinks the cache — to zero if need be —
  before any request is degraded to the host path.

Entries hold *compressed* payloads, so a cached 4 KiB block costs its
LZ4 size. The SmartDS hit path decompresses straight from the cached
device buffer on the port engine; pin/release keeps a buffer alive
across those yields even if the entry is invalidated or shed meanwhile.
"""

from __future__ import annotations

import dataclasses
import typing
from collections import OrderedDict

from repro.cache.sketch import FrequencySketch
from repro.core.device import DeviceBuffer, DeviceMemoryAllocator
from repro.params import CacheSpec
from repro.telemetry.metrics import Counter, Gauge, ratio
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hostmodel.memory import MemorySubsystem
    from repro.net.message import Payload
    from repro.sim.debug import FlowLedger
    from repro.sim.kernel import Simulator

#: Cache keys are block addresses: ``(chunk_id, block_id)``.
Key = typing.Tuple[int, int]


@dataclasses.dataclass
class CacheEntry:
    """One cached block: a compressed payload in a device buffer."""

    key: Key
    buffer: DeviceBuffer
    payload: "Payload"
    size: int
    #: Readers decompressing from :attr:`buffer` hold a pin; the buffer
    #: is returned to the allocator only once the last pin drops.
    pins: int = 0
    #: Set when the entry was invalidated/evicted while pinned — the
    #: last :meth:`HotBlockCache.release` frees the buffer.
    dead: bool = False


class HotBlockCache:
    """Segmented-LRU + TinyLFU cache of compressed blocks in HBM."""

    def __init__(
        self,
        sim: "Simulator",
        allocator: DeviceMemoryAllocator,
        spec: CacheSpec | None = None,
        hbm: "MemorySubsystem | None" = None,
        name: str = "cache",
    ) -> None:
        self.sim = sim
        self.allocator = allocator
        self.spec = spec or CacheSpec(enabled=True)
        self.hbm = hbm
        self.name = name
        self.limit = self.spec.limit_for(allocator.capacity)
        self.protected_budget = int(self.spec.protected_fraction * self.limit)
        self.sketch = FrequencySketch(
            self.spec.sketch_width, self.spec.sketch_depth, self.spec.sketch_sample
        )
        # Both segments are ordered LRU -> MRU (first item is coldest).
        self._probation: "OrderedDict[Key, CacheEntry]" = OrderedDict()
        self._protected: "OrderedDict[Key, CacheEntry]" = OrderedDict()
        self._protected_bytes = 0
        self._held = 0
        # Write-through epochs: a fill token older than the key's stamp
        # means a write raced the fill and the stale bytes are refused.
        self._epoch = 0
        self._invalidated: dict[Key, int] = {}
        self._ledger: "FlowLedger | None" = None

        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.admissions = Counter(f"{name}.admissions")
        self.rejections = Counter(f"{name}.rejections")
        self.evictions = Counter(f"{name}.evictions")
        self.invalidations = Counter(f"{name}.invalidations")
        self.sheds = Counter(f"{name}.sheds")
        self.fills_raced = Counter(f"{name}.fills-raced")
        self.pressure_refusals = Counter(f"{name}.pressure-refusals")
        self.hit_bytes = Counter(f"{name}.hit-bytes")
        self.occupancy = Gauge(f"{name}.occupancy")
        self.entries = Gauge(f"{name}.entries")

        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="cache", cache=name)
            registry.register_instance(self.hits, "cache.hits", **labels)
            registry.register_instance(self.misses, "cache.misses", **labels)
            registry.register_instance(self.admissions, "cache.admissions", **labels)
            registry.register_instance(self.rejections, "cache.rejections", **labels)
            registry.register_instance(self.evictions, "cache.evictions", **labels)
            registry.register_instance(self.invalidations, "cache.invalidations", **labels)
            registry.register_instance(self.sheds, "cache.sheds", **labels)
            registry.register_instance(self.fills_raced, "cache.fills_raced", **labels)
            registry.register_instance(self.pressure_refusals, "cache.pressure_refusals", **labels)
            registry.register_instance(self.hit_bytes, "cache.hit_bytes", **labels)
            registry.register_instance(self.occupancy, "cache.occupancy", **labels)
            registry.register_instance(self.entries, "cache.entries", **labels)

        allocator.register_reclaimer(self._shed)

    # -- read-side API ------------------------------------------------------

    def lookup(self, key: Key) -> CacheEntry | None:
        """Pinned entry for `key`, or ``None`` on a miss.

        Every lookup feeds the admission sketch. A probation hit
        promotes to protected. The caller must :meth:`release` a hit.
        """
        self.sketch.touch(key)
        entry = self._probation.pop(key, None)
        if entry is not None:
            self._promote(entry)
        else:
            entry = self._protected.get(key)
            if entry is not None:
                self._protected.move_to_end(key)
        if entry is None:
            self.misses.add()
            return None
        self.hits.add()
        self.hit_bytes.add(entry.size)
        entry.pins += 1
        return entry

    def release(self, entry: CacheEntry) -> None:
        """Drop a pin taken by :meth:`lookup`."""
        if entry.pins <= 0:
            raise ValueError(f"releasing unpinned cache entry {entry.key}")
        entry.pins -= 1
        if entry.dead and entry.pins == 0:
            self.allocator.free(entry.buffer)

    def contains(self, key: Key) -> bool:
        """Whether `key` is resident (no sketch touch, no promotion)."""
        return key in self._probation or key in self._protected

    # -- fill-side API ------------------------------------------------------

    def begin_fill(self, key: Key) -> int:
        """Token to pass to :meth:`offer` after the backend fetch.

        Captures the current epoch *before* the fetch leaves, so a
        write that lands mid-fetch invalidates the eventual offer.
        """
        return self._epoch

    def offer(self, key: Key, payload: "Payload", token: int) -> bool:
        """Admission decision on a freshly fetched block.

        Returns True when the block was cached. Refusals: the fill
        raced a write (stale), the key is already resident, TinyLFU
        ranks the candidate below the eviction victim, or the watermark
        gate is closed (the cache never reclaims to grow itself).
        """
        if self._invalidated.get(key, 0) > token:
            self.fills_raced.add()
            return False
        if self.contains(key):
            return False
        size = payload.size
        if size <= 0 or size > self.limit:
            return False
        while self._held + size > self.limit:
            victim = self._victim()
            if victim is None:
                return False
            if self.sketch.estimate(key) <= self.sketch.estimate(victim.key):
                self.rejections.add()
                return False
            self._pop_segment(victim.key)
            self._remove(victim, self.evictions)
        # Lowest-priority consumer: admit only while comfortably below
        # the drain target and nobody is parked waiting for headroom —
        # filling inside the watermark band would hold occupancy up and
        # starve the request-path waiters the cache must yield to.
        if not self.allocator.elastic_headroom(size):
            self.pressure_refusals.add()
            return False
        buffer = self.allocator.try_alloc(size, reclaim=False)
        if buffer is None:
            self.pressure_refusals.add()
            return False
        buffer.payload = payload
        entry = CacheEntry(key=key, buffer=buffer, payload=payload, size=size)
        self._probation[key] = entry
        self._held += size
        self.occupancy.set(self._held)
        self.entries.set(len(self._probation) + len(self._protected))
        self.admissions.add()
        if self._ledger is not None:
            self._ledger.record(f"{self.name}.fill", self.name, size)
        if self.hbm is not None:
            self.hbm.write(size)  # self-running transfer; charges the HBM port
        return True

    # -- write-through invalidation -----------------------------------------

    def invalidate(self, key: Key) -> None:
        """Drop `key` and poison in-flight fills for it (called pre-ack)."""
        self._epoch += 1
        self._invalidated[key] = self._epoch
        entry = self._pop_segment(key)
        if entry is not None:
            self._remove(entry, self.invalidations)

    # -- elastic sizing -----------------------------------------------------

    def _shed(self, nbytes: int) -> int:
        """Reclaimer callback: evict cold entries until `nbytes` freed.

        Pinned entries are skipped (their memory cannot be returned
        yet), so the reported figure is bytes actually freed now.
        """
        freed = 0
        while freed < nbytes:
            victim = self._victim(skip_pinned=True)
            if victim is None:
                break
            self._pop_segment(victim.key)
            self._remove(victim, self.sheds)
            freed += victim.size
        return freed

    # -- accounting ---------------------------------------------------------

    def attach_ledger(self, ledger: "FlowLedger") -> "HotBlockCache":
        """Book fills/evictions/occupancy so byte conservation closes.

        Declares ``fill == evict + held`` for the cache's own flow; the
        drain auditor re-checks it (through the probe refreshing the
        ``held`` stock) at the end of every audited test.
        """
        self._ledger = ledger
        ledger.add_probe(self._probe)
        ledger.expect_balanced(
            self.name, [f"{self.name}.fill"], [f"{self.name}.evict", f"{self.name}.held"]
        )
        return self

    def _probe(self, ledger: "FlowLedger") -> None:
        ledger.set_level(f"{self.name}.held", self.name, self._held)

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return ratio(self.hits.value, self.hits.value + self.misses.value)

    def stats(self) -> dict[str, float]:
        """Counter snapshot for experiment tables."""
        return {
            "hits": self.hits.value,
            "misses": self.misses.value,
            "hit_ratio": self.hit_ratio(),
            "admissions": self.admissions.value,
            "rejections": self.rejections.value,
            "evictions": self.evictions.value,
            "invalidations": self.invalidations.value,
            "sheds": self.sheds.value,
            "fills_raced": self.fills_raced.value,
            "pressure_refusals": self.pressure_refusals.value,
            "held_bytes": self._held,
            "peak_bytes": self.occupancy.peak,
        }

    # -- internals ----------------------------------------------------------

    def _promote(self, entry: CacheEntry) -> None:
        """Probation hit: move to protected, demoting its LRU if over budget."""
        self._protected[entry.key] = entry
        self._protected_bytes += entry.size
        while self._protected_bytes > self.protected_budget and len(self._protected) > 1:
            key, demoted = next(iter(self._protected.items()))
            if demoted is entry:
                break
            del self._protected[key]
            self._protected_bytes -= demoted.size
            self._probation[key] = demoted

    def _victim(self, skip_pinned: bool = False) -> CacheEntry | None:
        """Coldest evictable entry: probation LRU first, then protected."""
        for segment in (self._probation, self._protected):
            for entry in segment.values():
                if skip_pinned and entry.pins:
                    continue
                return entry
        return None

    def _pop_segment(self, key: Key) -> CacheEntry | None:
        entry = self._probation.pop(key, None)
        if entry is not None:
            return entry
        entry = self._protected.pop(key, None)
        if entry is not None:
            self._protected_bytes -= entry.size
        return entry

    def _remove(self, entry: CacheEntry, counter: Counter) -> None:
        """Book an entry's removal; free its buffer now or at last unpin."""
        self._held -= entry.size
        self.occupancy.set(self._held)
        self.entries.set(len(self._probation) + len(self._protected))
        counter.add()
        if self._ledger is not None:
            self._ledger.record(f"{self.name}.evict", self.name, entry.size)
        if entry.pins:
            entry.dead = True
        else:
            self.allocator.free(entry.buffer)

    def __repr__(self) -> str:
        return (
            f"<HotBlockCache {self.name!r} held={self._held}/{self.limit} "
            f"hits={self.hits.value} misses={self.misses.value}>"
        )

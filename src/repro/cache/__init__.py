"""Device-memory hot-block read cache (``docs/caching.md``).

The middle tier keeps *compressed* payloads of hot blocks resident in
SmartNIC HBM so skewed read traffic is answered in one hop — no backend
round trip, no failover machinery. The cache is the lowest-priority
HBM consumer: it admits only below the watermark gate and sheds itself
to zero under pressure before any request is degraded to the host path.
"""

from repro.cache.hotblock import CacheEntry, HotBlockCache
from repro.cache.sketch import FrequencySketch

__all__ = ["CacheEntry", "FrequencySketch", "HotBlockCache"]

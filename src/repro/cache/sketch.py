"""TinyLFU-style frequency sketch for cache admission.

A count-min sketch of 4-bit-style saturating counters estimates how
often each block has been requested recently. The cache admits a
candidate over an incumbent victim only when the candidate's estimate
is higher, so a burst of one-hit-wonders cannot flush the hot set —
the core idea of TinyLFU (Einziger et al.).

Counters age: once ``sample`` touches have been recorded, every counter
is halved, so the estimate tracks *recent* popularity rather than
all-time totals. Keys are ints or tuples of ints, whose Python hashes
are deterministic (hash randomisation only perturbs str/bytes), so the
sketch replays identically across runs.
"""

from __future__ import annotations

import typing

#: Saturation ceiling: counters never exceed this (TinyLFU uses 4-bit
#: counters; 15 is plenty to rank hot against cold).
_CEILING = 15


class FrequencySketch:
    """Count-min sketch with saturating, periodically halved counters."""

    def __init__(self, width: int = 1024, depth: int = 4, sample: int = 4096) -> None:
        if width < 1 or depth < 1 or sample < 1:
            raise ValueError(
                f"sketch geometry must be positive, got width={width} depth={depth} "
                f"sample={sample}"
            )
        self.width = width
        self.depth = depth
        self.sample = sample
        self._rows = [[0] * width for _ in range(depth)]
        self._touches = 0

    def _index(self, row: int, key: typing.Hashable) -> int:
        # Each row salts the key differently so one collision does not
        # repeat across rows (the count-min independence assumption).
        return hash((row * 0x9E3779B1 + 0x85EBCA6B, key)) % self.width

    def touch(self, key: typing.Hashable) -> None:
        """Record one access to `key` (ages the sketch when due)."""
        for row in range(self.depth):
            cell = self._index(row, key)
            if self._rows[row][cell] < _CEILING:
                self._rows[row][cell] += 1
        self._touches += 1
        if self._touches >= self.sample:
            self._age()

    def estimate(self, key: typing.Hashable) -> int:
        """Estimated recent access count of `key` (an upper bound)."""
        return min(
            self._rows[row][self._index(row, key)] for row in range(self.depth)
        )

    def _age(self) -> None:
        """Halve every counter so estimates decay with the workload."""
        for row in self._rows:
            for cell in range(self.width):
                row[cell] >>= 1
        self._touches = 0

    def __repr__(self) -> str:
        return (
            f"<FrequencySketch {self.width}x{self.depth} "
            f"touches={self._touches}/{self.sample}>"
        )

"""Power and energy-efficiency model of the middle-tier designs.

§3.3 notes that SmartNIC-based middle tiers have "lower active power"
than conventional servers. This module carries per-design power models
(host plus attached devices, active vs idle shares by utilization) and
reports the figure clouds actually optimise: watts per Gb/s served.

Numbers are representative datasheet/board values, parameterised so a
deployment can substitute its own.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class PowerProfile:
    """Idle/active power of one middle-tier server configuration."""

    name: str
    host_idle_watts: float
    host_active_watts: float  # host at full middle-tier load
    device_watts: float = 0.0  # NIC / FPGA / SmartNIC cards, active

    def power_at(self, utilization: float) -> float:
        """Total watts at a given utilization (0..1), linear host model."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization!r}")
        host = self.host_idle_watts + utilization * (
            self.host_active_watts - self.host_idle_watts
        )
        return host + self.device_watts


#: Representative configurations. The CPU-only tier burns all 48 threads
#: on LZ4; SmartDS idles the host (2 cores/port) and adds an FPGA card
#: (~60 W for a VCU128-class board); BF2 is a 75 W SoC card on a host
#: that mostly sleeps.
PROFILES: dict[str, PowerProfile] = {
    "CPU-only": PowerProfile("CPU-only", host_idle_watts=120, host_active_watts=420, device_watts=25),
    "Acc": PowerProfile("Acc", host_idle_watts=120, host_active_watts=200, device_watts=25 + 60),
    "BF2": PowerProfile("BF2", host_idle_watts=120, host_active_watts=130, device_watts=75),
    "SmartDS-1": PowerProfile("SmartDS-1", host_idle_watts=120, host_active_watts=150, device_watts=60),
    "SmartDS-6": PowerProfile("SmartDS-6", host_idle_watts=120, host_active_watts=220, device_watts=60),
}


def watts_per_gbps(design: str, throughput_gbps: float, utilization: float = 1.0) -> float:
    """Energy efficiency of a design at a measured throughput."""
    if design not in PROFILES:
        raise ValueError(f"unknown design {design!r}; have {sorted(PROFILES)}")
    if throughput_gbps <= 0:
        raise ValueError("throughput must be positive")
    return PROFILES[design].power_at(utilization) / throughput_gbps


def efficiency_table(measured_gbps: dict[str, float]) -> list[tuple[str, float, float]]:
    """Rows of (design, watts, watts/Gb/s) for measured throughputs."""
    rows = []
    for design, gbps_value in measured_gbps.items():
        watts = PROFILES[design].power_at(1.0)
        rows.append((design, watts, watts / gbps_value))
    return sorted(rows, key=lambda row: row[2])

"""Fleet-level analysis: middle-tier sizing and infrastructure cost.

The paper's bottom line (§1, §5.5) is economic: a SmartDS-equipped
server replaces ~51.6 CPU-based middle-tier servers, and clouds run
"over 100,000" of those. :mod:`repro.analysis.tco` turns measured
per-server throughput into fleet sizes and relative cost.
"""

from repro.analysis.power import PowerProfile, efficiency_table, watts_per_gbps
from repro.analysis.tco import FleetPlan, ServerCost, plan_fleet

__all__ = [
    "FleetPlan",
    "PowerProfile",
    "ServerCost",
    "efficiency_table",
    "plan_fleet",
    "watts_per_gbps",
]

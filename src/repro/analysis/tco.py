"""Middle-tier fleet sizing and total cost of ownership.

Given the storage traffic a cloud must carry and the per-server
throughput of a middle-tier design (measured by the experiments), this
module answers the paper's §1/§5.5 question: how many middle-tier
servers does each design need, and what does the fleet cost?

The cost model is deliberately simple and fully parameterised — a
server's capex amortised over its life plus its power — because the
paper's claim is a *ratio* (51.6x fewer servers), not absolute dollars.
"""

from __future__ import annotations

import dataclasses
import math

from repro.units import to_gbps


@dataclasses.dataclass(frozen=True)
class ServerCost:
    """Annualised cost of one middle-tier server."""

    capex_usd: float = 20_000.0  # 2-socket server + NICs/accelerators
    lifetime_years: float = 5.0
    power_watts: float = 450.0
    usd_per_kwh: float = 0.10

    @property
    def annual_usd(self) -> float:
        """Capex amortisation plus a year of power."""
        if self.lifetime_years <= 0:
            raise ValueError("server lifetime must be positive")
        energy = self.power_watts / 1000.0 * 24 * 365 * self.usd_per_kwh
        return self.capex_usd / self.lifetime_years + energy


@dataclasses.dataclass(frozen=True)
class FleetPlan:
    """Fleet required for one design to carry the target traffic."""

    design: str
    per_server_gbps: float
    servers: int
    annual_cost_usd: float

    def cost_ratio_vs(self, other: "FleetPlan") -> float:
        """How many times cheaper this fleet is than `other`."""
        if self.annual_cost_usd <= 0:
            raise ValueError("cannot compare a zero-cost fleet")
        return other.annual_cost_usd / self.annual_cost_usd


def plan_fleet(
    design: str,
    per_server_rate: float,
    target_traffic: float,
    cost: ServerCost | None = None,
    utilization_target: float = 0.7,
) -> FleetPlan:
    """Servers (and cost) needed to carry `target_traffic` bytes/second.

    `per_server_rate` is the design's measured peak in bytes/second;
    fleets are provisioned to run each server at `utilization_target`
    of that peak (clouds never run the middle tier at 100 %).
    """
    if per_server_rate <= 0:
        raise ValueError("per-server rate must be positive")
    if target_traffic < 0:
        raise ValueError("target traffic must be non-negative")
    if not 0 < utilization_target <= 1:
        raise ValueError("utilization target must be in (0, 1]")
    cost = cost or ServerCost()
    usable = per_server_rate * utilization_target
    servers = max(1, math.ceil(target_traffic / usable)) if target_traffic else 0
    return FleetPlan(
        design=design,
        per_server_gbps=to_gbps(per_server_rate),
        servers=servers,
        annual_cost_usd=servers * cost.annual_usd,
    )

"""Segment directory: consistent-hash placement with versioned route maps.

The paper evaluates one middle-tier server (§5.1); a production block
store shards the tier horizontally. :class:`SegmentDirectory` places
32 GB segments — the routing unit exposed by
:meth:`repro.middletier.mapping.AddressMapper.segment_of` — onto
middle-tier shards through a consistent-hash ring of virtual nodes,
plus explicit per-segment *overrides* for migration and rebalancing.

Every mutation (shard add/remove, pin/unpin) bumps an integer version
and invalidates the cached :class:`RouteMap` snapshot. Clients cache a
snapshot and route locally; a shard that receives a request it no
longer owns answers ``status="wrong_shard"`` with the live owner and
version, and the client refetches (``docs/scaling.md``).

Hashing uses blake2b, not Python's salted ``hash()``, so a seeded run
replayed in another process places every segment identically.
"""

from __future__ import annotations

import bisect
import hashlib
import typing

from repro.telemetry import metrics


def stable_hash(token: str) -> int:
    """A 64-bit stable hash of `token` (replay-deterministic)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RouteMap:
    """One immutable snapshot of segment->shard placement.

    Clients hold a RouteMap and resolve owners locally (no simulated
    time); the `version` travels in ``wrong_shard`` replies so a client
    can tell a stale cache from a racing mutation.
    """

    __slots__ = ("version", "shards", "overrides", "_points", "_owners")

    def __init__(
        self,
        version: int,
        shards: typing.Sequence[str],
        ring: typing.Sequence[tuple[int, str]],
        overrides: typing.Mapping[int, str],
    ) -> None:
        self.version = version
        self.shards = tuple(shards)
        self.overrides = dict(overrides)
        self._points = tuple(point for point, _ in ring)
        self._owners = tuple(owner for _, owner in ring)

    def owner_of(self, segment_id: int) -> str:
        """The shard owning `segment_id` under this snapshot."""
        if segment_id < 0:
            raise ValueError(f"negative segment id {segment_id}")
        pinned = self.overrides.get(segment_id)
        if pinned is not None:
            return pinned
        if len(self.shards) == 1:
            return self.shards[0]
        point = stable_hash(f"segment:{segment_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the last vnode back to the first
        return self._owners[index]

    def placement(self, segment_ids: typing.Iterable[int]) -> dict[int, str]:
        """Owner of every segment in `segment_ids` (test/report helper)."""
        return {segment_id: self.owner_of(segment_id) for segment_id in segment_ids}

    def __repr__(self) -> str:
        return (
            f"<RouteMap v{self.version} shards={len(self.shards)} "
            f"vnodes={len(self._points)} overrides={len(self.overrides)}>"
        )


class SegmentDirectory:
    """Authoritative segment->shard placement, versioned.

    The directory is a control-plane object: lookups and mutations take
    no simulated time (clients pay :attr:`ClusterSpec.map_fetch_latency`
    when they *fetch* a snapshot, modeling the network hop to the
    directory service). It also accumulates per-segment *heat* — bytes
    routed per segment — backing the cluster's load and imbalance
    gauges.
    """

    def __init__(self, shards: typing.Sequence[str], vnodes_per_shard: int = 128) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard addresses in {list(shards)!r}")
        if vnodes_per_shard < 1:
            raise ValueError(f"need at least one vnode per shard, got {vnodes_per_shard}")
        self.vnodes_per_shard = vnodes_per_shard
        self._shards: list[str] = list(shards)
        self._overrides: dict[int, str] = {}
        self.version = 1
        self._map: RouteMap | None = None
        self._segment_heat: dict[int, float] = {}

    # -- membership and overrides -------------------------------------------

    @property
    def shards(self) -> tuple[str, ...]:
        """Current member shards, in registration order."""
        return tuple(self._shards)

    def add_shard(self, address: str) -> None:
        """Add a shard to the ring; only segments it now owns move."""
        if address in self._shards:
            raise ValueError(f"shard {address!r} already in the directory")
        self._shards.append(address)
        self._bump()

    def remove_shard(self, address: str) -> None:
        """Drop a shard; the minimal-disruption property of consistent
        hashing guarantees only *its* segments remap."""
        if address not in self._shards:
            raise ValueError(f"shard {address!r} not in the directory")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(address)
        for segment_id, pinned in list(self._overrides.items()):
            if pinned == address:
                del self._overrides[segment_id]
        self._bump()

    def pin_segment(self, segment_id: int, address: str) -> None:
        """Override the ring: place `segment_id` on `address` explicitly.

        The migration primitive — a rebalancer moves a hot segment by
        pinning it; the ring keeps serving everything unpinned.
        """
        if segment_id < 0:
            raise ValueError(f"negative segment id {segment_id}")
        if address not in self._shards:
            raise ValueError(f"cannot pin to unknown shard {address!r}")
        if self._overrides.get(segment_id) == address:
            return  # no-op pins don't churn client caches
        self._overrides[segment_id] = address
        self._bump()

    def unpin_segment(self, segment_id: int) -> None:
        """Return a pinned segment to ring placement."""
        if segment_id not in self._overrides:
            raise ValueError(f"segment {segment_id} is not pinned")
        del self._overrides[segment_id]
        self._bump()

    def rebalance(self, segment_ids: typing.Iterable[int]) -> None:
        """Pin `segment_ids` round-robin across the member shards.

        A deliberately simple rebalancer: perfect spread for a known
        active set (the scale-sweep experiment), one version bump for
        the whole batch.
        """
        changed = False
        for index, segment_id in enumerate(sorted(set(segment_ids))):
            if segment_id < 0:
                raise ValueError(f"negative segment id {segment_id}")
            target = self._shards[index % len(self._shards)]
            if self._overrides.get(segment_id) != target:
                self._overrides[segment_id] = target
                changed = True
        if changed:
            self._bump()

    def _bump(self) -> None:
        self.version += 1
        self._map = None

    # -- lookups -------------------------------------------------------------

    def route_map(self) -> RouteMap:
        """The current placement snapshot (cached until the next mutation)."""
        if self._map is None or self._map.version != self.version:
            ring = sorted(
                (stable_hash(f"{shard}#vnode{vnode}"), shard)
                for shard in self._shards
                for vnode in range(self.vnodes_per_shard)
            )
            self._map = RouteMap(self.version, self._shards, ring, self._overrides)
        return self._map

    def owner_of(self, segment_id: int) -> str:
        """Authoritative owner of `segment_id` right now."""
        return self.route_map().owner_of(segment_id)

    # -- heat accounting -----------------------------------------------------

    def record_heat(self, segment_id: int, nbytes: int) -> None:
        """Account `nbytes` of served traffic against `segment_id`."""
        if nbytes < 0:
            raise ValueError(f"negative heat {nbytes} for segment {segment_id}")
        self._segment_heat[segment_id] = self._segment_heat.get(segment_id, 0) + nbytes

    def segment_heat(self) -> dict[int, float]:
        """Accumulated bytes per segment (copy)."""
        return dict(self._segment_heat)

    def shard_heat(self) -> dict[str, float]:
        """Accumulated segment heat summed per *current* owner.

        Every member shard appears, idle ones at 0.0, so the imbalance
        metric sees cold shards instead of silently skipping them.
        """
        route = self.route_map()
        heat = {shard: 0.0 for shard in self._shards}
        for segment_id, nbytes in self._segment_heat.items():
            heat[route.owner_of(segment_id)] += nbytes
        return heat

    def imbalance(self) -> float:
        """Max/mean shard heat (1.0 = even; see :func:`repro.telemetry.metrics.imbalance`)."""
        return metrics.imbalance(list(self.shard_heat().values()))

    def __repr__(self) -> str:
        return (
            f"<SegmentDirectory v{self.version} shards={self._shards!r} "
            f"overrides={len(self._overrides)}>"
        )

"""A sharded middle tier: N servers behind one segment directory.

:class:`ShardedCluster` instantiates `ClusterSpec.n_shards` middle-tier
servers of any design flavor over a shared storage testbed, builds the
:class:`~repro.cluster.directory.SegmentDirectory` over their
addresses, and installs the shard-ownership guard on every tier so a
request routed with a stale map is bounced (``status="wrong_shard"``)
instead of silently served by the wrong shard (``docs/scaling.md``).

Two storage layouts:

- *shared* (default): one pool of storage servers; every shard's
  replication policy places over all of them;
- *partitioned*: each shard gets its own replica group (its own
  :class:`~repro.middletier.cluster.Testbed` view over a disjoint
  server subset), so "kill one shard's replicas" is a well-defined
  fault and the blast radius is exactly that shard's segments.
"""

from __future__ import annotations

import typing

from repro.cluster.directory import SegmentDirectory
from repro.middletier import (
    AcceleratorMiddleTier,
    BlueField2MiddleTier,
    CpuOnlyMiddleTier,
    NaiveFpgaMiddleTier,
    Testbed,
)
from repro.middletier.mapping import AddressMapper
from repro.net.message import Message
from repro.params import PlatformSpec
from repro.storage.server import StorageServer
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class ShardedCluster:
    """N middle-tier shards, one directory, one (shared) testbed."""

    def __init__(
        self,
        sim: "Simulator",
        platform: PlatformSpec | None = None,
        design: str = "CPU-only",
        n_workers: int = 2,
        n_storage_servers: int | None = None,
        partition_storage: bool = False,
    ) -> None:
        self.sim = sim
        self.platform = platform or PlatformSpec()
        self.spec = self.platform.cluster
        self.design = design
        n_shards = self.spec.n_shards
        replication = self.platform.storage.replication
        self.mapper = AddressMapper(
            self.platform.storage, block_size=self.platform.workload.block_size
        )
        self.partition_storage = partition_storage

        # -- storage ---------------------------------------------------------
        self._storage_groups: dict[str, tuple[StorageServer, ...]] = {}
        if partition_storage:
            groups = [
                [
                    StorageServer(
                        sim, f"shard{i}.storage{j}", network_spec=self.platform.network
                    )
                    for j in range(replication)
                ]
                for i in range(n_shards)
            ]
            all_servers = [server for group in groups for server in group]
            #: The cluster-wide view (lookups, audits).
            self.testbed = Testbed(sim, self.platform, servers=all_servers)
            shard_testbeds = [
                Testbed(sim, self.platform, servers=group) for group in groups
            ]
        else:
            count = n_storage_servers or max(replication, 2 * n_shards)
            self.testbed = Testbed(sim, self.platform, n_storage_servers=count)
            shard_testbeds = [self.testbed] * n_shards

        # -- shards ----------------------------------------------------------
        self.tiers = [
            self._build_tier(shard_testbeds[i], f"shard{i}", n_workers)
            for i in range(n_shards)
        ]
        self._by_address = {tier.address: tier for tier in self.tiers}
        if not partition_storage:
            # Shared layout: block→replica locations are segment metadata
            # owned by the cluster (the directory service), not by one
            # tier's memory — a shard taking over a migrated segment must
            # still locate blocks its predecessor placed. One dict shared
            # by every tier models that. Partitioned layouts keep per-tier
            # maps: data is co-located with its shard, and moving a
            # segment there requires live migration (ROADMAP).
            shared_locations: dict = {}
            for tier in self.tiers:
                tier._block_locations = shared_locations
        if partition_storage:
            for tier, group in zip(self.tiers, groups):
                self._storage_groups[tier.address] = tuple(group)
        else:
            for tier in self.tiers:
                self._storage_groups[tier.address] = tuple(self.testbed.storage_servers)

        # -- directory and guards ---------------------------------------------
        self.directory = SegmentDirectory(
            [tier.address for tier in self.tiers],
            vnodes_per_shard=self.spec.vnodes_per_shard,
        )
        if not self.spec.directory_bypassed:
            for tier in self.tiers:
                tier.route_guard = self._guard_for(tier.address)

        registry = registry_for(sim)
        if registry is not None:
            for tier in self.tiers:
                registry.gauge_callable(
                    "cluster.shard_heat",
                    lambda address=tier.address: self.directory.shard_heat()[address],
                    component="cluster",
                    shard=tier.address,
                )
            registry.gauge_callable(
                "cluster.imbalance", self.directory.imbalance, component="cluster"
            )
            registry.gauge_callable(
                "cluster.map_version",
                lambda: float(self.directory.version),
                component="cluster",
            )

    def _build_tier(self, testbed: Testbed, address: str, n_workers: int) -> typing.Any:
        """Instantiate one shard of the configured design flavor."""
        design = self.design
        sim = self.sim
        if design.startswith("SmartDS-"):
            # Deferred import: repro.core pulls in the whole device model.
            from repro.core import SmartDsMiddleTier

            n_ports = int(design.split("-", 1)[1])
            return SmartDsMiddleTier(
                sim, testbed, n_ports=n_ports, n_workers=n_workers or None, address=address
            )
        if design == "CPU-only":
            return CpuOnlyMiddleTier(sim, testbed, n_workers=n_workers, address=address)
        if design == "Acc":
            return AcceleratorMiddleTier(sim, testbed, n_workers=n_workers, address=address)
        if design == "BF2":
            return BlueField2MiddleTier(sim, testbed, n_workers=n_workers, address=address)
        if design == "FPGA-only":
            return NaiveFpgaMiddleTier(sim, testbed, n_workers=n_workers, address=address)
        raise ValueError(
            f"unknown design {design!r}; have CPU-only, Acc, BF2, FPGA-only, SmartDS-<N>"
        )

    def _guard_for(self, address: str) -> typing.Callable[[Message], dict | None]:
        """The shard-ownership check installed as ``tier.route_guard``."""

        def guard(message: Message) -> dict | None:
            segment_id = self.segment_of(message)
            owner = self.directory.owner_of(segment_id)
            if owner == address:
                # Owned: serve it, and feed the heat/imbalance gauges.
                self.directory.record_heat(segment_id, message.size)
                return None
            return {"owner": owner, "map_version": self.directory.version}

        return guard

    # -- lookups -------------------------------------------------------------

    @property
    def addresses(self) -> tuple[str, ...]:
        """Shard addresses, in directory registration order."""
        return tuple(tier.address for tier in self.tiers)

    def tier(self, address: str) -> typing.Any:
        """Look a shard up by address."""
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"no shard {address!r}") from None

    def storage_group(self, address: str) -> tuple[StorageServer, ...]:
        """The storage servers shard `address` replicates onto."""
        if address not in self._storage_groups:
            raise KeyError(f"no shard {address!r}")
        return self._storage_groups[address]

    def slo_monitors(self) -> dict[str, typing.Any]:
        """Each shard's own SLO monitor, by address (``None`` entries
        when the platform declares no SLOs)."""
        return {tier.address: tier.slo for tier in self.tiers}

    def slo_verdicts(self) -> dict[str, dict]:
        """Per-shard SLO verdicts — the blast-radius view: a killed
        shard burns its own error budget while healthy shards' budgets
        stay intact (``docs/observability.md``)."""
        return {
            tier.address: tier.slo.verdict()
            for tier in self.tiers
            if tier.slo is not None
        }

    def segment_of(self, message: Message) -> int:
        """The segment a request addresses (header field or derived)."""
        segment_id = message.header.get("segment_id")
        if segment_id is None:
            segment_id = self.mapper.segment_of(message.header["block_id"])
        return segment_id

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every shard's worker pool (idempotent)."""
        for tier in self.tiers:
            tier.start()

    def _client_ports(self, tier: typing.Any) -> list:
        """The tier's unique client-facing network ports, any flavor."""
        ports, seen = [], set()
        for index in range(getattr(tier, "n_ports", 1)):
            port = tier._endpoint_for_port(index).port
            if id(port) not in seen:
                seen.add(id(port))
                ports.append(port)
        return ports

    def attach_ledger(self, ledger: typing.Any) -> typing.Any:
        """Attach a FlowLedger to every shard's client-facing port(s)."""
        for tier in self.tiers:
            for port in self._client_ports(tier):
                ledger.attach(port)
        return ledger

    def ingress_points(self, address: str) -> tuple:
        """The shard's FlowLedger rx point names — port naming is
        per-flavor (``shard0.port`` vs the SmartDS ``shard0.port0``), so
        conservation checks should ask rather than guess."""
        return tuple(
            f"{port.name}.rx" for port in self._client_ports(self.tier(address))
        )

    def fail_shard_storage(self, address: str) -> None:
        """Crash every storage server in `address`'s replica group."""
        for server in self.storage_group(address):
            server.fail()

    def recover_shard_storage(self, address: str) -> None:
        """Recover `address`'s replica group."""
        for server in self.storage_group(address):
            server.recover()

    def __repr__(self) -> str:
        return (
            f"<ShardedCluster {self.design!r} shards={len(self.tiers)} "
            f"storage={'partitioned' if self.partition_storage else 'shared'}>"
        )

"""Sharded multi-tier cluster: segment directory + stale-map routing.

The paper's testbed has one middle-tier server (§5.1). This package
scales the tier horizontally (``docs/scaling.md``):

- :class:`~repro.cluster.directory.SegmentDirectory` places 32 GB
  segments onto shards with a consistent-hash ring of virtual nodes
  plus explicit per-segment overrides, handing out versioned
  :class:`~repro.cluster.directory.RouteMap` snapshots;
- :class:`~repro.cluster.sharded.ShardedCluster` instantiates N
  middle-tier servers (any design flavor) over a shared
  :class:`~repro.middletier.cluster.Testbed` and installs the
  shard-ownership guard that answers misrouted requests with
  ``status="wrong_shard"``;
- :class:`~repro.workloads.routing.RoutingClient` (in
  :mod:`repro.workloads`) caches the route map, routes by segment, and
  retries on ``wrong_shard`` after refetching.
"""

from repro.cluster.directory import RouteMap, SegmentDirectory, stable_hash
from repro.cluster.sharded import ShardedCluster

__all__ = [
    "RouteMap",
    "SegmentDirectory",
    "ShardedCluster",
    "stable_hash",
]

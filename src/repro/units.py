"""Unit helpers.

The simulator uses SI base units throughout: **seconds** for time,
**bytes** for data, and **bytes/second** for rates. These helpers convert
the units the paper speaks in (Gb/s links, KiB blocks, microsecond
latencies) into base units, and back for reporting.
"""

from __future__ import annotations

#: bits per byte, used in every rate conversion.
BITS_PER_BYTE = 8


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second (e.g. ``gbps(100)`` for 100 GbE)."""
    return value * 1e9 / BITS_PER_BYTE


def to_gbps(bytes_per_sec: float) -> float:
    """Convert bytes/second back to gigabits/second for reporting."""
    return bytes_per_sec * BITS_PER_BYTE / 1e9


def gBps(value: float) -> float:
    """Convert gigabytes/second (memory-bandwidth convention) to bytes/second."""
    return value * 1e9


def to_gBps(bytes_per_sec: float) -> float:
    """Convert bytes/second to gigabytes/second for reporting."""
    return bytes_per_sec / 1e9


def kib(value: float) -> int:
    """KiB to bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """MiB to bytes."""
    return int(value * 1024 * 1024)


def gib(value: float) -> int:
    """GiB to bytes."""
    return int(value * 1024 * 1024 * 1024)


def usec(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def to_usec(seconds: float) -> float:
    """Seconds to microseconds for reporting."""
    return seconds * 1e6


def msec(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3

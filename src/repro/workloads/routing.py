"""Directory-routed client driver for the sharded middle tier.

:class:`RoutingClient` is the cluster-aware sibling of
:class:`~repro.workloads.generators.ClientDriver`: one physical client
port, one queue pair per shard, a cached
:class:`~repro.cluster.directory.RouteMap`, and the stale-map retry
protocol of ``docs/scaling.md``:

1. resolve the request's segment and look its owner up in the cached
   map (local, no simulated time);
2. send to that shard, tagging the attempt ``flow="shard:<address>"``
   so FlowLedger byte-conservation audits work per shard;
3. on ``status="wrong_shard"``, refetch the map (paying
   ``ClusterSpec.map_fetch_latency``), back off deterministically, and
   retry — bounded by ``ClusterSpec.max_route_retries`` via the
   existing :class:`~repro.middletier.retry.RetryPolicy` machinery;
4. a request that exhausts its route budget surfaces in
   :attr:`DriverResult.failures` as ``(lba, "wrong_shard")`` — never
   silently dropped.

With ``ClusterSpec.directory_bypassed`` (the 1-shard default) the
client takes the exact single-tier path: no map fetch, no lookup, no
flow tags — byte-for-byte the behavior of ``ClientDriver``.
"""

from __future__ import annotations

import typing

from repro.middletier.retry import RetryPolicy
from repro.net.link import NetworkPort
from repro.net.message import Message
from repro.net.roce import RoceEndpoint
from repro.telemetry.metrics import Counter, LatencyRecorder
from repro.telemetry.registry import registry_for
from repro.workloads.generators import DriverResult, WriteRequestFactory

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.sharded import ShardedCluster
    from repro.sim.kernel import Simulator

#: (start, end, payload_bytes, status, lba) per completed request.
_Sample = tuple[float, float, int, str, int]


class RoutingClient:
    """Closed-loop driver that routes each request by segment owner."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "ShardedCluster",
        factory: WriteRequestFactory,
        concurrency: int,
        address: str | None = None,
        warmup_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if not 0.0 <= warmup_fraction < 0.5:
            raise ValueError("warmup_fraction must be in [0, 0.5)")
        self.sim = sim
        self.cluster = cluster
        self.spec = cluster.spec
        self.factory = factory
        self.concurrency = concurrency
        self.warmup_fraction = warmup_fraction
        self.address = address or f"router-{factory.vm_id}"
        platform = cluster.platform
        self.port = NetworkPort(
            sim, rate=platform.network.port_rate, name=f"{self.address}.port"
        )
        self.endpoint = RoceEndpoint(sim, self.port, self.address, spec=platform.network)
        # One queue pair per shard, all over the same physical port.
        self._qps = {}
        for tier in cluster.tiers:
            qp = tier.attach_client(self.endpoint)
            self._qps[tier.address] = qp
            sim.process(
                self._reply_loop(qp),
                name=f"{self.address}.replies.{tier.address}",
                daemon=True,
            )
        recovery = platform.recovery
        #: Bounds the stale-map retry loop; backoff jitter is a pure
        #: function of (seed, lba, attempt) so churn runs replay exactly.
        self.route_retry = RetryPolicy(
            max_attempts=self.spec.max_route_retries,
            attempt_timeout=recovery.read_attempt_timeout,
            backoff_base=recovery.backoff_base,
            backoff_multiplier=recovery.backoff_multiplier,
            backoff_cap=recovery.backoff_cap,
            jitter=recovery.backoff_jitter,
            seed=seed,
        )
        self._map: typing.Any = None
        self.map_fetches = Counter(f"{self.address}.map-fetches")
        self.stale_retries = Counter(f"{self.address}.stale-retries")
        self.route_exhausted = Counter(f"{self.address}.route-exhausted")
        self.replies_unmatched = Counter(f"{self.address}.unmatched")
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="cluster", client=self.address)
            registry.register_instance(self.map_fetches, "client.map_fetches", **labels)
            registry.register_instance(self.stale_retries, "client.stale_retries", **labels)
            registry.register_instance(self.route_exhausted, "client.route_exhausted", **labels)
        self._samples: list[_Sample] = []
        self._failures: list[tuple[int, str]] = []
        self._reply_events: dict[int, typing.Any] = {}
        #: Per-shard latency of ``ok`` requests, keyed by the shard that
        #: finally served them (no warm-up exclusion — for the cluster
        #: experiment's per-shard tail comparison).
        self.shard_latency: dict[str, LatencyRecorder] = {
            address: LatencyRecorder(f"{self.address}.{address}")
            for address in cluster.addresses
        }

    # -- plumbing ------------------------------------------------------------

    def _reply_loop(self, qp: typing.Any) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            event = self._reply_events.pop(message.header.get("in_reply_to"), None)
            if event is None:
                self.replies_unmatched.add()
            else:
                event.succeed(message)

    def _fetch_map(self) -> typing.Generator:
        """Fetch a fresh route map from the directory service."""
        yield self.sim.timeout(self.spec.map_fetch_latency)
        self._map = self.cluster.directory.route_map()
        self.map_fetches.add()

    @property
    def map_version(self) -> int | None:
        """Version of the cached route map (``None`` before first fetch)."""
        return None if self._map is None else self._map.version

    # -- the routed request path ---------------------------------------------

    def _issue(
        self,
        message: Message,
        collector: typing.Any,
        samples: list[_Sample],
        failures: list[tuple[int, str]],
    ) -> typing.Generator:
        """Send one request to its owning shard, retrying stale routes."""
        bypassed = self.spec.directory_bypassed
        lba = message.header.get("block_id", -1)
        segment_id = None if bypassed else self.cluster.segment_of(message)
        root = None
        if collector is not None:
            root = collector.request(
                message.kind, message.request_id, vm=self.factory.vm_id, lba=lba
            )
        start = self.sim.now
        attempt = 1
        while True:
            if bypassed:
                target = self.cluster.addresses[0]
            else:
                if self._map is None:
                    yield from self._fetch_map()
                target = self._map.owner_of(segment_id)
                message.flow = f"shard:{target}"
                if root is not None:
                    lookup = root.child(
                        "route.lookup",
                        shard=target,
                        map_version=self._map.version,
                        segment=segment_id,
                        attempt=attempt,
                    )
                    lookup.finish("ok")
            tx = None
            if root is not None:
                # The transport reassigns message.span to its own child,
                # so hold the tx span locally to finish it.
                tx = message.span = root.child("client.tx")
            reply_event = self.sim.event(name=f"reply:{message.request_id}")
            self._reply_events[message.request_id] = reply_event
            yield self._qps[target].send(message)
            if tx is not None:
                tx.finish(nbytes=message.size)
            reply = yield reply_event
            status = reply.header.get("status", "ok")
            if status != "wrong_shard":
                if root is not None:
                    outcome = (
                        "ok" if status == "ok" else ("shed" if status == "shed" else "failed")
                    )
                    if attempt > 1 and status == "ok":
                        outcome = "retried"
                    root.finish(outcome, nbytes=reply.payload_size, status=status)
                if status != "ok":
                    failures.append((lba, status))
                else:
                    self.shard_latency[target].record(self.sim.now - start)
                # Writes carry the payload out; reads carry it back.
                size = (
                    message.payload_size
                    if message.kind == "write_request"
                    else reply.payload_size
                )
                samples.append((start, self.sim.now, size, status, lba))
                return
            # Stale route: the shard no longer (or never did) own the
            # segment. Refetch and retry, bounded by the retry policy.
            self.stale_retries.add()
            if root is not None:
                bounce = root.child(
                    "route.stale_retry",
                    shard=target,
                    owner=reply.header.get("owner"),
                    map_version=reply.header.get("map_version"),
                    attempt=attempt,
                )
                bounce.finish("retried")
            if self.route_retry.attempts_exhausted(attempt):
                # Terminal: surfaced, never silently dropped.
                self.route_exhausted.add()
                if root is not None:
                    root.finish("failed", status="wrong_shard", attempts=attempt)
                failures.append((lba, "wrong_shard"))
                samples.append((start, self.sim.now, 0, "wrong_shard", lba))
                return
            attempt += 1
            yield self.sim.timeout(self.route_retry.backoff_before(attempt, token=lba))
            yield from self._fetch_map()

    # -- closed-loop write runs ----------------------------------------------

    def run(self, n_requests: int) -> typing.Any:
        """Issue `n_requests` writes across the closed-loop streams.

        Returns a process that fires with a :class:`DriverResult`.
        """
        if n_requests < self.concurrency:
            raise ValueError("n_requests must be >= concurrency")
        self.cluster.start()
        return self.sim.process(self._run(n_requests), name=f"{self.address}.run")

    def _run(self, n_requests: int) -> typing.Generator:
        # Prefetch once so no request's latency sample pays the startup
        # map fetch (every stream shifts uniformly instead).
        if not self.spec.directory_bypassed and self._map is None:
            yield from self._fetch_map()
        per_stream = n_requests // self.concurrency
        streams = [
            self.sim.process(self._stream(per_stream), name=f"{self.address}.s{i}")
            for i in range(self.concurrency)
        ]
        yield self.sim.all_of(streams)
        return self.result()

    def _stream(self, n_requests: int) -> typing.Generator:
        collector = self.sim._span_collector
        for _ in range(n_requests):
            message = self.factory.make()
            yield from self._issue(message, collector, self._samples, self._failures)

    # -- routed reads ---------------------------------------------------------

    def run_reads(
        self, lbas: typing.Sequence[int], concurrency: int | None = None
    ) -> typing.Any:
        """Issue routed reads for `lbas`; returns a process firing with a
        fresh :class:`DriverResult` covering the reads only."""
        concurrency = concurrency or self.concurrency
        lbas = list(lbas)
        if not lbas:
            raise ValueError("no LBAs to read")
        self.cluster.start()
        samples: list[_Sample] = []
        failures: list[tuple[int, str]] = []
        shards = [lbas[i::concurrency] for i in range(concurrency)]
        collector = self.sim._span_collector

        def stream(batch: list[int]) -> typing.Generator:
            for lba in batch:
                message = self.factory.make_read(lba)
                yield from self._issue(message, collector, samples, failures)

        def collect() -> typing.Generator:
            if not self.spec.directory_bypassed and self._map is None:
                yield from self._fetch_map()
            streams = [
                self.sim.process(stream(batch), name=f"{self.address}.r{i}")
                for i, batch in enumerate(shards)
                if batch
            ]
            yield self.sim.all_of(streams)
            return _summarize(samples, failures, warmup_fraction=0.0)

        return self.sim.process(collect(), name=f"{self.address}.reads")

    # -- results ---------------------------------------------------------------

    def result(self) -> DriverResult:
        """Statistics over the measured (post-warm-up) write stream."""
        if not self._samples:
            raise RuntimeError("routing client has no completed requests")
        return _summarize(self._samples, self._failures, self.warmup_fraction)

    def __repr__(self) -> str:
        return (
            f"<RoutingClient {self.address!r} shards={len(self._qps)} "
            f"map_version={self.map_version}>"
        )


def _summarize(
    samples: list[_Sample],
    failures: list[tuple[int, str]],
    warmup_fraction: float,
) -> DriverResult:
    """Fold routed samples into a :class:`DriverResult` (goodput-only).

    Latency and payload bytes cover ``ok`` requests only, exactly like
    :class:`~repro.workloads.generators.OpenLoopDriver`; non-ok
    terminal statuses are surfaced through ``failures``.
    """
    ordered = sorted(samples, key=lambda sample: sample[1])
    skip = int(len(ordered) * warmup_fraction)
    measured = ordered[skip:] if skip else ordered
    latency = LatencyRecorder("routed-latency")
    payload_bytes = 0
    measured_failures: list[tuple[int, str]] = []
    for start, end, size, status, lba in measured:
        if status == "ok":
            latency.record(end - start)
            payload_bytes += size
        else:
            measured_failures.append((lba, status))
    duration = max(measured[-1][1] - measured[0][1], 1e-12)
    return DriverResult(
        requests=len(measured),
        payload_bytes=payload_bytes,
        duration=duration,
        latency=latency,
        failures=tuple(measured_failures),
    )

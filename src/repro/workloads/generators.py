"""Write/read request generation and the closed-loop client driver."""

from __future__ import annotations

import bisect
import dataclasses
import itertools
import random
import typing

from repro.compression.model import RatioSampler
from repro.net.link import NetworkPort
from repro.net.message import Message, Payload
from repro.net.roce import RoceEndpoint
from repro.params import PlatformSpec
from repro.telemetry.metrics import Counter, LatencyRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middletier.base import MiddleTierServer
    from repro.sim.kernel import Simulator


class WriteRequestFactory:
    """Builds the paper's write requests: 64 B header + 4 KB block.

    Two payload modes:

    - *synthetic* (default): the block's compressibility is drawn from
      `ratio_sampler`, calibrated on the Silesia-like corpus;
    - *functional*: pass `blocks` (real byte blocks, e.g. from
      :meth:`repro.compression.corpus.SilesiaLikeCorpus.blocks`) and
      requests will cycle through them carrying real data.
    """

    def __init__(
        self,
        platform: PlatformSpec | None = None,
        ratio_sampler: RatioSampler | None = None,
        blocks: typing.Sequence[bytes] | None = None,
        latency_sensitive_fraction: float = 0.0,
        vm_id: str = "vm0",
        seed: int = 0,
        spread_segments: int = 1,
    ) -> None:
        if not 0.0 <= latency_sensitive_fraction <= 1.0:
            raise ValueError("latency_sensitive_fraction must be in [0, 1]")
        if spread_segments < 1:
            raise ValueError(f"spread_segments must be >= 1, got {spread_segments}")
        self.platform = platform or PlatformSpec()
        self.spread_segments = spread_segments
        self.ratio_sampler = ratio_sampler or RatioSampler.constant(2.1)
        self.blocks = list(blocks) if blocks is not None else None
        if self.blocks is not None and not self.blocks:
            raise ValueError("functional mode needs at least one block")
        self.latency_sensitive_fraction = latency_sensitive_fraction
        self.vm_id = vm_id
        self._rng = random.Random(seed)
        self._next_lba = 0

    def make(self) -> Message:
        """Build the next write request."""
        workload = self.platform.workload
        if self.blocks is not None:
            data = self.blocks[self._next_lba % len(self.blocks)]
            payload = Payload.from_bytes(data)
        else:
            payload = Payload.synthetic(workload.block_size, self.ratio_sampler.sample())
        index = self._next_lba
        self._next_lba += 1
        if self.spread_segments == 1:
            lba = index
        else:
            # Interleave the sequential stream across the first N
            # segments so a sharded cluster sees traffic on every shard
            # instead of one 32 GB segment soaking everything.
            blocks_per_segment = self.platform.storage.segment_bytes // workload.block_size
            lba = (index % self.spread_segments) * blocks_per_segment + (
                index // self.spread_segments
            )
        chunk_blocks = self.platform.storage.chunk_bytes // workload.block_size
        latency_sensitive = self._rng.random() < self.latency_sensitive_fraction
        return Message(
            kind="write_request",
            src=self.vm_id,
            dst="",
            header_size=workload.header_size,
            payload=payload,
            header={
                "vm_id": self.vm_id,
                "service_type": "block-write",
                "block_id": lba,
                "chunk_id": lba // chunk_blocks,
                "segment_id": (lba * workload.block_size)
                // self.platform.storage.segment_bytes,
                "latency_sensitive": latency_sensitive,
            },
        )

    def make_read(self, lba: int) -> Message:
        """Build a read request for a previously written LBA."""
        workload = self.platform.workload
        chunk_blocks = self.platform.storage.chunk_bytes // workload.block_size
        return Message(
            kind="read_request",
            src=self.vm_id,
            dst="",
            header_size=workload.header_size,
            header={
                "vm_id": self.vm_id,
                "service_type": "block-read",
                "block_id": lba,
                "chunk_id": lba // chunk_blocks,
            },
        )


class SkewedReadFactory:
    """Zipf-distributed reads over a previously written LBA range.

    Rank ``r`` (1-based) is read with weight ``1 / r**skew``; ``skew=0``
    degenerates to uniform. Which LBA holds which rank comes from a
    seeded shuffle, so the hot set is not just the first blocks written.
    Wraps a :class:`WriteRequestFactory` for the actual request build,
    so headers (chunk ids, VM id) match the write stream's.
    """

    def __init__(
        self,
        factory: WriteRequestFactory,
        n_blocks: int,
        skew: float = 0.99,
        seed: int = 0,
    ) -> None:
        if n_blocks < 1:
            raise ValueError(f"need at least one block, got {n_blocks}")
        if skew < 0:
            raise ValueError(f"Zipf skew must be non-negative, got {skew!r}")
        self.factory = factory
        self.n_blocks = n_blocks
        self.skew = skew
        self._rng = random.Random(seed)
        lbas = list(range(n_blocks))
        self._rng.shuffle(lbas)
        self._by_rank = lbas  # rank i (0-based) -> LBA
        weights = [1.0 / (rank**skew) for rank in range(1, n_blocks + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    @property
    def hottest_lba(self) -> int:
        """The rank-1 LBA (highest access probability)."""
        return self._by_rank[0]

    def expected_frequency(self, rank: int) -> float:
        """Theoretical access probability of 1-based `rank`."""
        if not 1 <= rank <= self.n_blocks:
            raise ValueError(f"rank must be in 1..{self.n_blocks}, got {rank}")
        return (1.0 / rank**self.skew) / self._total

    def next_lba(self) -> int:
        """Sample one LBA from the Zipf distribution."""
        u = self._rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, u)
        return self._by_rank[min(rank, self.n_blocks - 1)]

    def make(self) -> Message:
        """Build a read request for a Zipf-sampled LBA."""
        return self.factory.make_read(self.next_lba())


@dataclasses.dataclass
class DriverResult:
    """What one closed-loop run measured (after warm-up exclusion)."""

    requests: int
    payload_bytes: int
    duration: float
    latency: LatencyRecorder
    #: Requests that completed with a non-``ok`` status, as
    #: ``(lba, status)`` pairs — e.g. ``(17, "unavailable")`` when every
    #: replica fail-over attempt for LBA 17 timed out.
    failures: tuple = ()

    @property
    def throughput(self) -> float:
        """Served payload bytes/second (the paper's throughput metric)."""
        if self.duration <= 0:
            return 0.0
        return self.payload_bytes / self.duration

    @property
    def failed_lbas(self) -> tuple:
        """LBAs whose request failed, in completion order."""
        return tuple(lba for lba, _status in self.failures)

    @property
    def ok_requests(self) -> int:
        """Requests that completed with ``status="ok"``."""
        return self.requests - len(self.failures)


class OpenLoopDriver:
    """Open-loop (Poisson) load generator.

    Issues write requests at a fixed offered rate with exponential
    inter-arrival times, regardless of completions — the right tool for
    latency-vs-load curves, where closed-loop generators hide queueing.
    """

    def __init__(
        self,
        sim: "Simulator",
        tier: "MiddleTierServer",
        factory: WriteRequestFactory,
        offered_rate: float,
        port_index: int = 0,
        address: str | None = None,
        warmup_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if offered_rate <= 0:
            raise ValueError(f"offered rate must be positive, got {offered_rate!r}")
        if not 0.0 <= warmup_fraction < 0.5:
            raise ValueError("warmup_fraction must be in [0, 0.5)")
        self.sim = sim
        self.tier = tier
        self.factory = factory
        self.offered_rate = offered_rate  # requests/second
        self.warmup_fraction = warmup_fraction
        self.address = address or f"openloop-{factory.vm_id}-p{port_index}"
        self._rng = random.Random(seed)
        port = NetworkPort(
            sim, rate=tier.platform.network.port_rate, name=f"{self.address}.port"
        )
        self.endpoint = RoceEndpoint(sim, port, self.address, spec=tier.platform.network)
        self.qp = tier.attach_client(self.endpoint, port_index=port_index)
        # (start, end, payload, status, lba) per completed request.
        self._samples: list[tuple[float, float, int, str, int]] = []
        self._reply_events: dict[int, typing.Any] = {}
        sim.process(self._reply_loop(), name=f"{self.address}.replies", daemon=True)

    def _reply_loop(self) -> typing.Generator:
        while True:
            message: Message = yield self.qp.recv()
            event = self._reply_events.pop(message.header.get("in_reply_to"), None)
            if event is not None:
                event.succeed(message)

    def run(self, n_requests: int) -> typing.Any:
        """Offer `n_requests` at the configured rate; returns a process
        that fires with a :class:`DriverResult` once all complete."""
        if n_requests < 1:
            raise ValueError("need at least one request")
        self.tier.start()
        return self.sim.process(self._run(n_requests), name=f"{self.address}.run")

    def _run(self, n_requests: int) -> typing.Generator:
        outstanding = []
        for _ in range(n_requests):
            yield self.sim.timeout(self._rng.expovariate(self.offered_rate))
            outstanding.append(self.sim.process(self._one_request()))
        yield self.sim.all_of(outstanding)
        ordered = sorted(self._samples, key=lambda sample: sample[1])
        skip = int(len(ordered) * self.warmup_fraction)
        measured = ordered[skip:] if skip else ordered
        # Latency and payload bytes cover ok requests only — a shed reply
        # returns in microseconds and would otherwise *improve* the tail
        # while goodput collapses. `throughput` is therefore goodput.
        latency = LatencyRecorder("openloop-latency")
        payload_bytes = 0
        failures: list[tuple[int, str]] = []
        for start, end, size, status, lba in measured:
            if status == "ok":
                latency.record(end - start)
                payload_bytes += size
            else:
                failures.append((lba, status))
        duration = max(measured[-1][1] - measured[0][1], 1e-12)
        return DriverResult(
            requests=len(measured),
            payload_bytes=payload_bytes,
            duration=duration,
            latency=latency,
            failures=tuple(failures),
        )

    def _one_request(self) -> typing.Generator:
        message = self.factory.make()
        collector = self.sim._span_collector
        root = tx = None
        if collector is not None:
            root = collector.request(
                message.kind,
                message.request_id,
                vm=self.factory.vm_id,
                lba=message.header.get("block_id"),
            )
            # The transport reassigns message.span to its own child, so
            # hold the tx span locally to finish it.
            tx = message.span = root.child("client.tx")
        reply_event = self.sim.event()
        self._reply_events[message.request_id] = reply_event
        start = self.sim.now
        yield self.qp.send(message)
        if tx is not None:
            tx.finish(nbytes=message.size)
        reply = yield reply_event
        status = reply.header.get("status", "ok")
        if root is not None:
            outcome = "ok" if status == "ok" else ("shed" if status == "shed" else "failed")
            root.finish(outcome, nbytes=reply.payload_size, status=status)
        self._samples.append(
            (
                start,
                self.sim.now,
                message.payload_size,
                status,
                message.header.get("block_id", -1),
            )
        )


class ClientDriver:
    """Closed-loop load generator: `concurrency` outstanding requests.

    Plays the role of the request-issuing server in §5.1. Latency is
    measured per request from send-post to reply receipt; the first
    `warmup_fraction` of requests (and the ramp-down tail) are excluded
    from the reported statistics.
    """

    def __init__(
        self,
        sim: "Simulator",
        tier: "MiddleTierServer",
        factory: WriteRequestFactory,
        concurrency: int,
        port_index: int = 0,
        address: str | None = None,
        warmup_fraction: float = 0.1,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if not 0.0 <= warmup_fraction < 0.5:
            raise ValueError("warmup_fraction must be in [0, 0.5)")
        self.sim = sim
        self.tier = tier
        self.factory = factory
        self.concurrency = concurrency
        self.warmup_fraction = warmup_fraction
        self.address = address or f"client-{factory.vm_id}-p{port_index}"
        port = NetworkPort(
            sim, rate=tier.platform.network.port_rate, name=f"{self.address}.port"
        )
        self.endpoint = RoceEndpoint(
            sim, port, self.address, spec=tier.platform.network
        )
        self.qp = tier.attach_client(self.endpoint, port_index=port_index)
        self._samples: list[tuple[float, float, int]] = []  # (start, end, payload)
        self._reply_events: dict[int, typing.Any] = {}
        self.replies_unmatched = Counter(f"{self.address}.unmatched")
        sim.process(self._reply_loop(), name=f"{self.address}.replies", daemon=True)

    def _reply_loop(self) -> typing.Generator:
        while True:
            message: Message = yield self.qp.recv()
            request_id = message.header.get("in_reply_to")
            event = self._reply_events.pop(request_id, None)
            if event is None:
                self.replies_unmatched.add()
            else:
                event.succeed(message)

    def run(self, n_requests: int) -> typing.Any:
        """Issue `n_requests` total across the closed-loop streams.

        Returns an event (process) that fires with a
        :class:`DriverResult` when the run completes.
        """
        if n_requests < self.concurrency:
            raise ValueError("n_requests must be >= concurrency")
        self.tier.start()
        per_stream = n_requests // self.concurrency
        streams = [
            self.sim.process(self._stream(per_stream), name=f"{self.address}.s{i}")
            for i in range(self.concurrency)
        ]
        return self.sim.process(self._collect(streams, n_requests), name=f"{self.address}.run")

    def _stream(self, n_requests: int) -> typing.Generator:
        collector = self.sim._span_collector
        for _ in range(n_requests):
            message = self.factory.make()
            root = tx = None
            if collector is not None:
                root = collector.request(
                    message.kind,
                    message.request_id,
                    vm=self.factory.vm_id,
                    lba=message.header.get("block_id"),
                )
                # The transport reassigns message.span to its own child,
                # so hold the tx span locally to finish it.
                tx = message.span = root.child("client.tx")
            reply_event = self.sim.event(name=f"reply:{message.request_id}")
            self._reply_events[message.request_id] = reply_event
            start = self.sim.now
            yield self.qp.send(message)
            if tx is not None:
                tx.finish(nbytes=message.size)
            reply = yield reply_event
            if root is not None:
                status = reply.header.get("status", "ok")
                outcome = "ok" if status == "ok" else ("shed" if status == "shed" else "failed")
                root.finish(outcome, nbytes=reply.payload_size, status=status)
            self._samples.append((start, self.sim.now, message.payload_size))

    def _collect(self, streams: list, n_requests: int) -> typing.Generator:
        yield self.sim.all_of(streams)
        return self.result()

    def run_reads(self, lbas: typing.Sequence[int], concurrency: int | None = None) -> typing.Any:
        """Issue read requests for `lbas` (closed loop); returns a process
        that fires with a fresh :class:`DriverResult` for the reads only.

        Per-read failures are *surfaced*, not folded away: a reply with
        ``status != "ok"`` (``unavailable`` after exhausted fail-over,
        ``not_found``) lands in :attr:`DriverResult.failures` with its
        LBA, so callers can tell which reads the aggregate hides.
        """
        concurrency = concurrency or self.concurrency
        lbas = list(lbas)
        if not lbas:
            raise ValueError("no LBAs to read")
        self.tier.start()
        samples: list[tuple[float, float, int]] = []
        failures: list[tuple[int, str]] = []
        shards = [lbas[i::concurrency] for i in range(concurrency)]

        collector = self.sim._span_collector

        def stream(shard):
            for lba in shard:
                message = self.factory.make_read(lba)
                root = tx = None
                if collector is not None:
                    root = collector.request(
                        message.kind, message.request_id, vm=self.factory.vm_id, lba=lba
                    )
                    tx = message.span = root.child("client.tx")
                reply_event = self.sim.event()
                self._reply_events[message.request_id] = reply_event
                start = self.sim.now
                yield self.qp.send(message)
                if tx is not None:
                    tx.finish(nbytes=message.size)
                reply = yield reply_event
                status = reply.header.get("status", "ok")
                if root is not None:
                    outcome = (
                        "ok" if status == "ok" else ("shed" if status == "shed" else "failed")
                    )
                    root.finish(outcome, nbytes=reply.payload_size, status=status)
                if status != "ok":
                    failures.append((lba, status))
                samples.append((start, self.sim.now, reply.payload_size))

        streams = [self.sim.process(stream(shard)) for shard in shards if shard]

        def collect():
            yield self.sim.all_of(streams)
            ordered = sorted(samples, key=lambda sample: sample[1])
            latency = LatencyRecorder("read-latency")
            payload_bytes = 0
            for begin, end, size in ordered:
                latency.record(end - begin)
                payload_bytes += size
            duration = max(ordered[-1][1] - ordered[0][1], 1e-12)
            return DriverResult(
                requests=len(ordered),
                payload_bytes=payload_bytes,
                duration=duration,
                latency=latency,
                failures=tuple(failures),
            )

        return self.sim.process(collect())

    def result(self) -> DriverResult:
        """Statistics over the measured (post-warm-up) portion of the run."""
        if not self._samples:
            raise RuntimeError("driver has no completed requests")
        ordered = sorted(self._samples, key=lambda sample: sample[1])
        skip = int(len(ordered) * self.warmup_fraction)
        measured = ordered[skip:] if skip else ordered
        latency = LatencyRecorder("client-latency")
        payload_bytes = 0
        for start, end, size in measured:
            latency.record(end - start)
            payload_bytes += size
        window_start = measured[0][1]
        window_end = measured[-1][1]
        return DriverResult(
            requests=len(measured),
            payload_bytes=payload_bytes,
            duration=max(window_end - window_start, 1e-12),
            latency=latency,
        )

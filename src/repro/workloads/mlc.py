"""Intel-MLC-style memory pressure injector.

Reproduces the methodology of §3.1.2 and §5.3: N threads inject dummy
memory requests into the memory subsystem, with a configurable delay
between requests controlling the pressure level (delay 0 = maximum
pressure). The injector meters its own achieved bandwidth, which the
paper reports alongside the victim's throughput (Fig. 9a).
"""

from __future__ import annotations

import typing

from repro.hostmodel.memory import MemorySubsystem
from repro.telemetry.metrics import BandwidthMeter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class MlcInjector:
    """N software threads hammering the memory subsystem."""

    def __init__(
        self,
        sim: "Simulator",
        memory: MemorySubsystem,
        n_threads: int,
        delay: float,
        chunk: int = 16 * 1024,
        read_fraction: float = 0.5,
    ) -> None:
        if n_threads < 0:
            raise ValueError(f"negative thread count {n_threads}")
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.sim = sim
        self.memory = memory
        self.n_threads = n_threads
        self.delay = delay
        self.chunk = chunk
        self.read_fraction = read_fraction
        self.meter = BandwidthMeter("mlc")
        self._running = False

    def start(self) -> None:
        """Launch the injector threads (idempotent)."""
        if self._running:
            return
        self._running = True
        for index in range(self.n_threads):
            self.sim.process(self._thread(index), name=f"mlc{index}")

    def stop(self) -> None:
        """Ask the threads to stop after their current request."""
        self._running = False

    def _thread(self, index: int) -> typing.Generator:
        # Interleave reads and writes deterministically at read_fraction.
        period = 10
        reads_per_period = round(self.read_fraction * period)
        step = 0
        while self._running:
            if step % period < reads_per_period:
                yield self.memory.read(self.chunk)
            else:
                yield self.memory.write(self.chunk)
            self.meter.record(self.sim.now, self.chunk)
            step += 1
            if self.delay > 0:
                yield self.sim.timeout(self.delay)

    def achieved_bandwidth(self, duration: float | None = None) -> float:
        """Bytes/second the injector actually pushed through."""
        return self.meter.rate(duration)

"""Synthetic block-I/O traces and a replay driver.

Clouds do not see smooth closed-loop load; they see bursty, diurnal
request streams. This module generates deterministic synthetic traces —
Poisson baseline with on/off bursts, mixed read/write, mixed latency
sensitivity — and replays them against any middle-tier design with the
timestamps the trace dictates (open loop).

A trace is just a list of :class:`TraceEntry`; bring your own if you
have one.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.telemetry.metrics import Counter, LatencyRecorder
from repro.workloads.generators import WriteRequestFactory

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middletier.base import MiddleTierServer
    from repro.sim.kernel import Simulator


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One request in a trace."""

    at: float  # arrival time, seconds from trace start
    kind: str  # "write" or "read"
    lba: int
    latency_sensitive: bool = False


def generate_trace(
    duration: float,
    base_rate: float,
    burst_rate: float | None = None,
    burst_on: float = 0.002,
    burst_off: float = 0.008,
    read_fraction: float = 1 / 6,  # writes outnumber reads ~5x (§2.2.3)
    latency_sensitive_fraction: float = 0.1,
    working_set_blocks: int = 4096,
    seed: int = 0,
) -> list[TraceEntry]:
    """Build a bursty on/off Poisson trace.

    The stream alternates between `burst_off`-long quiet periods at
    `base_rate` and `burst_on`-long bursts at `burst_rate` (defaults to
    4x the base). Reads target previously written LBAs.
    """
    if duration <= 0 or base_rate <= 0:
        raise ValueError("duration and base_rate must be positive")
    if not 0 <= read_fraction < 1:
        raise ValueError("read_fraction must be in [0, 1)")
    burst_rate = burst_rate or 4 * base_rate
    rng = random.Random(seed)
    entries: list[TraceEntry] = []
    now = 0.0
    next_lba = 0
    written: list[int] = []
    in_burst = False
    phase_end = burst_off
    while now < duration:
        rate = burst_rate if in_burst else base_rate
        now += rng.expovariate(rate)
        if now >= phase_end:
            in_burst = not in_burst
            phase_end = now + (burst_on if in_burst else burst_off)
        if now >= duration:
            break
        if written and rng.random() < read_fraction:
            entries.append(TraceEntry(at=now, kind="read", lba=rng.choice(written)))
        else:
            lba = next_lba % working_set_blocks
            next_lba += 1
            written.append(lba)
            entries.append(
                TraceEntry(
                    at=now,
                    kind="write",
                    lba=lba,
                    latency_sensitive=rng.random() < latency_sensitive_fraction,
                )
            )
    return entries


@dataclasses.dataclass
class TraceReplayResult:
    """What a replay measured, split by request kind."""

    write_latency: LatencyRecorder
    read_latency: LatencyRecorder
    writes: int
    reads: int
    read_misses: int
    duration: float


class TraceReplayer:
    """Replays a trace against a middle tier at its recorded timestamps."""

    def __init__(
        self,
        sim: "Simulator",
        tier: "MiddleTierServer",
        factory: WriteRequestFactory,
        port_index: int = 0,
    ) -> None:
        from repro.net.link import NetworkPort
        from repro.net.roce import RoceEndpoint

        self.sim = sim
        self.tier = tier
        self.factory = factory
        port = NetworkPort(
            sim, rate=tier.platform.network.port_rate, name="trace-client.port"
        )
        self.endpoint = RoceEndpoint(sim, port, "trace-client", spec=tier.platform.network)
        self.qp = tier.attach_client(self.endpoint, port_index=port_index)
        self._reply_events: dict[int, typing.Any] = {}
        self.read_misses = Counter("trace.read-misses")
        sim.process(self._reply_loop(), name="trace.replies", daemon=True)

    def _reply_loop(self) -> typing.Generator:
        while True:
            message = yield self.qp.recv()
            event = self._reply_events.pop(message.header.get("in_reply_to"), None)
            if event is not None:
                event.succeed(message)

    def replay(self, trace: typing.Sequence[TraceEntry]) -> typing.Any:
        """Replay `trace`; returns a process firing with a
        :class:`TraceReplayResult` when the last request completes."""
        if not trace:
            raise ValueError("empty trace")
        self.tier.start()
        return self.sim.process(self._replay(list(trace)), name="trace.replay")

    def _replay(self, trace: list[TraceEntry]) -> typing.Generator:
        start = self.sim.now
        write_latency = LatencyRecorder("trace.write")
        read_latency = LatencyRecorder("trace.read")
        counts = {"writes": 0, "reads": 0}
        outstanding = []
        for entry in trace:
            wait = start + entry.at - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            outstanding.append(
                self.sim.process(self._one(entry, write_latency, read_latency, counts))
            )
        yield self.sim.all_of(outstanding)
        return TraceReplayResult(
            write_latency=write_latency,
            read_latency=read_latency,
            writes=counts["writes"],
            reads=counts["reads"],
            read_misses=self.read_misses.value,
            duration=self.sim.now - start,
        )

    def _one(
        self,
        entry: TraceEntry,
        write_latency: LatencyRecorder,
        read_latency: LatencyRecorder,
        counts: dict,
    ) -> typing.Generator:
        platform = self.tier.platform
        chunk_blocks = platform.storage.chunk_bytes // platform.workload.block_size
        if entry.kind == "write":
            message = self.factory.make()
            message.header["block_id"] = entry.lba
            message.header["chunk_id"] = entry.lba // chunk_blocks
            message.header["latency_sensitive"] = entry.latency_sensitive
        elif entry.kind == "read":
            message = self.factory.make_read(entry.lba)
        else:
            raise ValueError(f"unknown trace entry kind {entry.kind!r}")
        reply_event = self.sim.event()
        self._reply_events[message.request_id] = reply_event
        begin = self.sim.now
        yield self.qp.send(message)
        reply = yield reply_event
        elapsed = self.sim.now - begin
        if entry.kind == "write":
            counts["writes"] += 1
            write_latency.record(elapsed)
        else:
            counts["reads"] += 1
            read_latency.record(elapsed)
            if reply.header.get("status") != "ok":
                self.read_misses.add()

"""Workload generators and background-pressure injectors.

- :class:`~repro.workloads.generators.WriteRequestFactory` builds the
  paper's 4 KB-block write requests, either synthetic (corpus-calibrated
  compression ratios) or functional (real corpus bytes);
- :class:`~repro.workloads.generators.ClientDriver` is the closed-loop
  load generator that plays the "one server keeps issuing write
  requests" role of §5.1 and records latency/throughput;
- :class:`~repro.workloads.generators.SkewedReadFactory` draws reads
  from a Zipf distribution over the written LBA range (hot-block cache
  experiments);
- :class:`~repro.workloads.routing.RoutingClient` is the cluster-aware
  driver: it caches the segment directory's route map, routes each
  request to its owning shard, and retries on ``wrong_shard`` replies
  (``docs/scaling.md``);
- :class:`~repro.workloads.mlc.MlcInjector` reproduces the Intel Memory
  Latency Checker methodology of §3.1.2/§5.3: dummy memory requests
  injected with a configurable inter-request delay.
"""

from repro.workloads.generators import (
    ClientDriver,
    DriverResult,
    OpenLoopDriver,
    SkewedReadFactory,
    WriteRequestFactory,
)
from repro.workloads.mlc import MlcInjector
from repro.workloads.routing import RoutingClient

__all__ = [
    "ClientDriver",
    "DriverResult",
    "MlcInjector",
    "OpenLoopDriver",
    "RoutingClient",
    "SkewedReadFactory",
    "WriteRequestFactory",
]

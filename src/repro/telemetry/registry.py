"""A labeled metrics registry with periodic gauge sampling.

Components keep their existing bare :class:`~repro.telemetry.metrics`
collectors for hot-path updates, but *register* them here under a
``(name, labels)`` key so experiments and exporters can enumerate every
series one place:

    registry = MetricsRegistry().attach(sim)
    hits = registry.counter("cache.hits", component="cache")
    registry.register(allocator.occupancy, "hbm.occupancy", tier="smartds")

Gauges additionally get periodic time-series sampling: a daemon sim
process wakes every `interval` seconds and snapshots every gauge's
level, so occupancy/queue-depth curves come out of a run for free
(``registry.samples()``). The sampler stops itself when the event queue
drains, so it never wedges drain-mode ``sim.run()`` or the tests' drain
auditor.

Like span collection, registration is optional: ``registry_for(sim)``
returns ``None`` on an unattached simulator and components skip
registration — their bare collectors keep working exactly as before.
"""

from __future__ import annotations

import math
import os
import typing

from repro.telemetry.metrics import BandwidthMeter, Counter, Gauge, LatencyRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Anything the registry can adopt as a series.
Collector = typing.Union[Counter, Gauge, LatencyRecorder, BandwidthMeter, "Histogram"]


class Histogram:
    """Fixed log-spaced buckets: O(1) observe, bounded memory.

    Buckets are ``lowest * factor**i`` for ``i`` in ``range(n_buckets)``;
    an observation lands in the first bucket whose upper bound is >= the
    value, with a catch-all overflow bucket at the top. Exact count,
    sum, min, and max are retained; percentiles come from the bucket
    upper bounds (so they over-report by at most one `factor`).

    The defaults (100 ns lowest bound, doubling, 40 buckets) cover
    100 ns .. ~15 hours — every latency this simulator can produce.
    """

    def __init__(
        self,
        name: str = "histogram",
        lowest: float = 1e-7,
        factor: float = 2.0,
        n_buckets: int = 40,
    ) -> None:
        if lowest <= 0:
            raise ValueError(f"lowest bound must be positive, got {lowest!r}")
        if factor <= 1.0:
            raise ValueError(f"bucket factor must be > 1, got {factor!r}")
        if n_buckets < 1:
            raise ValueError(f"need at least one bucket, got {n_buckets!r}")
        self.name = name
        self.bounds = tuple(lowest * factor**i for i in range(n_buckets))
        self._log_lowest = math.log(lowest)
        self._log_factor = math.log(factor)
        # +1: catch-all overflow bucket above the last bound.
        self.counts = [0] * (n_buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation (seconds, bytes — any non-negative unit)."""
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed negative {value!r}")
        if value <= self.bounds[0]:
            index = 0
        else:
            index = math.ceil((math.log(value) - self._log_lowest) / self._log_factor)
            # Guard the float boundary: log() can land a hair past an
            # exact bound; pull back if the previous bucket still fits.
            if index > 0 and value <= self.bounds[min(index, len(self.bounds)) - 1]:
                index -= 1
            index = min(index, len(self.bounds))
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        """Exact mean of all observations; raises when empty."""
        if not self.count:
            raise ValueError(f"no observations in histogram {self.name!r}")
        return self.sum / self.count

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the nearest-rank quantile.

        Conservative: the true value is within one bucket `factor`
        below the returned bound. The overflow bucket reports the exact
        observed max.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"percentile fraction must be in (0, 1], got {fraction!r}")
        if not self.count:
            raise ValueError(f"no observations in histogram {self.name!r}")
        rank = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return min(self.bounds[index], typing.cast(float, self.max))
                return typing.cast(float, self.max)
        raise AssertionError("rank not reached; counts out of sync")  # pragma: no cover

    def summary(self) -> dict[str, float]:
        """Same tuple shape as :meth:`LatencyRecorder.summary`."""
        return {
            "avg": self.mean(),
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def to_dict(self) -> dict:
        """Bucket bounds and counts, for the flat metrics dump."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name!r} n={self.count}>"


def _series_key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class _GaugeProbe:
    """A registered callable sampled like a gauge (queue depth, etc.)."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: typing.Callable[[], float]) -> None:
        self.name = name
        self.fn = fn


class MetricsRegistry:
    """All of one simulator's metric series, keyed by name + labels."""

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._series: dict[tuple, Collector] = {}
        self._probes: dict[tuple, _GaugeProbe] = {}
        self._samples: list[dict] = []
        self._sampler_running = False

    def attach(self, sim: "Simulator") -> "MetricsRegistry":
        """Make this registry discoverable via ``registry_for(sim)``."""
        sim._metrics_registry = self
        return self

    # -- registration -------------------------------------------------------

    def register(
        self, collector: Collector, name: str | None = None, **labels: str
    ) -> Collector:
        """Adopt an existing collector as the series `(name, labels)`.

        Re-registering the *same* object under the same key is a no-op
        (components may be constructed repeatedly per experiment cell);
        a *different* object under an existing key is a collision and
        raises.
        """
        key = _series_key(name or collector.name, labels)
        existing = self._series.get(key)
        if existing is collector:
            return collector
        if existing is not None:
            raise ValueError(f"series {key!r} already registered to {existing!r}")
        self._series[key] = collector
        return collector

    def register_instance(
        self, collector: Collector, name: str | None = None, **labels: str
    ) -> Collector:
        """Like :meth:`register`, but never collides.

        When `(name, labels)` is already held by a *different* object —
        a component constructed more than once per sim with identical
        labels (two devices, two allocators) — an ``instance`` label is
        added (``1``, ``2``, ...) instead of raising. The first
        registration keeps the clean label set.
        """
        name = name or collector.name
        key = _series_key(name, labels)
        existing = self._series.get(key)
        if existing is None or existing is collector:
            return self.register(collector, name, **labels)
        index = 1
        while True:
            candidate = dict(labels, instance=str(index))
            existing = self._series.get(_series_key(name, candidate))
            if existing is collector:
                return collector
            if existing is None:
                return self.register(collector, name, **candidate)
            index += 1

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create a :class:`Counter` series."""
        return typing.cast(Counter, self._get_or_create(Counter, name, labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create a :class:`Gauge` series."""
        return typing.cast(Gauge, self._get_or_create(Gauge, name, labels))

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get-or-create a :class:`Histogram` series."""
        return typing.cast(Histogram, self._get_or_create(Histogram, name, labels))

    def _get_or_create(self, factory: type, name: str, labels: dict[str, str]) -> Collector:
        key = _series_key(name, labels)
        existing = self._series.get(key)
        if existing is not None:
            if not isinstance(existing, factory):
                raise ValueError(
                    f"series {key!r} is a {type(existing).__name__}, not {factory.__name__}"
                )
            return existing
        collector = factory(name)
        self._series[key] = collector
        return collector

    def gauge_callable(self, name: str, fn: typing.Callable[[], float], **labels: str) -> None:
        """Register a level read on demand at each sample tick (queue
        depth, cache entries) without the component updating a Gauge."""
        key = _series_key(name, labels)
        if key in self._probes or key in self._series:
            raise ValueError(f"series {key!r} already registered")
        self._probes[key] = _GaugeProbe(name, fn)

    # -- enumeration / export -----------------------------------------------

    def series(self) -> dict[tuple, Collector]:
        """All registered series (shallow copy), keyed by (name, labels)."""
        return dict(self._series)

    def get(self, name: str, **labels: str) -> Collector | None:
        """The series registered under `(name, labels)`, or ``None``."""
        return self._series.get(_series_key(name, labels))

    def to_dict(self) -> dict:
        """Flat JSON-ready dump of every series and the gauge samples.

        Probes (:meth:`gauge_callable`) are read once at dump time and
        included as ``type: "probe"`` entries; the whole list is sorted
        by ``(name, labels)`` so two dumps of the same run diff cleanly.
        """
        entries: list[tuple[tuple, dict]] = []
        for (name, label_items), probe in self._probes.items():
            try:
                value: typing.Any = float(probe.fn())
            except Exception:  # observability must not crash the dump
                value = None
            entries.append(
                (
                    (name, label_items),
                    {
                        "name": name,
                        "labels": dict(label_items),
                        "type": "probe",
                        "value": value,
                    },
                )
            )
        for (name, label_items), collector in self._series.items():
            entry: dict[str, typing.Any] = {"name": name, "labels": dict(label_items)}
            if isinstance(collector, Counter):
                entry["type"] = "counter"
                entry["value"] = collector.value
            elif isinstance(collector, Gauge):
                entry["type"] = "gauge"
                entry["value"] = collector.value
                entry["peak"] = collector.peak
            elif isinstance(collector, Histogram):
                entry["type"] = "histogram"
                entry.update(collector.to_dict())
            elif isinstance(collector, LatencyRecorder):
                entry["type"] = "latency"
                entry["count"] = collector.count
                entry["summary"] = collector.maybe_summary()
            elif isinstance(collector, BandwidthMeter):
                entry["type"] = "bandwidth"
                entry["total_bytes"] = collector.total_bytes
                entry["events"] = collector.events
            else:  # pragma: no cover - future collector types
                entry["type"] = type(collector).__name__
                entry["repr"] = repr(collector)
            entries.append(((name, label_items), entry))
        entries.sort(key=lambda pair: pair[0])
        series = [entry for _key, entry in entries]
        return {"registry": self.name, "series": series, "samples": list(self._samples)}

    # -- periodic gauge sampling --------------------------------------------

    def sample_now(self, now: float) -> dict:
        """Snapshot every gauge and probe level at time `now`."""
        sample: dict[str, typing.Any] = {"t": now}
        values: dict[str, float] = {}
        for (name, label_items), collector in self._series.items():
            if isinstance(collector, Gauge):
                values[_flat_name(name, label_items)] = collector.value
        for (name, label_items), probe in self._probes.items():
            values[_flat_name(name, label_items)] = probe.fn()
        sample["gauges"] = values
        self._samples.append(sample)
        return sample

    def samples(self) -> tuple[dict, ...]:
        """All periodic samples recorded so far, in time order."""
        return tuple(self._samples)

    def start_sampler(self, sim: "Simulator", interval: float) -> None:
        """Start the periodic gauge sampler on `sim`.

        The sampler is a daemon process (exempt from the drain audit)
        and exits as soon as it finds the event queue empty after a
        tick, so a drain-mode ``sim.run()`` still terminates.

        Idle-sim edge: with several *exact* samplers, each one's next
        tick keeps the queue non-empty for the others, so none ever
        takes the idle exit (a drain-mode run never terminates — use a
        deadline). In fluid mode the tick is shared, so on an idle sim
        samplers do take the exit (staggered over a tick or two, since
        each exiting process's completion event briefly keeps the queue
        non-empty for the next) and the sim drains. Under a running
        workload — the case samplers exist for — both modes record
        identical sample series.
        """
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval!r}")
        if self._sampler_running:
            return
        self._sampler_running = True
        # Fluid window mode (opt-in): samplers tick on shared window
        # boundaries instead of each owning a timeout, so N same-period
        # samplers cost one kernel event per tick instead of N. Exact
        # interleaving between samplers provably doesn't matter here —
        # each sample records ``sim.now`` and gauge reads are
        # side-effect-free — which is precisely the contract
        # :meth:`Simulator.fluid_timeout` requires.
        fluid = os.environ.get("REPRO_FLUID_SAMPLER", "0") != "0"

        def _sampler() -> typing.Iterator:
            try:
                while True:
                    self.sample_now(sim.now)
                    # Idle sim: stop rather than keep the queue non-empty
                    # forever (the next attach restarts us).
                    if not sim._queue:
                        return
                    if fluid:
                        yield sim.fluid_timeout(interval, window=interval)
                    else:
                        yield sim.timeout(interval)
            finally:
                self._sampler_running = False

        sim.process(_sampler(), name=f"{self.name}.sampler", daemon=True)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {self.name!r} series={len(self._series)} "
            f"probes={len(self._probes)} samples={len(self._samples)}>"
        )


def _flat_name(name: str, label_items: tuple) -> str:
    if not label_items:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in label_items)
    return f"{name}{{{rendered}}}"


def registry_for(sim: "Simulator") -> MetricsRegistry | None:
    """The registry attached to `sim`, or ``None`` (the common case).

    Components call this once at construction; a ``None`` means they
    skip registration entirely, keeping the unobserved path free.
    """
    return getattr(sim, "_metrics_registry", None)

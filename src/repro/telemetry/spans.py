"""Request-scoped causal span tracing for the full datapath.

Every client request carries a root :class:`Span` in ``Message.span``;
each datapath stage (transport send, AAMS split, engine run, replica
write attempt, storage service, cache hit/miss/fill) opens a child span
with start/end simulated time, an outcome tag, and byte counts:

    collector = SpanCollector(sim)
    ... run the workload ...
    print(collector.format_critical_path(request_id))
    collector.write_chrome_trace("trace.json")   # open in Perfetto

Outcome tags are a small vocabulary shared by all stages:

- ``ok`` — the stage completed on its fast path;
- ``degraded`` — the stage completed but off its fast path (host-path
  ingress, software decompress, raw-payload replication);
- ``retried`` — the attempt timed out and the request rotated to
  another replica (a later sibling span carries the final outcome);
- ``failed`` — the stage gave up (exhausted retry budget, not-found,
  crashed server);
- ``shed`` — admission control rejected the request at ingress before
  any datapath work was spent on it (``docs/robustness.md``).

Tracing follows the same zero-cost discipline as
:class:`repro.sim.trace.Tracer`: with no collector attached,
``Message.span`` stays ``None`` and every instrumentation site is a
single attribute load plus a ``None`` test (see
``tests/test_spans.py``'s micro-benchmark). Attach a collector per
simulator, or use :class:`TraceSession` to attach one to every
simulator an experiment creates (``runner --trace``).
"""

from __future__ import annotations

import json
import typing

from repro.sim import kernel
from repro.telemetry.metrics import Counter
from repro.telemetry.profiler import COMPONENTS, component_of
from repro.telemetry.registry import MetricsRegistry, registry_for
from repro.units import to_usec, usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Outcome tags every stage draws from (see module docstring).
OUTCOMES = ("ok", "degraded", "retried", "failed", "shed")


class Span:
    """One timed stage of one request's journey through the datapath.

    Spans form a tree per request: the root is created by
    :meth:`SpanCollector.request`, stages open children with
    :meth:`child`, and every span is closed exactly once with
    :meth:`finish`. A span left unfinished (e.g. the simulation stopped
    mid-request) exports with zero duration and outcome ``open``.
    """

    __slots__ = (
        "collector",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "outcome",
        "nbytes",
        "attrs",
    )

    def __init__(
        self,
        collector: "SpanCollector",
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict,
    ) -> None:
        self.collector = collector
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.outcome: str | None = None
        self.nbytes = 0
        self.attrs = attrs

    def child(self, name: str, **attrs: typing.Any) -> "Span":
        """Open a child span starting now (usable even after `finish`,
        so reply-path stages can still hang off a closed parent)."""
        return self.collector._open(self.trace_id, self.span_id, name, attrs)

    def event(self, name: str, outcome: str = "ok", **attrs: typing.Any) -> "Span":
        """A zero-duration child marking an instant decision (cache
        miss, fill admission) rather than a timed stage."""
        span = self.child(name, **attrs)
        span.finish(outcome)
        return span

    def finish(self, outcome: str = "ok", nbytes: int = 0, **attrs: typing.Any) -> "Span":
        """Close the span at the current simulated time.

        First finish wins: a second call is ignored rather than raised,
        because observability must never crash the datapath it watches.

        Finishing a *root* span completes its trace: the collector's
        flight recorder (if any) classifies and maybe keeps it
        (``repro.telemetry.flight``).
        """
        if self.end is not None:
            return self
        self.end = self.collector.sim.now
        self.outcome = outcome
        self.nbytes = nbytes
        if attrs:
            self.attrs = {**self.attrs, **attrs}
        if self.parent_id is None:
            flight = self.collector.flight
            if flight is not None:
                flight.observe(self)
        return self

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.outcome}" if self.end is not None else "open"
        return (
            f"<Span {self.name!r} trace={self.trace_id} "
            f"t={self.start:.9f}+{self.duration:.9f} {state}>"
        )


class SpanCollector:
    """Collects the span trees of every traced request on one simulator.

    Attaching sets ``sim._span_collector``; instrumentation sites check
    that attribute (or ``Message.span``) and stay inert when it is
    ``None``. At most `limit` spans are kept — beyond it the *oldest
    root's whole trace* is evicted (a ring of recent trees), so recorded
    traces stay complete rather than losing interior nodes. Evicted and
    dropped spans are counted in :attr:`spans_dropped` (also exposed as
    the ``trace.spans_dropped`` registry series when a
    :class:`~repro.telemetry.registry.MetricsRegistry` is attached).
    """

    def __init__(self, sim: "Simulator", limit: int = 200_000) -> None:
        if limit < 1:
            raise ValueError(f"span limit must be >= 1, got {limit}")
        self.sim = sim
        self.limit = limit
        self._by_trace: dict[int, list[Span]] = {}
        self._n_spans = 0
        self._next_span_id = 0
        #: Evicted whole traces (each eviction also counts its spans
        #: into :attr:`spans_dropped`).
        self.traces_evicted = 0
        #: Optional :class:`~repro.telemetry.flight.FlightRecorder`
        #: notified as each root span finishes; ``None`` keeps the
        #: finish path to one attribute load plus a ``None`` test.
        self.flight: typing.Any = None
        self._dropped = Counter("trace.spans_dropped")
        registry = registry_for(sim)
        if registry is not None:
            registry.register_instance(self._dropped, component="telemetry")
        sim._span_collector = self

    def detach(self) -> None:
        """Stop collecting; recorded spans stay readable."""
        if self.sim._span_collector is self:
            self.sim._span_collector = None

    @property
    def spans(self) -> list[Span]:
        """Every recorded span, in creation (span id) order."""
        flat = [span for spans in self._by_trace.values() for span in spans]
        flat.sort(key=lambda span: span.span_id)
        return flat

    @property
    def spans_dropped(self) -> int:
        """Spans lost to the cap — evicted with an old trace or (when a
        single trace exceeds the whole cap) dropped on arrival."""
        return self._dropped.value

    # -- recording ----------------------------------------------------------

    def request(self, name: str, trace_id: int, **attrs: typing.Any) -> Span:
        """Open the root span of a new request trace.

        `trace_id` is the client request id; all descendant spans and
        the :meth:`critical_path` report key off it.
        """
        return self._open(trace_id, None, name, attrs)

    def _open(self, trace_id: int, parent_id: int | None, name: str, attrs: dict) -> Span:
        span_id = self._next_span_id
        self._next_span_id += 1
        span = Span(self, trace_id, span_id, parent_id, name, self.sim.now, attrs)
        if self._n_spans >= self.limit:
            # Ring behavior: make room by evicting the *oldest* trace
            # whole — unless that is the incoming trace itself (one
            # giant trace at the cap), where the new span is dropped so
            # older complete trees survive.
            by_trace = self._by_trace
            while self._n_spans >= self.limit:
                oldest = next(iter(by_trace))
                if oldest == trace_id:
                    self._dropped.add()
                    return span
                dead = by_trace.pop(oldest)
                self._n_spans -= len(dead)
                self._dropped.add(len(dead))
                self.traces_evicted += 1
        self._by_trace.setdefault(trace_id, []).append(span)
        self._n_spans += 1
        return span

    # -- queries ------------------------------------------------------------

    @property
    def trace_ids(self) -> tuple[int, ...]:
        """All recorded request ids, in first-span order."""
        return tuple(self._by_trace)

    def trace(self, trace_id: int) -> tuple[Span, ...]:
        """Every span of one request, in creation order."""
        return tuple(self._by_trace.get(trace_id, ()))

    def root(self, trace_id: int) -> Span | None:
        """The request's root span (``parent_id is None``)."""
        for span in self._by_trace.get(trace_id, ()):
            if span.parent_id is None:
                return span
        return None

    def children(self, span: Span) -> tuple[Span, ...]:
        """Direct children of `span`, in creation order."""
        return tuple(
            candidate
            for candidate in self._by_trace.get(span.trace_id, ())
            if candidate.parent_id == span.span_id
        )

    def critical_path(self, trace_id: int) -> list[Span]:
        """The longest causal chain of the request: root to the leaf
        that finished last at every level.

        The child that finishes last is the one that held its parent
        open, so following latest-finish children explains *why* the
        request took as long as it did — e.g. a ``retried`` attempt
        span shows exactly which replica time-out produced the tail.
        """
        root = self.root(trace_id)
        if root is None:
            return []
        path = [root]
        current = root
        while True:
            offspring = self.children(current)
            if not offspring:
                return path
            current = max(offspring, key=lambda s: (s.end if s.end is not None else s.start))
            path.append(current)

    def format_critical_path(self, trace_id: int) -> str:
        """The critical path, one line per hop, times in microseconds."""
        path = self.critical_path(trace_id)
        if not path:
            return f"(no trace recorded for request {trace_id})"
        root = path[0]
        lines = [
            f"request {trace_id} ({root.name}): "
            f"{to_usec(root.duration):.3f} us total, outcome {root.outcome or 'open'}"
        ]
        for depth, span in enumerate(path):
            detail = "".join(f" {key}={value}" for key, value in sorted(span.attrs.items()))
            nbytes = f" {span.nbytes} B" if span.nbytes else ""
            lines.append(
                f"{'  ' * depth}{span.name:<24} "
                f"@{to_usec(span.start):10.3f} us  +{to_usec(span.duration):9.3f} us  "
                f"{span.outcome or 'open'}{nbytes}{detail}"
            )
        return "\n".join(lines)

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1) -> dict:
        """Spans as a Chrome ``trace_event`` document.

        Load the JSON in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``. Spans are grouped by datapath *component*
        (:func:`repro.telemetry.profiler.component_of`): each component
        renders as one named process (``process_name`` metadata), with
        one track per request inside it (``thread_name``/``tid`` is the
        request id). Spans are complete ``X`` events with outcome and
        byte counts in ``args``; `pid` namespaces the processes when
        several collectors merge into one document.
        """
        events: list[dict] = []
        used_components: set[str] = set()
        named_tracks: set[tuple[int, int]] = set()
        for span in self.spans:
            component = component_of(span.name)
            component_pid = pid * 100 + COMPONENTS.index(component)
            used_components.add(component)
            track = (component_pid, span.trace_id)
            if track not in named_tracks:
                named_tracks.add(track)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": component_pid,
                        "tid": span.trace_id,
                        "args": {"name": f"request {span.trace_id}"},
                    }
                )
            events.append(
                {
                    "name": span.name,
                    "cat": span.outcome or "open",
                    "ph": "X",
                    "ts": to_usec(span.start),
                    "dur": to_usec(span.duration),
                    "pid": component_pid,
                    "tid": span.trace_id,
                    "args": {
                        "outcome": span.outcome or "open",
                        "bytes": span.nbytes,
                        **{key: _json_safe(value) for key, value in span.attrs.items()},
                    },
                }
            )
        metadata: list[dict] = []
        for component in used_components:
            index = COMPONENTS.index(component)
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid * 100 + index,
                    "tid": 0,
                    "args": {"name": f"sim{pid} {component}"},
                }
            )
            metadata.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid * 100 + index,
                    "tid": 0,
                    "args": {"sort_index": index},
                }
            )
        metadata.sort(key=lambda event: (event["pid"], event["name"]))
        return {"traceEvents": metadata + events, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path: str, pid: int = 1) -> None:
        """Write :meth:`to_chrome_trace` to `path` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(pid=pid), handle)

    def __repr__(self) -> str:
        return (
            f"<SpanCollector spans={self._n_spans} "
            f"traces={len(self._by_trace)} dropped={self.spans_dropped}>"
        )


def _json_safe(value: typing.Any) -> typing.Any:
    """Chrome trace args must be JSON: degrade exotic values to repr."""
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return repr(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class TraceSession:
    """Attach tracing + metrics to every simulator created while active.

    Installs a simulator-creation hook (:func:`repro.sim.kernel.add_sim_hook`):
    each new :class:`Simulator` gets a :class:`SpanCollector`, a
    :class:`~repro.telemetry.registry.MetricsRegistry`, and a periodic
    gauge sampler. This is how ``runner --trace`` records spans for any
    experiment without threading a collector through every ``run()``:

        with TraceSession() as session:
            result = experiment.run(quick=True)
        session.write_chrome_trace("trace.json")

    Simulators created before the session, or after it closes, stay
    untraced.
    """

    def __init__(
        self,
        sample_interval: float | None = usec(100),
        span_limit: int = 200_000,
        flight: typing.Any = None,
        slo_specs: typing.Iterable | None = None,
    ) -> None:
        self.sample_interval = sample_interval
        self.span_limit = span_limit
        #: Optional :class:`~repro.params.FlightSpec`: each new sim's
        #: collector gets a :class:`~repro.telemetry.flight.FlightRecorder`.
        self.flight_spec = flight
        #: Optional :class:`~repro.params.SLOSpec` tuple: each new sim
        #: gets an attached :class:`~repro.telemetry.slo.SLOMonitor`
        #: (tiers adopt it via ``slo_monitor_for``).
        self.slo_specs = tuple(slo_specs) if slo_specs else ()
        self.collectors: list[SpanCollector] = []
        self.registries: list[MetricsRegistry] = []
        self.flights: list = []
        self.monitors: list = []
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "TraceSession":
        if not self._installed:
            kernel.add_sim_hook(self._on_new_sim)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            kernel.remove_sim_hook(self._on_new_sim)
            self._installed = False

    def __enter__(self) -> "TraceSession":
        return self.install()

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.uninstall()

    def _on_new_sim(self, sim: "Simulator") -> None:
        # Registry first: the collector (and flight recorder) register
        # their own series with it at construction.
        registry = MetricsRegistry(name=f"sim{len(self.registries)}").attach(sim)
        self.registries.append(registry)
        collector = SpanCollector(sim, limit=self.span_limit)
        self.collectors.append(collector)
        if self.flight_spec is not None:
            from repro.telemetry.flight import FlightRecorder

            self.flights.append(FlightRecorder(collector, self.flight_spec))
        if self.slo_specs:
            from repro.telemetry.slo import SLOMonitor

            monitor = SLOMonitor(
                sim,
                self.slo_specs,
                name=f"sim{len(self.monitors)}",
                flight=collector.flight,
            ).attach()
            self.monitors.append(monitor)
        if self.sample_interval is not None:
            registry.start_sampler(sim, self.sample_interval)

    # -- aggregate views ----------------------------------------------------

    @property
    def total_spans(self) -> int:
        return sum(len(collector.spans) for collector in self.collectors)

    @property
    def total_traces(self) -> int:
        return sum(len(collector.trace_ids) for collector in self.collectors)

    def to_chrome_trace(self) -> dict:
        """All collectors merged: one ``pid`` per simulator."""
        events: list[dict] = []
        for index, collector in enumerate(self.collectors, start=1):
            document = collector.to_chrome_trace(pid=index)
            events.extend(document["traceEvents"])
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)

    def interesting_trace(self) -> tuple[SpanCollector, int] | None:
        """The request worth explaining: the first whose trace carries a
        non-``ok`` outcome (degraded/retried/failed), else the slowest.

        Returns ``(collector, trace_id)`` for
        :meth:`SpanCollector.format_critical_path`, or ``None`` when
        nothing was traced.
        """
        slowest: tuple[float, SpanCollector, int] | None = None
        for collector in self.collectors:
            for trace_id in collector.trace_ids:
                root = collector.root(trace_id)
                if root is None:
                    continue
                if any(
                    span.outcome not in (None, "ok") for span in collector.trace(trace_id)
                ):
                    return collector, trace_id
                duration = root.duration
                if slowest is None or duration > slowest[0]:
                    slowest = (duration, collector, trace_id)
        if slowest is None:
            return None
        return slowest[1], slowest[2]

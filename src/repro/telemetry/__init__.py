"""Measurement utilities: latency recorders, bandwidth meters, reporting.

The paper reports throughput, average / 99th / 999th-percentile latency,
and host memory / PCIe bandwidth occupation; these classes collect those
observables from a simulation run and format them as the paper's tables
and series. On top of that sits the diagnosis layer
(``docs/observability.md``): causal span trees (:mod:`.spans`), a
tail-sampling flight recorder (:mod:`.flight`), SLO burn-rate monitors
(:mod:`.slo`), and a sim-time profiler (:mod:`.profiler`).
"""

from repro.telemetry.flight import FlightRecorder, TraceRecord
from repro.telemetry.metrics import BandwidthMeter, Counter, Gauge, LatencyRecorder
from repro.telemetry.profiler import SimProfile, component_of
from repro.telemetry.registry import Histogram, MetricsRegistry, registry_for
from repro.telemetry.reporting import Series, format_series, format_table
from repro.telemetry.slo import DEFAULT_SLOS, SLOAlert, SLOMonitor, slo_monitor_for
from repro.telemetry.spans import Span, SpanCollector, TraceSession

__all__ = [
    "BandwidthMeter",
    "Counter",
    "DEFAULT_SLOS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "Series",
    "SimProfile",
    "SLOAlert",
    "SLOMonitor",
    "Span",
    "SpanCollector",
    "TraceRecord",
    "TraceSession",
    "component_of",
    "format_series",
    "format_table",
    "registry_for",
    "slo_monitor_for",
]

"""Measurement utilities: latency recorders, bandwidth meters, reporting.

The paper reports throughput, average / 99th / 999th-percentile latency,
and host memory / PCIe bandwidth occupation; these classes collect those
observables from a simulation run and format them as the paper's tables
and series.
"""

from repro.telemetry.metrics import BandwidthMeter, Counter, Gauge, LatencyRecorder
from repro.telemetry.registry import Histogram, MetricsRegistry, registry_for
from repro.telemetry.reporting import Series, format_series, format_table
from repro.telemetry.spans import Span, SpanCollector, TraceSession

__all__ = [
    "BandwidthMeter",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "Series",
    "Span",
    "SpanCollector",
    "TraceSession",
    "format_series",
    "format_table",
    "registry_for",
]

"""Measurement utilities: latency recorders, bandwidth meters, reporting.

The paper reports throughput, average / 99th / 999th-percentile latency,
and host memory / PCIe bandwidth occupation; these classes collect those
observables from a simulation run and format them as the paper's tables
and series.
"""

from repro.telemetry.metrics import BandwidthMeter, Counter, LatencyRecorder
from repro.telemetry.reporting import Series, format_series, format_table

__all__ = [
    "BandwidthMeter",
    "Counter",
    "LatencyRecorder",
    "Series",
    "format_series",
    "format_table",
]

"""Plain-text table and series formatting for experiment output.

Experiments print the same rows/series the paper's tables and figures
show; these helpers keep that output consistent and easy to diff.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Series:
    """One plotted line of a figure: a label plus (x, y) points."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x and y lengths differ")

    @classmethod
    def from_points(
        cls, label: str, points: typing.Iterable[tuple[float, float]]
    ) -> "Series":
        """Build a series from an iterable of (x, y) pairs."""
        xs, ys = [], []
        for x, y in points:
            xs.append(x)
            ys.append(y)
        return cls(label, tuple(xs), tuple(ys))

    def peak(self) -> float:
        """Maximum y value (e.g. peak throughput of a sweep)."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        return max(self.y)


def _format_cell(value: typing.Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table with optional title."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))).rstrip())
    return "\n".join(lines)


def format_series(series_list: typing.Sequence[Series], x_label: str, title: str = "") -> str:
    """Render several series as one table with a shared x column."""
    if not series_list:
        raise ValueError("no series to format")
    x_axis = series_list[0].x
    for series in series_list:
        if series.x != x_axis:
            raise ValueError("all series must share the same x axis to tabulate")
    headers = [x_label] + [series.label for series in series_list]
    rows = [
        [x_axis[i]] + [series.y[i] for series in series_list] for i in range(len(x_axis))
    ]
    return format_table(headers, rows, title=title)

"""Metric collectors used across experiments.

All collectors are passive: model code calls ``record`` / ``add`` and the
experiment reads summaries after :meth:`repro.sim.Simulator.run`
completes. Percentiles use the nearest-rank method on the raw samples,
matching how tail latency is usually reported.
"""

from __future__ import annotations

import math
import random
import typing


class Counter:
    """A named monotonically increasing count (requests served, bytes, ...)."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the count by `amount` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name!r}={self.value}>"


class Gauge:
    """A named level that moves both ways, tracking its peak.

    Used for occupancy-style signals (device-memory bytes in use, queue
    depth) where a :class:`Counter`'s monotonicity is wrong.
    """

    def __init__(self, name: str = "gauge") -> None:
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: int | float) -> None:
        """Move the gauge to an absolute level."""
        if value < 0:
            raise ValueError(f"gauge {self.name!r} cannot go negative (value={value})")
        self.value = value
        self.peak = max(self.peak, value)

    def add(self, delta: int | float) -> None:
        """Move the gauge by a (possibly negative) delta."""
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r}={self.value} peak={self.peak}>"


def ratio(numerator: float, denominator: float) -> float:
    """`numerator / denominator`, defined as 0.0 on an empty denominator.

    Experiments use this for availability / degradation fractions where
    a zero-request cell should read as 0 rather than raise.
    """
    if denominator == 0:
        return 0.0
    return numerator / denominator


class LatencyRecorder:
    """Collects latency samples and reports avg / percentile statistics.

    By default every sample is retained exactly. For long runs where
    per-sample memory matters, pass ``reservoir=k`` to keep a uniform
    random sample of at most `k` values (Vitter's Algorithm R, seeded —
    the same run always keeps the same samples). Count and mean stay
    exact in reservoir mode; percentiles are estimates over the kept
    sample.
    """

    def __init__(self, name: str = "latency", reservoir: int | None = None, seed: int = 0) -> None:
        if reservoir is not None and reservoir < 1:
            raise ValueError(f"reservoir size must be >= 1, got {reservoir!r}")
        self.name = name
        self.reservoir = reservoir
        self._rng = random.Random(seed) if reservoir is not None else None
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        self._count = 0
        self._sum = 0.0
        self._compensation = 0.0  # Kahan term: mean stays exact in reservoir mode

    def record(self, latency: float) -> None:
        """Add one latency sample in seconds."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._count += 1
        # Kahan-compensated sum so reservoir mode matches exact mode's
        # fsum()-grade mean even when samples are discarded.
        adjusted = latency - self._compensation
        total = self._sum + adjusted
        self._compensation = (total - self._sum) - adjusted
        self._sum = total
        if self.reservoir is None or len(self._samples) < self.reservoir:
            self._samples.append(latency)
        else:
            # Algorithm R: the i-th sample replaces a kept one with
            # probability k/i, giving a uniform sample over all arrivals.
            slot = typing.cast(random.Random, self._rng).randrange(self._count)
            if slot < self.reservoir:
                self._samples[slot] = latency
            else:
                return  # not kept; sorted cache still valid
        self._sorted = None

    @property
    def count(self) -> int:
        """Number of recorded samples (exact, even in reservoir mode)."""
        return self._count

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained samples (all of them in exact mode)."""
        return tuple(self._samples)

    def mean(self) -> float:
        """Average latency over *all* samples; raises on an empty recorder."""
        if not self._count:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if self.reservoir is None:
            return math.fsum(self._samples) / self._count
        return self._sum / self._count

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, e.g. ``percentile(0.99)`` for p99."""
        if not 0 < fraction <= 1:
            raise ValueError(f"percentile fraction must be in (0, 1], got {fraction!r}")
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(1, math.ceil(fraction * len(self._sorted)))
        return self._sorted[rank - 1]

    def summary(self) -> dict[str, float]:
        """The paper's latency tuple: avg, p50, p99, p999 (seconds)."""
        return {
            "avg": self.mean(),
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def maybe_summary(self) -> dict[str, float] | None:
        """Like :meth:`summary`, but ``None`` on an empty recorder.

        For per-source splits (cache hit vs miss latency) where a cell
        can legitimately see zero samples.
        """
        if not self._samples:
            return None
        return self.summary()

    def __repr__(self) -> str:
        return f"<LatencyRecorder {self.name!r} n={self.count}>"


def jain_fairness(allocations: typing.Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations.

    1.0 means perfectly equal shares; 1/n means one tenant got
    everything. Standard metric for multi-tenant throughput fairness.
    """
    if not allocations:
        raise ValueError("need at least one allocation")
    if any(a < 0 for a in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        return 1.0  # everyone equally got nothing
    squares = sum(a * a for a in allocations)
    return total * total / (len(allocations) * squares)


def imbalance(loads: typing.Sequence[float]) -> float:
    """Max/mean load ratio across shards (``docs/scaling.md``).

    1.0 means perfectly even; k means the hottest shard carries k times
    the average. The cluster gauges report this over per-shard segment
    heat; an all-zero (idle) load vector reads as balanced.
    """
    if not loads:
        raise ValueError("need at least one load")
    if any(load < 0 for load in loads):
        raise ValueError("loads must be non-negative")
    total = sum(loads)
    if total == 0:
        return 1.0  # an idle cluster is trivially balanced
    return max(loads) * len(loads) / total


class BandwidthMeter:
    """Accumulates (timestamp, bytes) events and reports achieved rates."""

    def __init__(self, name: str = "bandwidth") -> None:
        self.name = name
        self.total_bytes = 0
        self.first_event: float | None = None
        self.last_event: float | None = None
        self.events = 0

    def record(self, now: float, nbytes: int) -> None:
        """Record `nbytes` delivered at simulated time `now`."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes!r}")
        if self.first_event is None:
            self.first_event = now
        self.last_event = now
        self.total_bytes += nbytes
        self.events += 1

    def rate(self, duration: float | None = None) -> float:
        """Achieved bytes/second over `duration` (default: first-to-last event).

        Pass the enclosing measurement window as `duration` whenever you
        have one: the implicit first-to-last span is 0 for a
        single-event run, which silently reports 0.0 despite bytes
        recorded. With an explicit `duration` the recorded bytes are
        always spread over that window — a non-positive window is a
        caller bug and raises instead of returning 0.0.
        """
        if duration is not None and duration <= 0:
            raise ValueError(
                f"meter {self.name!r}: measurement window must be positive, got {duration!r}"
            )
        if self.total_bytes == 0:
            return 0.0
        if duration is None:
            if self.first_event is None or self.last_event is None:
                return 0.0
            duration = self.last_event - self.first_event
            if duration <= 0:
                return 0.0
        return self.total_bytes / duration

    def __repr__(self) -> str:
        return f"<BandwidthMeter {self.name!r} bytes={self.total_bytes}>"

"""Terminal charts for experiment output.

The paper's evaluation is figures; these helpers render
:class:`~repro.telemetry.reporting.Series` data as plain-text line and
bar charts so ``smartds-repro --chart`` can show the *shape* of each
figure directly in the terminal, no plotting stack required.
"""

from __future__ import annotations

import math
import typing

from repro.telemetry.reporting import Series

#: Characters used for multi-series line charts, in series order.
_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.2g}"
    return f"{value:.4g}" if magnitude >= 1 else f"{value:.2f}"


def line_chart(
    series_list: typing.Sequence[Series],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render series as an ASCII scatter/line chart with a legend.

    Points are plotted on a `width` x `height` grid scaled to the data's
    bounding box; each series gets its own marker.
    """
    if not series_list:
        raise ValueError("nothing to chart")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be readable")
    points = [
        (x, y) for series in series_list for x, y in zip(series.x, series.y)
    ]
    if not points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(min(ys), 0.0), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(series.x, series.y):
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_max)
    bottom_tick = _format_tick(y_min)
    gutter = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    if y_label:
        lines.append(y_label.rjust(gutter))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = top_tick
        elif row_index == height - 1:
            tick = bottom_tick
        else:
            tick = ""
        lines.append(f"{tick.rjust(gutter)}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{_format_tick(x_min)}{_format_tick(x_max).rjust(width - len(_format_tick(x_min)))}"
    lines.append(" " * (gutter + 1) + x_axis + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {series.label}"
        for i, series in enumerate(series_list)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    labels: typing.Sequence[str],
    values: typing.Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render one horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("nothing to chart")
    if any(not math.isfinite(v) for v in values):
        raise ValueError("values must be finite")
    peak = max(max(values), 0.0) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        suffix = f" {_format_tick(value)}{(' ' + unit) if unit else ''}"
        lines.append(f"{label.rjust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)

"""Sim-time profiling: fold span trees into component attribution.

Span names already encode *where* time was spent (``net.write_request``,
``pcie.dma``, ``aams.split``, ``write.attempt``, ``cache.hit``); this
module folds whole traces into:

- per-component **inclusive** time (a span and everything under it) and
  **exclusive** time (the span minus its children — where the clock
  actually ran), so "where does p99 go" has a one-table answer;
- **collapsed-stack** output (``root;child;leaf <weight>``), the format
  Brendan Gregg's ``flamegraph.pl`` and every flamegraph viewer accept.

Build a profile from any :class:`~repro.telemetry.spans.SpanCollector`
(or a whole :class:`~repro.telemetry.spans.TraceSession`):

    profile = SimProfile.from_collector(collector)
    print(profile.attribution_table())
    open("profile.folded", "w").write(profile.collapsed())

Exclusive time subtracts the *union* of each span's child intervals
(clipped to the parent), so overlapping children — concurrent replica
writes under one ``write.replicate`` — are not double-subtracted.
"""

from __future__ import annotations

import typing

from repro.telemetry.reporting import format_table
from repro.units import to_usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.spans import Span, SpanCollector, TraceSession

#: Canonical component order (also the Chrome-trace process order).
COMPONENTS = (
    "client",
    "net",
    "pcie",
    "hbm",
    "engine",
    "storage",
    "cache",
    "admission",
    "tier",
    "routing",
    "other",
)

#: Span-name first segment -> component. Root spans (``write_request``
#: / ``read_request``) are the client's view of the whole request.
_PREFIX_COMPONENT = {
    "client": "client",
    "write_request": "client",
    "read_request": "client",
    "net": "net",
    "pcie": "pcie",
    "hbm": "hbm",
    "aams": "engine",
    "engine": "engine",
    "compress": "engine",
    "decompress": "engine",
    "storage": "storage",
    "cache": "cache",
    "admission": "admission",
    "write": "tier",
    "read": "tier",
    "route": "routing",
}


def component_of(name: str) -> str:
    """The datapath component a span name belongs to."""
    return _PREFIX_COMPONENT.get(name.split(".", 1)[0], "other")


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    return covered + (current_end - current_start)


class SimProfile:
    """Component-level time attribution folded from span trees."""

    def __init__(self) -> None:
        self.n_traces = 0
        self.n_spans = 0
        #: component -> {"spans", "inclusive", "exclusive"}.
        self._components: dict[str, dict[str, float]] = {}
        #: "a;b;c" stack -> total exclusive seconds.
        self._stacks: dict[str, float] = {}

    # -- builders -----------------------------------------------------------

    @classmethod
    def from_collector(
        cls,
        collector: "SpanCollector",
        trace_ids: typing.Iterable[int] | None = None,
    ) -> "SimProfile":
        """Fold every (or the given) traces of one collector."""
        profile = cls()
        ids = collector.trace_ids if trace_ids is None else tuple(trace_ids)
        for trace_id in ids:
            profile.add_trace(collector.trace(trace_id))
        return profile

    @classmethod
    def from_session(cls, session: "TraceSession") -> "SimProfile":
        """Fold every trace of every collector in a session."""
        profile = cls()
        for collector in session.collectors:
            for trace_id in collector.trace_ids:
                profile.add_trace(collector.trace(trace_id))
        return profile

    @classmethod
    def from_records(cls, records: typing.Iterable[typing.Any]) -> "SimProfile":
        """Fold flight-recorder :class:`~repro.telemetry.flight.TraceRecord`
        span tuples — profile exactly the traces an alert shipped."""
        profile = cls()
        for record in records:
            profile.add_trace(record.spans)
        return profile

    # -- folding ------------------------------------------------------------

    def add_trace(self, spans: typing.Sequence["Span"]) -> None:
        """Fold one request's span tree into the profile."""
        if not spans:
            return
        self.n_traces += 1
        by_id = {span.span_id: span for span in spans}
        children: dict[int, list[Span]] = {}
        for span in spans:
            if span.parent_id is not None and span.parent_id in by_id:
                children.setdefault(span.parent_id, []).append(span)
        for span in spans:
            end = span.end if span.end is not None else span.start
            duration = end - span.start
            intervals = [
                (max(child.start, span.start), min(child.end, end))
                for child in children.get(span.span_id, ())
                if child.end is not None and child.end > span.start and child.start < end
            ]
            exclusive = max(0.0, duration - _union_length(intervals))
            component = component_of(span.name)
            bucket = self._components.setdefault(
                component, {"spans": 0, "inclusive": 0.0, "exclusive": 0.0}
            )
            bucket["spans"] += 1
            bucket["inclusive"] += duration
            bucket["exclusive"] += exclusive
            self.n_spans += 1
            if exclusive > 0.0:
                stack = self._stack_of(span, by_id)
                self._stacks[stack] = self._stacks.get(stack, 0.0) + exclusive

    @staticmethod
    def _stack_of(span: "Span", by_id: dict[int, "Span"]) -> str:
        names = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            names.append(parent.name)
            parent_id = parent.parent_id
        return ";".join(reversed(names))

    # -- outputs ------------------------------------------------------------

    @property
    def total_exclusive(self) -> float:
        """Total attributed (exclusive) seconds across all components."""
        return sum(bucket["exclusive"] for bucket in self._components.values())

    def components(self) -> list[dict]:
        """Per-component rows in canonical component order."""
        total = self.total_exclusive
        rows = []
        for component in COMPONENTS:
            bucket = self._components.get(component)
            if bucket is None:
                continue
            rows.append(
                {
                    "component": component,
                    "spans": int(bucket["spans"]),
                    "inclusive_us": to_usec(bucket["inclusive"]),
                    "exclusive_us": to_usec(bucket["exclusive"]),
                    "share": (bucket["exclusive"] / total) if total > 0 else 0.0,
                }
            )
        return rows

    def mean_exclusive_us(self) -> dict[str, float]:
        """Exclusive microseconds per *trace* by component — the
        per-request latency attribution ("where does p99 go")."""
        if not self.n_traces:
            return {}
        return {
            row["component"]: row["exclusive_us"] / self.n_traces
            for row in self.components()
        }

    def collapsed(self) -> str:
        """Collapsed-stack lines (``a;b;c <nanoseconds>``), flamegraph-ready."""
        lines = []
        for stack in sorted(self._stacks):
            weight = int(round(self._stacks[stack] * 1e9))
            if weight > 0:
                lines.append(f"{stack} {weight}")
        return "\n".join(lines)

    def attribution_table(self, title: str = "latency attribution") -> str:
        """The per-stage table: spans, inclusive/exclusive us, share."""
        rows = [
            [
                row["component"],
                row["spans"],
                row["inclusive_us"],
                row["exclusive_us"],
                f"{100.0 * row['share']:.1f}%",
            ]
            for row in self.components()
        ]
        return format_table(
            ["component", "spans", "inclusive us", "exclusive us", "share"],
            rows,
            title=f"{title} ({self.n_traces} traces)",
        )

    def to_dict(self) -> dict:
        """JSON-ready dump (validated by ``repro.telemetry.schemas``)."""
        return {
            "n_traces": self.n_traces,
            "n_spans": self.n_spans,
            "total_exclusive_us": to_usec(self.total_exclusive),
            "components": self.components(),
            "collapsed": self.collapsed().splitlines(),
        }

    def __repr__(self) -> str:
        return (
            f"<SimProfile traces={self.n_traces} spans={self.n_spans} "
            f"components={len(self._components)}>"
        )


def compare_attribution(
    profiles: typing.Mapping[str, SimProfile],
    title: str = "per-request exclusive us by component",
) -> str:
    """One table comparing per-trace attribution across labeled profiles
    (e.g. ``{"0.5x": ..., "1.5x": ...}`` load multipliers)."""
    labels = list(profiles)
    means = {label: profiles[label].mean_exclusive_us() for label in labels}
    components = [
        component
        for component in COMPONENTS
        if any(component in means[label] for label in labels)
    ]
    rows = [
        [component, *(means[label].get(component, 0.0) for label in labels)]
        for component in components
    ]
    return format_table(["component", *labels], rows, title=title)

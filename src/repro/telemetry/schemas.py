"""Schema validation for the runner's telemetry artifacts.

Same hand-rolled structural checker as ``benchmarks.perf.schema`` (the
container deliberately has no ``jsonschema``), extended with a list
form: a one-element list spec ``[sub]`` means "array whose every item
matches ``sub``". ``runner --flight/--slo/--profile`` refuse to write a
document that fails validation, and CI re-validates the artifacts it
collects (``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import typing

_NUMBER = (int, float)

_SPAN = {
    "name": (str,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "start_us": _NUMBER,
    "duration_us": _NUMBER,
    "outcome": (str,),
    "bytes": (int,),
}

_TRACE_RECORD = {
    "trace_id": (int,),
    "op": (str,),
    "start_us": _NUMBER,
    "duration_us": _NUMBER,
    "outcome": (str,),
    "reasons": [(str,)],
    "spans": [_SPAN],
}

FLIGHT_SPEC: dict = {
    "recorders": [
        {
            "capacity": (int,),
            "seen": (int,),
            "kept": (int,),
            "evicted": (int,),
            "kept_by_reason": dict,
            "records": [_TRACE_RECORD],
        }
    ],
}

_ALERT = {
    "t_us": _NUMBER,
    "slo": (str,),
    "kind": (str,),
    "window_us": _NUMBER,
    "burn_rate": _NUMBER,
    "threshold": _NUMBER,
    "bad_fraction": _NUMBER,
    "budget_remaining": _NUMBER,
    "traces": [_TRACE_RECORD],
}

SLO_SPEC: dict = {
    "monitors": [
        {
            "monitor": (str,),
            "slos": [
                {
                    "name": (str,),
                    "signal": (str,),
                    "op": (str,),
                    "target": _NUMBER,
                    "good": (int,),
                    "bad": (int,),
                    "bytes": (int,),
                    "budget_remaining": _NUMBER,
                }
            ],
            "verdict": dict,
            "alerts": [_ALERT],
        }
    ],
}

PROFILE_SPEC: dict = {
    "n_traces": (int,),
    "n_spans": (int,),
    "total_exclusive_us": _NUMBER,
    "components": [
        {
            "component": (str,),
            "spans": (int,),
            "inclusive_us": _NUMBER,
            "exclusive_us": _NUMBER,
            "share": _NUMBER,
        }
    ],
    "collapsed": [(str,)],
}


def _check(value: typing.Any, spec: typing.Any, path: str, problems: list[str]) -> None:
    if spec is dict:
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
        return
    if isinstance(spec, list):
        if not isinstance(value, list):
            problems.append(f"{path}: expected array, got {type(value).__name__}")
            return
        for index, item in enumerate(value):
            _check(item, spec[0], f"{path}[{index}]", problems)
        return
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
            return
        optional = spec.get("__optional__", ())
        for key, sub in spec.items():
            if key == "__optional__":
                continue
            if key not in value:
                if key not in optional:
                    problems.append(f"{path}.{key}: missing")
                continue
            _check(value[key], sub, f"{path}.{key}", problems)
        return
    # Leaf: a tuple of accepted types. bool is an int subclass — reject it
    # where a number is expected unless bool is listed explicitly.
    if isinstance(value, bool) and bool not in spec:
        problems.append(f"{path}: expected {_names(spec)}, got bool")
    elif not isinstance(value, spec):
        problems.append(f"{path}: expected {_names(spec)}, got {type(value).__name__}")


def _names(spec: tuple) -> str:
    return "/".join(t.__name__ for t in spec)


def _validate(document: typing.Any, spec: dict, label: str) -> None:
    problems: list[str] = []
    _check(document, spec, "$", problems)
    if problems:
        raise ValueError(f"invalid {label} document:\n  " + "\n  ".join(problems))


def validate_flight(document: typing.Any) -> None:
    """Raise ``ValueError`` when `document` is not a valid --flight dump."""
    _validate(document, FLIGHT_SPEC, "flight")


def validate_slo(document: typing.Any) -> None:
    """Raise ``ValueError`` when `document` is not a valid --slo dump."""
    _validate(document, SLO_SPEC, "SLO")


def validate_profile(document: typing.Any) -> None:
    """Raise ``ValueError`` when `document` is not a valid --profile dump."""
    _validate(document, PROFILE_SPEC, "profile")

"""A flight recorder: bounded ring of kept traces, tail-sampled.

Ahead-of-time trace sampling keeps the traces you *guessed* would
matter; tail-based sampling (Dapper-style) decides after the fact, when
the outcome is known. :class:`FlightRecorder` hangs off a
:class:`~repro.telemetry.spans.SpanCollector`: every root span that
finishes is classified and either kept or dropped:

- **always kept**: traces that failed, were shed, carried a degraded /
  retried / failed / shed stage anywhere in the tree, bounced off a
  wrong shard, or were *slow* — beyond a static per-operation latency
  threshold or (once warmed) the dynamic p99 of recent same-operation
  traces;
- **sampled**: healthy traces are kept 1-in-``healthy_every`` with a
  seeded RNG, so a dump always carries a baseline to diff anomalies
  against.

Keepers ride a ``deque(maxlen=capacity)`` ring — memory is bounded, a
long run keeps the *newest* evidence. Dump on demand with
:meth:`write`, or arm :meth:`arm_auto_dump` to write the buffer the
first time an anomalous trace lands. SLO burn-rate alerts
(:mod:`repro.telemetry.slo`) snapshot this ring at trip time, so every
violation ships with the traces that caused it.

The recorder costs nothing when absent: the root-finish hook in
:meth:`Span.finish` is one attribute load plus a ``None`` test.
"""

from __future__ import annotations

import json
import random
import typing

from repro.params import FlightSpec
from repro.telemetry.registry import Histogram, registry_for
from repro.units import to_usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.spans import Span, SpanCollector

from collections import deque

#: Span outcomes that make a whole trace worth keeping.
ANOMALOUS_OUTCOMES = frozenset({"degraded", "retried", "failed", "shed"})


class TraceRecord:
    """One kept trace: the root's identity plus its whole span tree."""

    __slots__ = ("trace_id", "op", "start", "duration", "outcome", "reasons", "spans")

    def __init__(
        self,
        trace_id: int,
        op: str,
        start: float,
        duration: float,
        outcome: str,
        reasons: tuple[str, ...],
        spans: tuple["Span", ...],
    ) -> None:
        self.trace_id = trace_id
        self.op = op
        self.start = start
        self.duration = duration
        self.outcome = outcome
        self.reasons = reasons
        self.spans = spans

    @property
    def anomalous(self) -> bool:
        """Kept for cause, not as a healthy baseline sample."""
        return self.reasons != ("sampled",)

    def to_dict(self) -> dict:
        """JSON-ready dump, times in microseconds."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "start_us": to_usec(self.start),
            "duration_us": to_usec(self.duration),
            "outcome": self.outcome,
            "reasons": list(self.reasons),
            "spans": [
                {
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start_us": to_usec(span.start),
                    "duration_us": to_usec(span.duration),
                    "outcome": span.outcome or "open",
                    "bytes": span.nbytes,
                }
                for span in self.spans
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<TraceRecord {self.trace_id} {self.op!r} {self.outcome} "
            f"reasons={','.join(self.reasons)}>"
        )


class FlightRecorder:
    """Tail-based keeper of completed traces on one collector."""

    def __init__(self, collector: "SpanCollector", spec: FlightSpec | None = None) -> None:
        self.spec = spec or FlightSpec(enabled=True)
        self.collector = collector
        self.capacity = self.spec.capacity
        self._ring: deque[TraceRecord] = deque(maxlen=self.capacity)
        self._rng = random.Random(self.spec.seed)
        self._thresholds = dict(self.spec.slow_thresholds)
        #: Per-operation duration histograms feeding the dynamic
        #: p99-of-recent slowness threshold.
        self._recent: dict[str, Histogram] = {}
        self.traces_seen = 0
        self.traces_kept = 0
        self.traces_evicted = 0
        self.kept_by_reason: dict[str, int] = {}
        self._auto_dump_path: str | None = None
        self.auto_dumped: str | None = None
        collector.flight = self
        registry = registry_for(collector.sim)
        if registry is not None:
            probes = {
                "flight.traces_seen": lambda: float(self.traces_seen),
                "flight.traces_kept": lambda: float(self.traces_kept),
                "flight.traces_evicted": lambda: float(self.traces_evicted),
            }
            for name, fn in probes.items():
                try:
                    registry.gauge_callable(name, fn, component="telemetry")
                except ValueError:
                    # A previous recorder on this sim holds the series
                    # (collector re-attached mid-run); keep its probes.
                    pass

    # -- classification ------------------------------------------------------

    def threshold_for(self, op: str) -> float:
        """The static slowness threshold for operation `op`."""
        return self._thresholds.get(op, self.spec.slow_threshold)

    def _classify(self, root: "Span", spans: tuple["Span", ...]) -> tuple[str, ...]:
        """Why this trace must be kept; empty means healthy."""
        reasons: list[str] = []
        outcome = root.outcome or "open"
        if outcome in ("failed", "shed"):
            reasons.append(outcome)
        stage_outcomes = {
            span.outcome
            for span in spans
            if span is not root and span.outcome in ANOMALOUS_OUTCOMES
        }
        reasons.extend(
            f"stage_{stage}" for stage in sorted(stage_outcomes)
        )
        if any(span.name == "route.wrong_shard" for span in spans):
            reasons.append("wrong_shard")
        duration = root.duration
        if duration >= self.threshold_for(root.name):
            reasons.append("slow")
        elif self.spec.dynamic_percentile is not None:
            recent = self._recent.get(root.name)
            if (
                recent is not None
                and recent.count >= self.spec.dynamic_min_samples
                and duration >= recent.percentile(self.spec.dynamic_percentile)
            ):
                reasons.append("slow_p99")
        return tuple(reasons)

    # -- recording -----------------------------------------------------------

    def observe(self, root: "Span") -> TraceRecord | None:
        """Classify one finished root span; keep or drop its trace.

        Called from :meth:`Span.finish` via the collector's root-finish
        hook; never raises into the datapath.
        """
        self.traces_seen += 1
        spans = self.collector.trace(root.trace_id)
        if root not in spans:
            # The trace was evicted from the collector while open; the
            # root alone still classifies (outcome, duration).
            spans = (root, *spans)
        reasons = self._classify(root, spans)
        # The dynamic threshold learns from traffic *before* this trace,
        # so one outlier cannot raise the bar that should catch it.
        if self.spec.dynamic_percentile is not None:
            recent = self._recent.get(root.name)
            if recent is None:
                recent = self._recent[root.name] = Histogram(f"flight.{root.name}")
            recent.observe(max(0.0, root.duration))
        if not reasons:
            every = self.spec.healthy_every
            if not every or self._rng.randrange(every):
                return None
            reasons = ("sampled",)
        record = TraceRecord(
            trace_id=root.trace_id,
            op=root.name,
            start=root.start,
            duration=root.duration,
            outcome=root.outcome or "open",
            reasons=reasons,
            spans=spans,
        )
        if len(self._ring) == self.capacity:
            self.traces_evicted += 1
        self._ring.append(record)
        self.traces_kept += 1
        for reason in reasons:
            self.kept_by_reason[reason] = self.kept_by_reason.get(reason, 0) + 1
        if (
            self._auto_dump_path is not None
            and self.auto_dumped is None
            and record.anomalous
        ):
            self.auto_dumped = self._auto_dump_path
            self.write(self._auto_dump_path)
        return record

    def arm_auto_dump(self, path: str) -> None:
        """Write the buffer to `path` the first time an anomaly lands."""
        self._auto_dump_path = path

    # -- queries / export ----------------------------------------------------

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """The ring's current contents, oldest first."""
        return tuple(self._ring)

    def snapshot(self) -> tuple[TraceRecord, ...]:
        """Alias used by SLO alerts at trip time."""
        return self.records

    def anomalous_records(self) -> tuple[TraceRecord, ...]:
        """Only the records kept for cause (not healthy samples)."""
        return tuple(record for record in self._ring if record.anomalous)

    def to_dict(self) -> dict:
        """JSON-ready dump (validated by ``repro.telemetry.schemas``)."""
        return {
            "capacity": self.capacity,
            "seen": self.traces_seen,
            "kept": self.traces_kept,
            "evicted": self.traces_evicted,
            "kept_by_reason": dict(sorted(self.kept_by_reason.items())),
            "records": [record.to_dict() for record in self._ring],
        }

    def write(self, path: str) -> None:
        """Dump the buffer to `path` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder kept={self.traces_kept}/{self.traces_seen} "
            f"ring={len(self._ring)}/{self.capacity}>"
        )

"""Declarative SLOs with error budgets and multi-window burn alerts.

An :class:`~repro.params.SLOSpec` states an objective (availability,
latency-under-threshold, goodput floor); an :class:`SLOMonitor` scores
every completion record the middle tier feeds it
(:meth:`~repro.middletier.base.MiddleTierServer._observe_completion`)
and keeps, per spec:

- cumulative **error-budget accounting** — with objective ``target``,
  the budget is the ``1 - target`` fraction of requests allowed to be
  bad; :meth:`budget_remaining` reports how much is left;
- sliding-window **burn rates** (Google SRE workbook): the bad fraction
  over a window divided by the budget fraction. Burning at 1x exhausts
  the budget exactly at the window's horizon; a short window burning
  >= ``fast_burn``x trips a *fast-burn* alert (page-grade), a longer
  window >= ``slow_burn``x trips *slow-burn* (ticket-grade). Alerts
  latch and re-arm with hysteresis at half the trip threshold, so a
  flapping signal yields edges, not storms.

Every :class:`SLOAlert` captures the flight-recorder ring at trip time
(when one is attached), so an SLO violation ships with the anomalous
traces that caused it.

Monitors are opt-in and cost one falsy test per completion when absent;
``slo_monitor_for(sim)`` mirrors ``registry_for``.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.params import SLOSpec
from repro.telemetry.registry import registry_for
from repro.units import msec, to_usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.telemetry.flight import FlightRecorder, TraceRecord

#: Terminal statuses that consume error budget.
BAD_STATUSES = frozenset({"shed", "unavailable", "not_found", "failed"})
#: Terminal statuses that are neither good nor bad (routing bounces are
#: corrected by the client's map refetch, not served wrong).
IGNORED_STATUSES = frozenset({"wrong_shard"})

#: The stock objectives ``runner --slo`` watches when the experiment
#: doesn't declare its own (platform.slos).
DEFAULT_SLOS = (
    SLOSpec(name="availability", signal="availability", op="any", target=0.99),
    SLOSpec(
        name="read-p99",
        signal="latency",
        op="read",
        target=0.99,
        latency_threshold=msec(5),
    ),
)


class SLOAlert:
    """One burn-rate (or goodput-floor) trip, with captured evidence."""

    __slots__ = (
        "time",
        "slo",
        "kind",
        "window",
        "burn_rate",
        "threshold",
        "bad_fraction",
        "budget_remaining",
        "traces",
    )

    def __init__(
        self,
        time: float,
        slo: str,
        kind: str,
        window: float,
        burn_rate: float,
        threshold: float,
        bad_fraction: float,
        budget_remaining: float,
        traces: tuple["TraceRecord", ...],
    ) -> None:
        self.time = time
        self.slo = slo
        self.kind = kind
        self.window = window
        self.burn_rate = burn_rate
        self.threshold = threshold
        self.bad_fraction = bad_fraction
        self.budget_remaining = budget_remaining
        self.traces = traces

    def to_dict(self) -> dict:
        return {
            "t_us": to_usec(self.time),
            "slo": self.slo,
            "kind": self.kind,
            "window_us": to_usec(self.window),
            "burn_rate": self.burn_rate,
            "threshold": self.threshold,
            "bad_fraction": self.bad_fraction,
            "budget_remaining": self.budget_remaining,
            "traces": [record.to_dict() for record in self.traces],
        }

    def __repr__(self) -> str:
        return (
            f"<SLOAlert {self.slo} {self.kind} t={to_usec(self.time):.1f}us "
            f"burn={self.burn_rate:.1f}x traces={len(self.traces)}>"
        )


class _SlidingWindow:
    """Time-bucketed good/bad/byte counts over one sliding window."""

    __slots__ = ("width", "n_buckets", "_buckets", "good", "bad", "nbytes")

    def __init__(self, window: float, n_buckets: int) -> None:
        self.width = window / n_buckets
        self.n_buckets = n_buckets
        # Each bucket: [index, good, bad, nbytes]; indexes ascend.
        self._buckets: deque[list] = deque()
        self.good = 0
        self.bad = 0
        self.nbytes = 0

    def advance(self, now: float) -> None:
        """Expire buckets that slid out of the window ending at `now`."""
        horizon = int(now / self.width) - self.n_buckets
        buckets = self._buckets
        while buckets and buckets[0][0] <= horizon:
            _, good, bad, nbytes = buckets.popleft()
            self.good -= good
            self.bad -= bad
            self.nbytes -= nbytes

    def record(self, now: float, good: bool, nbytes: int) -> None:
        self.advance(now)
        index = int(now / self.width)
        buckets = self._buckets
        if buckets and buckets[-1][0] == index:
            bucket = buckets[-1]
        else:
            bucket = [index, 0, 0, 0]
            buckets.append(bucket)
        if good:
            bucket[1] += 1
            self.good += 1
        else:
            bucket[2] += 1
            self.bad += 1
        bucket[3] += nbytes
        self.nbytes += nbytes

    @property
    def total(self) -> int:
        return self.good + self.bad

    def bad_fraction(self, now: float) -> float:
        self.advance(now)
        total = self.good + self.bad
        return (self.bad / total) if total else 0.0


class _SpecState:
    """One SLOSpec's windows, totals, and latched alert levels."""

    __slots__ = (
        "spec",
        "window",
        "fast",
        "slow",
        "good_total",
        "bad_total",
        "bytes_total",
        "started",
        "active",
        "alerts",
    )

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self.window = _SlidingWindow(spec.window, spec.n_buckets)
        self.fast = _SlidingWindow(spec.fast_window, spec.n_buckets)
        self.slow = _SlidingWindow(spec.slow_window, spec.n_buckets)
        self.good_total = 0
        self.bad_total = 0
        self.bytes_total = 0
        self.started: float | None = None
        #: Latched alert kinds currently above their trip threshold.
        self.active: set[str] = set()
        self.alerts: list[SLOAlert] = []

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.spec.target

    def bad_fraction_total(self) -> float:
        total = self.good_total + self.bad_total
        return (self.bad_total / total) if total else 0.0

    def budget_remaining(self) -> float:
        """Cumulative error budget left; < 0 means the SLO is violated."""
        return 1.0 - self.bad_fraction_total() / self.budget_fraction


class SLOMonitor:
    """Scores completion records against a set of SLO specs."""

    def __init__(
        self,
        sim: "Simulator",
        specs: typing.Iterable[SLOSpec],
        name: str = "slo",
        flight: "FlightRecorder | None" = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.flight = flight
        self._states = tuple(_SpecState(spec) for spec in specs)
        if not self._states:
            raise ValueError("an SLOMonitor needs at least one SLOSpec")
        names = [state.spec.name for state in self._states]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.alerts: list[SLOAlert] = []
        self._alerts_counter: typing.Any = None
        registry = registry_for(sim)
        if registry is not None:
            self._alerts_counter = registry.counter(
                "slo.alerts", component="telemetry", monitor=name
            )

    @property
    def specs(self) -> tuple[SLOSpec, ...]:
        return tuple(state.spec for state in self._states)

    def attach(self) -> "SLOMonitor":
        """Make this monitor discoverable via ``slo_monitor_for(sim)``."""
        self.sim._slo_monitor = self
        return self

    # -- scoring -------------------------------------------------------------

    def record(
        self,
        op: str,
        status: str,
        latency: float | None = None,
        nbytes: int = 0,
    ) -> None:
        """Score one completion record against every matching spec."""
        if status in IGNORED_STATUSES:
            return
        now = self.sim.now
        for state in self._states:
            spec = state.spec
            if spec.op != "any" and not op.startswith(spec.op):
                continue
            if spec.signal == "latency":
                good = (
                    status not in BAD_STATUSES
                    and latency is not None
                    and latency <= spec.latency_threshold
                )
            else:
                good = status not in BAD_STATUSES
            counted_bytes = nbytes if good else 0
            if state.started is None:
                state.started = now
            state.window.record(now, good, counted_bytes)
            state.fast.record(now, good, counted_bytes)
            state.slow.record(now, good, counted_bytes)
            if good:
                state.good_total += 1
            else:
                state.bad_total += 1
            state.bytes_total += counted_bytes
            self._evaluate(state, now)

    def _evaluate(self, state: _SpecState, now: float) -> None:
        spec = state.spec
        if spec.signal == "goodput":
            elapsed = now - typing.cast(float, state.started)
            if elapsed < spec.fast_window:
                return  # not warmed up: an empty window is not an outage
            state.fast.advance(now)
            rate = state.fast.nbytes / spec.fast_window
            if rate < spec.goodput_floor:
                if "goodput_floor" not in state.active:
                    state.active.add("goodput_floor")
                    self._fire(
                        state,
                        "goodput_floor",
                        window=spec.fast_window,
                        burn_rate=(spec.goodput_floor / rate) if rate > 0 else float("inf"),
                        threshold=1.0,
                        now=now,
                    )
            elif rate >= 2.0 * spec.goodput_floor:
                state.active.discard("goodput_floor")
            return
        budget = state.budget_fraction
        for kind, window, threshold in (
            ("fast_burn", state.fast, spec.fast_burn),
            ("slow_burn", state.slow, spec.slow_burn),
        ):
            burn = window.bad_fraction(now) / budget
            if burn >= threshold:
                if kind not in state.active:
                    state.active.add(kind)
                    self._fire(
                        state,
                        kind,
                        window=window.width * window.n_buckets,
                        burn_rate=burn,
                        threshold=threshold,
                        now=now,
                    )
            elif burn < 0.5 * threshold:
                state.active.discard(kind)

    def _fire(
        self,
        state: _SpecState,
        kind: str,
        window: float,
        burn_rate: float,
        threshold: float,
        now: float,
    ) -> None:
        traces: tuple = ()
        if self.flight is not None:
            traces = self.flight.snapshot()
        alert = SLOAlert(
            time=now,
            slo=state.spec.name,
            kind=kind,
            window=window,
            burn_rate=burn_rate,
            threshold=threshold,
            bad_fraction=state.window.bad_fraction(now),
            budget_remaining=state.budget_remaining(),
            traces=traces,
        )
        state.alerts.append(alert)
        self.alerts.append(alert)
        if self._alerts_counter is not None:
            self._alerts_counter.add()

    # -- verdicts ------------------------------------------------------------

    def state(self, slo_name: str) -> _SpecState:
        for state in self._states:
            if state.spec.name == slo_name:
                return state
        raise KeyError(f"no SLO named {slo_name!r} on monitor {self.name!r}")

    def budget_remaining(self, slo_name: str) -> float:
        return self.state(slo_name).budget_remaining()

    def alerts_for(self, slo_name: str, kind: str | None = None) -> tuple[SLOAlert, ...]:
        alerts = self.state(slo_name).alerts
        if kind is None:
            return tuple(alerts)
        return tuple(alert for alert in alerts if alert.kind == kind)

    def verdict(self) -> dict:
        """Per-SLO pass/fail plus budget and alert counts."""
        out = {}
        for state in self._states:
            spec = state.spec
            kinds: dict[str, int] = {}
            for alert in state.alerts:
                kinds[alert.kind] = kinds.get(alert.kind, 0) + 1
            if spec.signal == "goodput":
                met = not kinds.get("goodput_floor")
            else:
                met = state.budget_remaining() >= 0.0
            out[spec.name] = {
                "signal": spec.signal,
                "met": met,
                "total": state.good_total + state.bad_total,
                "bad": state.bad_total,
                "bad_fraction": state.bad_fraction_total(),
                "budget_remaining": state.budget_remaining(),
                "alerts": kinds,
            }
        return out

    def to_dict(self) -> dict:
        """JSON-ready dump (validated by ``repro.telemetry.schemas``)."""
        return {
            "monitor": self.name,
            "slos": [
                {
                    "name": state.spec.name,
                    "signal": state.spec.signal,
                    "op": state.spec.op,
                    "target": state.spec.target,
                    "good": state.good_total,
                    "bad": state.bad_total,
                    "bytes": state.bytes_total,
                    "budget_remaining": state.budget_remaining(),
                }
                for state in self._states
            ],
            "verdict": self.verdict(),
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def __repr__(self) -> str:
        return (
            f"<SLOMonitor {self.name!r} specs={len(self._states)} "
            f"alerts={len(self.alerts)}>"
        )


def slo_monitor_for(sim: "Simulator") -> SLOMonitor | None:
    """The monitor attached to `sim`, or ``None`` (the common case)."""
    return getattr(sim, "_slo_monitor", None)

"""Platform calibration constants.

Every number here is taken from the paper (§3, §5.1) or the product
documents it cites, so all middle-tier designs draw timing from one
place:

- Host: 2x Xeon Silver 4214 (24 physical cores, 48 logical with SMT-2),
  8-channel DDR4 with ~120 GB/s achievable bandwidth, 16 MiB LLC with
  DDIO occupying 2 of 11 ways, PCIe 3.0 x16 at ~104 Gb/s achievable and
  ~1.4 us unloaded round-trip latency (Table 1).
- Network: 100 GbE ports (ConnectX-5 / VCU128), RDMA transport.
- SmartDS device: up to 6 ports, one 100 Gb/s LZ4 engine per port, 8 GB
  HBM at up to 3.4 Tb/s.
- BlueField-2: 8 Arm A72 cores, ~40 Gb/s compression engine, device DDR
  with ~0.7x of its theoretical bandwidth achievable.
- Storage: 4 KB blocks, 64 B block-storage headers, 3-way replication,
  tens-of-microseconds flash writes.
"""

from __future__ import annotations

import dataclasses

from repro.units import gBps, gbps, kib, mib, msec, usec


@dataclasses.dataclass(frozen=True)
class HostSpec:
    """The Xeon middle-tier server of §5.1."""

    physical_cores: int = 24
    smt: int = 2
    memory_rate: float = gBps(120)  # achievable, 8 channels
    memory_lanes: int = 4  # concurrent service streams in the model
    memory_chunk: int = kib(64)  # large DMA transfers interleave at this grain
    llc_bytes: int = mib(16)
    llc_ways: int = 11
    ddio_ways: int = 2
    pcie_rate: float = gbps(104)  # per direction, PCIe 3.0 x16 achievable
    pcie_leg_latency: float = usec(0.7)  # per direction; 1.4 us round trip
    pcie_read_chunk: int = kib(4)  # DMA reads complete in chunks
    parse_header_time: float = usec(0.3)  # parse block-storage header on a core
    post_descriptor_time: float = usec(0.15)  # post one work request / poll one CQE

    @property
    def logical_cores(self) -> int:
        """Total hardware threads (the paper's "48 logical cores")."""
        return self.physical_cores * self.smt

    @property
    def ddio_capacity(self) -> int:
        """LLC bytes DDIO may write-allocate into (2 of 11 ways)."""
        return self.llc_bytes * self.ddio_ways // self.llc_ways


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """100 GbE RDMA fabric."""

    port_rate: float = gbps(100)  # per direction per port
    switch_latency: float = usec(1.5)  # one-way fabric traversal
    roce_overhead_bytes: int = 60  # Eth+IP+UDP+BTH framing per message
    loss_rate: float = 0.0  # per-message drop probability (lossless by default)
    retransmit_timeout: float = usec(100)  # RC retransmission time-out


@dataclasses.dataclass(frozen=True)
class SmartDsSpec:
    """The VCU128 prototype (§4, §5.1)."""

    max_ports: int = 6
    engine_rate: float = gbps(100)  # per-port LZ4 engine
    engine_setup_time: float = usec(1.0)
    hbm_rate: float = gbps(3400)  # 16-channel HBM, up to 3.4 Tb/s
    hbm_lanes: int = 16
    split_latency: float = usec(0.5)  # Split/Assemble hardware pipeline delay
    notify_bytes: int = 16  # completion event DMA'd to host
    hw_parse_time: float = usec(0.1)  # header parse in FPGA logic (naive design)


@dataclasses.dataclass(frozen=True)
class BlueField2Spec:
    """The SoC-based SmartNIC baseline (§3.4, §5.1)."""

    arm_cores: int = 8
    arm_parse_time: float = usec(1.0)  # wimpy core parses a header
    compression_rate: float = gbps(40)  # on-board engine
    device_memory_rate: float = gbps(500)  # ~0.7x theoretical DDR
    device_memory_lanes: int = 2
    memory_passes: float = 3.5  # payload crosses device DRAM ~3.5x (§3.4)


@dataclasses.dataclass(frozen=True)
class BlueField3Spec:
    """The upcoming SoC SmartNIC of §3.4.

    BlueField-3 drops the compression engine: its 16 Arm cores together
    deliver only ~50 Gb/s of LZ4 against 400 Gb/s of networking, and its
    two DDR5-5600 channels reach ~0.7x of 716.8 Gb/s theoretical.
    """

    arm_cores: int = 16
    arm_parse_time: float = usec(0.8)
    total_compression_rate: float = gbps(50)  # all 16 cores together
    device_memory_rate: float = gbps(500)  # ~0.7 x 716.8 Gb/s
    device_memory_lanes: int = 2
    port_rate: float = gbps(400)

    @property
    def per_core_compression_rate(self) -> float:
        """LZ4 input rate of one Arm core."""
        return self.total_compression_rate / self.arm_cores


@dataclasses.dataclass(frozen=True)
class StorageSpec:
    """Back-end storage servers and the block-storage data model."""

    replication: int = 3
    disk_write_latency: float = usec(20)
    disk_read_latency: float = usec(80)
    segment_bytes: int = 32 * 1024**3  # 32 GB segments
    chunk_bytes: int = 64 * 1024**2  # 64 MB chunks


@dataclasses.dataclass(frozen=True)
class RecoverySpec:
    """Failure-recovery policy defaults (§2.2.3 time-out driven fail-over).

    The write policy has no overall deadline — an acked write must land
    on its replica set, so durability beats latency — while reads trade
    a bounded deadline for an ``unavailable`` reply. The HBM watermarks
    drive graceful degradation of the SmartDS tier: above the high
    watermark new device-memory admissions are refused and requests fall
    back to host-path (no-split) handling; waiters resume once usage
    drains below the low watermark.
    """

    write_max_attempts: int = 8
    write_attempt_timeout: float = usec(5000)  # = the historical replica_timeout
    read_max_attempts: int = 5
    read_attempt_timeout: float = usec(2000)
    read_deadline: float = usec(20000)
    backoff_base: float = usec(50)
    backoff_multiplier: float = 2.0
    backoff_cap: float = usec(1000)
    backoff_jitter: float = 0.25
    hbm_high_watermark: float = 0.92  # admission gate, fraction of capacity
    hbm_low_watermark: float = 0.80  # waiters resume below this fraction
    degraded_alloc_wait: float = usec(200)  # bounded wait before host-path fallback

    def __post_init__(self) -> None:
        if not 0.0 < self.hbm_low_watermark <= self.hbm_high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.hbm_low_watermark!r} high={self.hbm_high_watermark!r}"
            )


@dataclasses.dataclass(frozen=True)
class CacheSpec:
    """Device-memory hot-block read cache (``docs/caching.md``).

    The cache keeps *compressed* payloads of hot blocks in SmartNIC HBM
    so skewed read traffic is answered in one hop, without a backend
    round trip. It is the lowest-priority HBM consumer: it admits only
    below the watermark gate, registers as a reclaim callback with the
    :class:`~repro.core.device.DeviceMemoryAllocator`, and sheds cold
    segments under pressure before any request is degraded.
    """

    enabled: bool = False
    #: Upper bound on cache occupancy as a fraction of HBM capacity.
    capacity_fraction: float = 0.25
    #: Absolute byte bound; overrides `capacity_fraction` when set.
    capacity_bytes: int | None = None
    #: Segmented LRU: fraction of the byte budget reserved for the
    #: protected segment (re-referenced blocks); the rest is probation.
    protected_fraction: float = 0.8
    #: TinyLFU admission sketch geometry (counters per row x rows).
    sketch_width: int = 1024
    sketch_depth: int = 4
    #: Halve all sketch counters after this many recorded accesses, so
    #: frequency estimates age out with the workload.
    sketch_sample: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity fraction must be in (0, 1], got {self.capacity_fraction!r}"
            )
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError(f"capacity bytes must be positive, got {self.capacity_bytes!r}")
        if not 0.0 <= self.protected_fraction < 1.0:
            raise ValueError(
                f"protected fraction must be in [0, 1), got {self.protected_fraction!r}"
            )
        if self.sketch_width < 1 or self.sketch_depth < 1 or self.sketch_sample < 1:
            raise ValueError("sketch geometry must be positive")

    def limit_for(self, hbm_capacity: int) -> int:
        """The cache's byte budget on a device with `hbm_capacity` HBM."""
        if self.capacity_bytes is not None:
            return min(self.capacity_bytes, hbm_capacity)
        return int(self.capacity_fraction * hbm_capacity)


@dataclasses.dataclass(frozen=True)
class AdmissionSpec:
    """Overload protection for the middle tier (``docs/robustness.md``).

    Disabled by default: the tier accepts unbounded work exactly as
    before. Enabled, :mod:`repro.middletier.admission` layers four
    defenses over the request path — per-tenant credit admission at
    ingress, deadline-aware early shedding, per-replica circuit
    breakers, and an explicit brownout ladder driven by a single
    overload score — so sustained overload yields ``status="shed"``
    replies and bounded tails instead of queue collapse.
    """

    enabled: bool = False
    #: Per-tenant outstanding-request budget before a service rate is
    #: measured (the pool then adapts via Little's law: rate x budget).
    initial_credits: int = 32
    min_credits: int = 4
    max_credits: int = 256
    #: Per-request latency SLO: drives deadline-aware early shedding and
    #: the credit-pool adaptation target.
    latency_budget: float = usec(20000)
    #: EWMA smoothing for measured completion rates and gaps.
    ewma_alpha: float = 0.2
    #: Credit-pool adaptation cadence (also the brownout poll interval).
    adapt_interval: float = usec(500)
    #: Circuit breaker: this many failures inside `breaker_window` trip
    #: a replica's breaker open for `breaker_open_duration`, +- jitter.
    breaker_threshold: int = 3
    breaker_window: float = usec(5000)
    breaker_open_duration: float = usec(2000)
    breaker_jitter: float = 0.25
    #: Request-queue depth that maps to overload score 1.0.
    queue_target: int = 48
    #: Brownout ladder entry thresholds (overload score) for levels 1-4:
    #: no-cache-fills, host-ingress, raw-replication, shed.
    ladder_up: tuple = (0.55, 0.7, 0.85, 0.97)
    #: Hysteresis: a rung is left only once the score falls this far
    #: below its entry threshold, so the ladder doesn't flap.
    ladder_margin: float = 0.1
    #: Bulkhead pacing step for maintenance work under foreground pressure.
    maintenance_pause: float = usec(500)
    #: Seeds the breakers' deterministic probe jitter (replay-stable).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.min_credits <= self.initial_credits <= self.max_credits:
            raise ValueError(
                "credits must satisfy 1 <= min <= initial <= max, got "
                f"min={self.min_credits} initial={self.initial_credits} "
                f"max={self.max_credits}"
            )
        if self.latency_budget <= 0:
            raise ValueError(f"latency budget must be positive, got {self.latency_budget!r}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")
        if self.adapt_interval <= 0 or self.maintenance_pause <= 0:
            raise ValueError("adapt_interval and maintenance_pause must be positive")
        if self.breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.breaker_window <= 0 or self.breaker_open_duration <= 0:
            raise ValueError("breaker durations must be positive")
        if not 0.0 <= self.breaker_jitter < 1.0:
            raise ValueError(f"breaker_jitter must be in [0, 1), got {self.breaker_jitter!r}")
        if self.queue_target < 1:
            raise ValueError(f"queue_target must be >= 1, got {self.queue_target}")
        if len(self.ladder_up) != 4 or any(
            not 0.0 < t <= 1.0 for t in self.ladder_up
        ) or list(self.ladder_up) != sorted(set(self.ladder_up)):
            raise ValueError(
                f"ladder_up must be 4 strictly-increasing thresholds in (0, 1], "
                f"got {self.ladder_up!r}"
            )
        if not 0.0 <= self.ladder_margin < self.ladder_up[0]:
            raise ValueError(
                f"ladder_margin must be in [0, {self.ladder_up[0]!r}), "
                f"got {self.ladder_margin!r}"
            )


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Scale-out of the middle tier itself (``docs/scaling.md``).

    The paper evaluates a single middle-tier server (§5.1); a tier that
    "serves heavy traffic from millions of users" scales horizontally.
    :mod:`repro.cluster` places 32 GB segments onto N middle-tier shards
    through a consistent-hash :class:`~repro.cluster.SegmentDirectory`
    and routes clients with versioned route maps plus stale-map retry.

    The default is 1 shard with the directory bypassed: clients send
    straight to the only tier, no ownership guard is installed, and
    every existing experiment behaves exactly as before.
    """

    n_shards: int = 1
    #: Virtual nodes per shard on the hash ring. More vnodes smooth the
    #: per-shard arc share (relative imbalance ~ 1/sqrt(vnodes)).
    vnodes_per_shard: int = 128
    #: Simulated latency of one route-map fetch from the directory
    #: service (clients pay it on startup and on every stale-map refetch).
    map_fetch_latency: float = usec(3.0)
    #: Stale-map retry budget: attempts a client may spend rerouting one
    #: request after ``wrong_shard`` replies before surfacing the failure.
    max_route_retries: int = 4
    #: Install the ownership guard and route through the directory even
    #: with a single shard (tests use this to prove the 1-shard ring is
    #: behavior-identical to the undirected tier).
    force_directory: bool = False

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"need at least one shard, got {self.n_shards}")
        if self.vnodes_per_shard < 1:
            raise ValueError(
                f"need at least one virtual node per shard, got {self.vnodes_per_shard}"
            )
        if self.map_fetch_latency < 0:
            raise ValueError(
                f"map fetch latency must be non-negative, got {self.map_fetch_latency!r}"
            )
        if self.max_route_retries < 1:
            raise ValueError(
                f"need at least one route retry, got {self.max_route_retries}"
            )

    @property
    def directory_bypassed(self) -> bool:
        """Single-shard fast path: no guard, no lookups, no refetches."""
        return self.n_shards == 1 and not self.force_directory


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """The paper's I/O shape."""

    block_size: int = kib(4)
    header_size: int = 64
    intermediate_buffer_bytes: int = 400 * 1000**2  # Little's law, §3.2


@dataclasses.dataclass(frozen=True)
class FlightSpec:
    """Tail-based trace retention (``docs/observability.md``).

    Disabled by default: no recorder is built and the span hot path is
    untouched. Enabled (and with a :class:`~repro.telemetry.spans.
    SpanCollector` attached), every *completed* root span is classified
    by :class:`~repro.telemetry.flight.FlightRecorder`: anomalous traces
    (failed / shed / degraded / retried / wrong_shard / slow) are always
    kept, healthy ones are kept 1-in-`healthy_every` (seeded), and the
    newest `capacity` keepers ride in a ring buffer.
    """

    enabled: bool = False
    #: Ring size: kept trace records beyond this evict the oldest.
    capacity: int = 256
    #: Static per-trace slowness threshold (seconds): a root whose
    #: duration reaches it is kept with reason ``slow``.
    slow_threshold: float = msec(5)
    #: Per-operation overrides as ``(("read_request", seconds), ...)``
    #: pairs (tuples, not a dict, so the spec stays hashable/frozen).
    slow_thresholds: tuple = ()
    #: Dynamic slowness: once `dynamic_min_samples` durations of an op
    #: have been seen, a trace at/above this percentile of them is kept
    #: with reason ``slow_p99``. Set to ``None`` to disable.
    dynamic_percentile: float | None = 0.99
    dynamic_min_samples: int = 100
    #: Healthy-trace sampling rate: keep ~1 in this many (0 = none).
    healthy_every: int = 128
    #: Seeds the healthy-sampling RNG (replay-stable).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {self.capacity}")
        if self.slow_threshold <= 0:
            raise ValueError(
                f"slow_threshold must be positive, got {self.slow_threshold!r}"
            )
        for pair in self.slow_thresholds:
            if len(pair) != 2 or not isinstance(pair[0], str) or pair[1] <= 0:
                raise ValueError(
                    f"slow_thresholds entries must be (op, positive seconds), got {pair!r}"
                )
        if self.dynamic_percentile is not None and not 0 < self.dynamic_percentile <= 1:
            raise ValueError(
                f"dynamic_percentile must be in (0, 1], got {self.dynamic_percentile!r}"
            )
        if self.dynamic_min_samples < 2:
            raise ValueError(
                f"dynamic_min_samples must be >= 2, got {self.dynamic_min_samples}"
            )
        if self.healthy_every < 0:
            raise ValueError(f"healthy_every must be >= 0, got {self.healthy_every}")


#: Signals an :class:`SLOSpec` can watch.
SLO_SIGNALS = ("availability", "latency", "goodput")


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """One service-level objective watched by an
    :class:`~repro.telemetry.slo.SLOMonitor` (``docs/observability.md``).

    Three signal flavors:

    - ``availability``: fraction of requests answered ``ok`` must stay
      >= `target`;
    - ``latency``: fraction of requests answered ``ok`` within
      `latency_threshold` must stay >= `target` (a p99 objective is
      ``target=0.99``);
    - ``goodput``: ok-payload byte rate over the fast window must stay
      >= `goodput_floor` bytes/s.

    Burn rates follow the SRE-workbook multi-window scheme: with budget
    ``1 - target``, a window burning at `fast_burn`x (resp. `slow_burn`x)
    the sustainable rate trips a ``fast_burn`` (resp. ``slow_burn``)
    alert.
    """

    name: str = "slo"
    signal: str = "availability"
    #: Operation filter: requests whose kind starts with this prefix are
    #: scored ("write" matches ``write_request``); "any" scores all.
    op: str = "any"
    #: Good-event objective for availability/latency signals.
    target: float = 0.99
    #: Latency-signal threshold (seconds) an ok reply must beat.
    latency_threshold: float = msec(1)
    #: Goodput-signal floor (bytes/s of ok payload over `fast_window`).
    goodput_floor: float = 0.0
    #: Reporting window for the current bad fraction.
    window: float = msec(20)
    #: Burn-rate evaluation windows (fast trips pages, slow trips tickets).
    fast_window: float = msec(1)
    slow_window: float = msec(5)
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    #: Sliding-window resolution (buckets per window).
    n_buckets: int = 20

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO needs a name")
        if self.signal not in SLO_SIGNALS:
            raise ValueError(
                f"unknown SLO signal {self.signal!r}; have {SLO_SIGNALS}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target!r}")
        if self.latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be positive, got {self.latency_threshold!r}"
            )
        if self.goodput_floor < 0:
            raise ValueError(f"goodput_floor must be >= 0, got {self.goodput_floor!r}")
        if self.signal == "goodput" and self.goodput_floor <= 0:
            raise ValueError("goodput SLOs need a positive goodput_floor")
        if min(self.window, self.fast_window, self.slow_window) <= 0:
            raise ValueError("SLO windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"fast_window ({self.fast_window!r}) must be <= "
                f"slow_window ({self.slow_window!r})"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn-rate thresholds must be positive")
        if self.n_buckets < 2:
            raise ValueError(f"n_buckets must be >= 2, got {self.n_buckets}")


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """Everything an experiment needs, bundled."""

    host: HostSpec = dataclasses.field(default_factory=HostSpec)
    network: NetworkSpec = dataclasses.field(default_factory=NetworkSpec)
    smartds: SmartDsSpec = dataclasses.field(default_factory=SmartDsSpec)
    bluefield2: BlueField2Spec = dataclasses.field(default_factory=BlueField2Spec)
    bluefield3: BlueField3Spec = dataclasses.field(default_factory=BlueField3Spec)
    storage: StorageSpec = dataclasses.field(default_factory=StorageSpec)
    workload: WorkloadSpec = dataclasses.field(default_factory=WorkloadSpec)
    recovery: RecoverySpec = dataclasses.field(default_factory=RecoverySpec)
    cache: CacheSpec = dataclasses.field(default_factory=CacheSpec)
    admission: AdmissionSpec = dataclasses.field(default_factory=AdmissionSpec)
    cluster: ClusterSpec = dataclasses.field(default_factory=ClusterSpec)
    flight: FlightSpec = dataclasses.field(default_factory=FlightSpec)
    #: SLOs the tier should watch; empty (the default) builds no monitor.
    slos: tuple = ()


#: The default platform used by all experiments.
DEFAULT_PLATFORM = PlatformSpec()

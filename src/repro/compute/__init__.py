"""The compute-server side of Fig. 2: VMs, storage agents, virtual disks.

Compute servers host VMs whose block I/O goes "through its storage
agent ... to the corresponding middle-tier server" (§2.1). This package
provides that left-hand side of the architecture:

- :class:`~repro.compute.agent.StorageAgent` — per-compute-server
  component that owns the connections to the middle tier(s) and routes
  each request by its segment;
- :class:`~repro.compute.vm.VirtualMachine` /
  :class:`~repro.compute.vm.VirtualDisk` — the guest-facing block API
  (``write(lba, data)`` / ``read(lba)``), fully functional over the
  simulated datapath.
"""

from repro.compute.agent import SegmentAllocator, StorageAgent
from repro.compute.vm import VirtualDisk, VirtualMachine

__all__ = ["SegmentAllocator", "StorageAgent", "VirtualDisk", "VirtualMachine"]

"""The storage agent of a compute server.

One agent runs per compute server (§2.1). It owns the RoCE endpoint
towards the middle tier, maps each I/O's LBA to its segment, and
forwards the request to the middle-tier server responsible for that
segment — supporting clusters with many middle-tier servers, which is
how real deployments shard their 100k+ tier (§1).
"""

from __future__ import annotations

import typing

from repro.middletier.mapping import AddressMapper
from repro.net.link import NetworkPort
from repro.net.message import Message, Payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim.events import Event
from repro.telemetry.metrics import Counter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middletier.base import MiddleTierServer
    from repro.sim.kernel import Simulator


class SegmentAllocator:
    """Cloud-global allocator of disjoint segment ranges for virtual disks.

    Every VD owns whole segments (§2.1: "There is a mapping of LBA to
    the segment address of the physical disks"), so two disks never
    collide in the middle tier's block namespace. Share one allocator
    across every storage agent of a simulated cloud.
    """

    def __init__(self, platform: PlatformSpec | None = None) -> None:
        self.platform = platform or PlatformSpec()
        mapper = AddressMapper(
            self.platform.storage, block_size=self.platform.workload.block_size
        )
        self._blocks_per_segment = mapper.blocks_per_chunk * mapper.chunks_per_segment
        self._next_segment = 0

    def allocate(self, capacity_blocks: int) -> int:
        """Reserve whole segments covering `capacity_blocks`; returns the
        base (cloud-global) LBA of the new range."""
        if capacity_blocks < 1:
            raise ValueError("capacity must be at least one block")
        segments = -(-capacity_blocks // self._blocks_per_segment)  # ceil
        base = self._next_segment * self._blocks_per_segment
        self._next_segment += segments
        return base


class StorageAgent:
    """Routes VM block I/O to the middle tier responsible for its segment."""

    def __init__(
        self,
        sim: "Simulator",
        platform: PlatformSpec | None = None,
        address: str = "compute0",
        allocator: SegmentAllocator | None = None,
    ) -> None:
        self.sim = sim
        self.platform = platform or PlatformSpec()
        self.address = address
        self.allocator = allocator or SegmentAllocator(self.platform)
        self.mapper = AddressMapper(
            self.platform.storage, block_size=self.platform.workload.block_size
        )
        port = NetworkPort(
            sim, rate=self.platform.network.port_rate, name=f"{address}.port"
        )
        self.endpoint = RoceEndpoint(sim, port, address, spec=self.platform.network)
        self._tiers: list[tuple["MiddleTierServer", QueuePair]] = []
        self._reply_events: dict[int, Event] = {}
        self.requests_routed = Counter(f"{address}.routed")
        self._reply_loops_started: set[int] = set()

    def attach_tier(self, tier: "MiddleTierServer", port_index: int = 0) -> None:
        """Register a middle-tier server; segments shard across tiers
        round-robin (segment id modulo tier count)."""
        qp = tier.attach_client(self.endpoint, port_index=port_index)
        tier.start()
        self._tiers.append((tier, qp))
        if id(qp) not in self._reply_loops_started:
            self._reply_loops_started.add(id(qp))
            self.sim.process(self._reply_loop(qp), name=f"{self.address}.replies", daemon=True)

    def tier_for(self, lba: int) -> tuple["MiddleTierServer", QueuePair]:
        """The middle tier responsible for this LBA's segment."""
        if not self._tiers:
            raise RuntimeError("no middle tier attached to this agent")
        segment = self.mapper.resolve(lba).segment_id
        return self._tiers[segment % len(self._tiers)]

    def _reply_loop(self, qp: QueuePair) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            event = self._reply_events.pop(message.header.get("in_reply_to"), None)
            if event is not None:
                event.succeed(message)

    def submit_write(
        self, vm_id: str, lba: int, payload: Payload, latency_sensitive: bool = False
    ) -> typing.Any:
        """Issue one block write; returns a process firing with the reply."""
        return self.sim.process(
            self._submit(vm_id, lba, payload, latency_sensitive, kind="write_request")
        )

    def submit_read(self, vm_id: str, lba: int) -> typing.Any:
        """Issue one block read; returns a process firing with the reply."""
        return self.sim.process(self._submit(vm_id, lba, None, False, kind="read_request"))

    def _submit(
        self,
        vm_id: str,
        lba: int,
        payload: Payload | None,
        latency_sensitive: bool,
        kind: str,
    ) -> typing.Generator:
        block_address = self.mapper.resolve(lba)
        tier, qp = self.tier_for(lba)
        message = Message(
            kind=kind,
            src=self.address,
            dst=tier.address,
            header_size=self.platform.workload.header_size,
            payload=payload,
            header={
                "vm_id": vm_id,
                "service_type": "block-write" if payload else "block-read",
                "block_id": lba,
                "chunk_id": block_address.chunk_id,
                "segment_id": block_address.segment_id,
                "latency_sensitive": latency_sensitive,
            },
        )
        reply_event = self.sim.event(name=f"reply:{message.request_id}")
        self._reply_events[message.request_id] = reply_event
        self.requests_routed.add()
        yield qp.send(message)
        reply = yield reply_event
        return reply

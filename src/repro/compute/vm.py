"""Virtual machines and their virtualised disks.

A :class:`VirtualDisk` gives guest code the paper's block abstraction
(§2.1): persistent 4 KB blocks addressed by LBA, backed by the
disaggregated store behind the compute server's
:class:`~repro.compute.agent.StorageAgent`. Writes return when the
middle tier acknowledges durability on all replicas; reads return the
exact bytes written.
"""

from __future__ import annotations

import typing

from repro.compute.agent import StorageAgent
from repro.net.message import Payload
from repro.telemetry.metrics import Counter, LatencyRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class BlockIoError(RuntimeError):
    """Raised when the storage stack reports a failed block operation."""


class VirtualDisk:
    """One VD: a block device striped over its own (whole) segments.

    Guest LBAs are disk-relative; the disk owns a cloud-globally unique
    segment range (allocated at creation), so distinct disks never
    collide in the middle tier's block namespace.
    """

    def __init__(self, vm: "VirtualMachine", capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("a virtual disk needs at least one block")
        self.vm = vm
        self.capacity_blocks = capacity_blocks
        self.base_lba = vm.agent.allocator.allocate(capacity_blocks)
        self.writes = Counter(f"{vm.vm_id}.vd.writes")
        self.reads = Counter(f"{vm.vm_id}.vd.reads")
        self.write_latency = LatencyRecorder(f"{vm.vm_id}.vd.write-latency")
        self.read_latency = LatencyRecorder(f"{vm.vm_id}.vd.read-latency")

    @property
    def block_size(self) -> int:
        """Bytes per block (the paper's 4 KB)."""
        return self.vm.agent.platform.workload.block_size

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.capacity_blocks:
            raise ValueError(f"LBA {lba} outside 0..{self.capacity_blocks - 1}")

    def write(self, lba: int, data: bytes, latency_sensitive: bool = False) -> typing.Any:
        """Process: durably write one block; fires when replicated."""
        self._check_lba(lba)
        if len(data) != self.block_size:
            raise ValueError(f"block writes must be {self.block_size} B, got {len(data)}")
        return self.vm.sim.process(self._write(lba, data, latency_sensitive))

    def write_synthetic(self, lba: int, ratio: float = 2.1) -> typing.Any:
        """Process: write a performance-mode block (no real bytes)."""
        self._check_lba(lba)
        payload = Payload.synthetic(self.block_size, ratio)
        return self.vm.sim.process(self._submit_write(lba, payload, False))

    def read(self, lba: int) -> typing.Any:
        """Process: read one block back; fires with its bytes."""
        self._check_lba(lba)
        return self.vm.sim.process(self._read(lba))

    def _write(self, lba: int, data: bytes, latency_sensitive: bool) -> typing.Generator:
        result = yield from self._submit_write(
            lba, Payload.from_bytes(data), latency_sensitive
        )
        return result

    def _submit_write(
        self, lba: int, payload: Payload, latency_sensitive: bool
    ) -> typing.Generator:
        start = self.vm.sim.now
        reply = yield self.vm.agent.submit_write(
            self.vm.vm_id, self.base_lba + lba, payload, latency_sensitive
        )
        if reply.header.get("status") != "ok":
            raise BlockIoError(f"write of LBA {lba} failed: {reply.header}")
        self.writes.add()
        self.write_latency.record(self.vm.sim.now - start)
        return reply

    def _read(self, lba: int) -> typing.Generator:
        start = self.vm.sim.now
        reply = yield self.vm.agent.submit_read(self.vm.vm_id, self.base_lba + lba)
        if reply.header.get("status") != "ok":
            raise BlockIoError(f"read of LBA {lba} failed: {reply.header}")
        self.reads.add()
        self.read_latency.record(self.vm.sim.now - start)
        if reply.payload is None:
            raise BlockIoError(f"read of LBA {lba} returned no payload")
        return reply.payload.data if reply.payload.data is not None else reply.payload

    def __repr__(self) -> str:
        return f"<VirtualDisk {self.vm.vm_id} {self.capacity_blocks} blocks>"


class VirtualMachine:
    """A guest with one or more virtual disks behind a storage agent."""

    def __init__(self, sim: "Simulator", agent: StorageAgent, vm_id: str) -> None:
        self.sim = sim
        self.agent = agent
        self.vm_id = vm_id
        self.disks: list[VirtualDisk] = []

    def create_disk(self, capacity_blocks: int) -> VirtualDisk:
        """Provision a new virtual disk on the disaggregated store."""
        disk = VirtualDisk(self, capacity_blocks)
        self.disks.append(disk)
        return disk

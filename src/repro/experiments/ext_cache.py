"""Extension: hot-block read caching in SmartNIC device memory.

The middle tier forwards every read to a backend storage server even
though SmartDS keeps payloads resident in HBM. This extension measures
what a :class:`~repro.cache.HotBlockCache` buys under skewed traffic:

- **Zipf skew sweep** (s = 0 uniform, 0.8, 0.99, 1.2): hit ratio,
  mean/P99 read latency, and backend read bytes, cache-on vs the
  cache-off baseline — one NIC hop against a disk read + fabric RTT;
- **cache-size sweep** at s = 0.99 over one deterministic read trace:
  hit ratio must grow monotonically with the byte budget;
- **HBM-pressure series**: write burst, cache-warming reads, then a
  second write burst against a shrunk HBM. The cache is the
  lowest-priority consumer — it sheds itself (``sheds`` counter) and
  ``requests_degraded`` with the cache on stays <= the cache-off run at
  every capacity.

All cells are seeded and deterministic.
"""

from __future__ import annotations

from repro.core import SmartDsMiddleTier
from repro.experiments.common import ExperimentResult
from repro.middletier import Testbed
from repro.params import CacheSpec, DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import kib, to_usec
from repro.workloads import ClientDriver, SkewedReadFactory, WriteRequestFactory

#: Zipf skew sweep: 0 is uniform, 0.99 the classic YCSB hot-spot.
SKEWS = (0.0, 0.8, 0.99, 1.2)
#: Cache byte budgets for the size sweep (same read trace across all).
SIZE_SWEEP = (kib(64), kib(128), kib(256), kib(512))
#: Default cache budget for the skew sweep.
CACHE_BYTES = kib(256)
#: Shrunk-HBM capacities for the pressure series: comfortable (cache
#: fills then sheds), tight (partial fill), and starved (the elastic
#: floor is zero — the cache refuses every fill rather than contend).
HBM_SWEEP = (kib(512), kib(448), kib(192))

_SEED = 3


def _zipf_trace(n_blocks: int, n_reads: int, skew: float, seed: int = _SEED) -> list[int]:
    """A deterministic Zipf-sampled LBA trace (shared across cells)."""
    factory = WriteRequestFactory(seed=seed)
    skewed = SkewedReadFactory(factory, n_blocks, skew=skew, seed=seed)
    return [skewed.next_lba() for _ in range(n_reads)]


def measure_read_cell(
    lbas: list[int],
    n_blocks: int,
    cache_spec: CacheSpec,
    platform: PlatformSpec | None = None,
    seed: int = _SEED,
) -> dict:
    """Write `n_blocks`, then replay the `lbas` read trace; measure."""
    platform = platform or DEFAULT_PLATFORM
    sim = Simulator()
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(sim, testbed, n_ports=1, cache_spec=cache_spec)
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=seed),
        concurrency=8,
        warmup_fraction=0.0,
    )
    sim.run(until=driver.run(n_blocks))
    reads = sim.run(until=driver.run_reads(lbas, concurrency=8))
    backend_bytes = sum(s.read_bytes_served.value for s in testbed.storage_servers)
    summary = reads.latency.summary()
    cell = {
        "cache": cache_spec.enabled,
        "reads": reads.requests,
        "read_failures": len(reads.failures),
        "mean_us": to_usec(summary["avg"]),
        "p99_us": to_usec(summary["p99"]),
        "backend_read_bytes": backend_bytes,
        "hit_ratio": tier.cache.hit_ratio() if tier.cache is not None else 0.0,
    }
    if tier.cache is not None:
        cell["cache_stats"] = tier.cache.stats()
        hit = tier.cache_hit_latency.maybe_summary()
        miss = tier.cache_miss_latency.maybe_summary()
        cell["hit_mean_us"] = to_usec(hit["avg"]) if hit else None
        cell["miss_mean_us"] = to_usec(miss["avg"]) if miss else None
    return cell


def measure_pressure(
    hbm_capacity: int,
    n_writes: int,
    n_reads: int,
    cache_on: bool,
    platform: PlatformSpec | None = None,
    seed: int = 5,
) -> dict:
    """Write burst, cache-warming reads, second write burst, shrunk HBM.

    The second burst lands on an HBM partly occupied by the warmed
    cache; with elastic sizing the cache sheds and the burst degrades
    no more than it would with the cache off.
    """
    platform = platform or DEFAULT_PLATFORM
    spec = CacheSpec(enabled=cache_on, capacity_fraction=0.5)
    sim = Simulator()
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(
        sim,
        testbed,
        n_ports=1,
        recv_window=32,
        hbm_capacity=hbm_capacity,
        cache_spec=spec,
    )
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=seed),
        concurrency=8,
        warmup_fraction=0.0,
    )
    sim.run(until=driver.run(n_writes))
    lbas = _zipf_trace(n_writes, n_reads, skew=0.99, seed=seed)
    sim.run(until=driver.run_reads(lbas, concurrency=8))
    burst = sim.run(until=driver.run(n_writes))
    cache = tier.cache
    return {
        "hbm_kib": hbm_capacity // 1024,
        "cache": cache_on,
        "burst_requests": burst.requests,
        "degraded": tier.requests_degraded.value,
        "reads_degraded": tier.reads_degraded.value,
        "sheds": cache.sheds.value if cache is not None else 0,
        "hit_ratio": cache.hit_ratio() if cache is not None else 0.0,
        "bytes_reclaimed": tier.device.allocator.bytes_reclaimed.value,
        "peak_occupancy": tier.device.allocator.occupancy.peak,
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Skew sweep, cache-size sweep, and the HBM-pressure series."""
    platform = platform or DEFAULT_PLATFORM
    n_blocks = 96 if quick else 192
    n_reads = 300 if quick else 600
    skews = (0.0, 0.99) if quick else SKEWS
    sizes = SIZE_SWEEP[1:3] if quick else SIZE_SWEEP
    hbm_sweep = HBM_SWEEP[:2] if quick else HBM_SWEEP

    # Leg 1: skew sweep, cache-on vs cache-off on the same trace.
    skew_cells = []
    skew_rows = []
    for skew in skews:
        lbas = _zipf_trace(n_blocks, n_reads, skew)
        on = measure_read_cell(
            lbas, n_blocks, CacheSpec(enabled=True, capacity_bytes=CACHE_BYTES), platform
        )
        off = measure_read_cell(lbas, n_blocks, CacheSpec(enabled=False), platform)
        cell = {"skew": skew, "on": on, "off": off}
        skew_cells.append(cell)
        skew_rows.append(
            [
                f"{skew:.2f}",
                f"{on['hit_ratio']:.1%}",
                round(on["mean_us"], 1),
                round(off["mean_us"], 1),
                round(on["p99_us"], 1),
                round(off["p99_us"], 1),
                on["backend_read_bytes"] // 1024,
                off["backend_read_bytes"] // 1024,
            ]
        )
    skew_table = format_table(
        [
            "zipf s",
            "hit ratio",
            "mean on (us)",
            "mean off (us)",
            "p99 on (us)",
            "p99 off (us)",
            "backend on (KiB)",
            "backend off (KiB)",
        ],
        skew_rows,
    )

    # Leg 2: cache-size sweep at s=0.99 over one deterministic trace.
    sweep_lbas = _zipf_trace(n_blocks, n_reads, 0.99)
    size_cells = []
    size_rows = []
    for capacity in sizes:
        cell = measure_read_cell(
            sweep_lbas,
            n_blocks,
            CacheSpec(enabled=True, capacity_bytes=capacity),
            platform,
        )
        cell["capacity_kib"] = capacity // 1024
        size_cells.append(cell)
        size_rows.append(
            [
                capacity // 1024,
                f"{cell['hit_ratio']:.1%}",
                round(cell["mean_us"], 1),
                cell["backend_read_bytes"] // 1024,
                cell["cache_stats"]["admissions"],
                cell["cache_stats"]["evictions"],
                cell["cache_stats"]["rejections"],
            ]
        )
    size_table = format_table(
        [
            "cache (KiB)",
            "hit ratio",
            "mean (us)",
            "backend (KiB)",
            "admits",
            "evicts",
            "rejects",
        ],
        size_rows,
    )

    # Leg 3: HBM pressure — the cache must shed, never cause degradation.
    pressure_cells = []
    pressure_rows = []
    n_pressure_writes = 64 if quick else 96
    for capacity in hbm_sweep:
        on = measure_pressure(capacity, n_pressure_writes, n_reads // 2, True, platform)
        off = measure_pressure(capacity, n_pressure_writes, n_reads // 2, False, platform)
        pressure_cells.append({"hbm_kib": capacity // 1024, "on": on, "off": off})
        pressure_rows.append(
            [
                capacity // 1024,
                on["degraded"],
                off["degraded"],
                on["sheds"],
                f"{on['hit_ratio']:.1%}",
                on["bytes_reclaimed"] // 1024,
            ]
        )
    pressure_table = format_table(
        [
            "HBM (KiB)",
            "degraded on",
            "degraded off",
            "sheds",
            "hit ratio",
            "reclaimed (KiB)",
        ],
        pressure_rows,
    )

    text = (
        f"read path with the HBM hot-block cache ({CACHE_BYTES // 1024} KiB budget):\n"
        f"{skew_table}\n\n"
        f"cache-size sweep at zipf s=0.99 (one deterministic trace):\n{size_table}\n\n"
        f"HBM-pressure series (cache sheds before any request degrades):\n"
        f"{pressure_table}"
    )
    return ExperimentResult(
        experiment_id="ext_cache",
        title="Hot-block read cache in device memory (Zipf skew, elastic sizing)",
        text=text,
        data={
            "skew_cells": skew_cells,
            "size_cells": size_cells,
            "pressure_cells": pressure_cells,
        },
    )

"""Extension: multi-tenant fairness on one middle-tier server.

A cloud middle tier "must concurrently serve millions of VMs" (§1);
each server multiplexes many tenants. This extension runs several equal
closed-loop tenants against one middle tier and reports per-tenant
throughput plus Jain's fairness index — checking that neither the
worker pool (CPU-only) nor the Split/engine pipeline (SmartDS)
starves anyone.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_tier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.metrics import jain_fairness
from repro.telemetry.reporting import format_table
from repro.units import to_gbps
from repro.workloads import ClientDriver, WriteRequestFactory

DESIGNS = {"CPU-only": 48, "SmartDS-1": 2}


def measure_tenants(
    design: str,
    n_workers: int,
    n_tenants: int,
    n_requests_per_tenant: int,
    platform: PlatformSpec | None = None,
) -> dict:
    """Run `n_tenants` equal tenants; returns per-tenant stats + fairness."""
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    platform = platform or DEFAULT_PLATFORM
    sim = Simulator()
    testbed = Testbed(sim, platform)
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = build_tier(sim, testbed, design, n_workers, memory)
    drivers = [
        ClientDriver(
            sim,
            tier,
            WriteRequestFactory(platform, vm_id=f"tenant{i}", seed=i + 1),
            concurrency=max(4, 256 // n_tenants),
        )
        for i in range(n_tenants)
    ]
    runs = [driver.run(n_requests_per_tenant) for driver in drivers]
    sim.run(until=sim.all_of(runs))
    results = [driver.result() for driver in drivers]
    throughputs = [to_gbps(result.throughput) for result in results]
    return {
        "per_tenant_gbps": throughputs,
        "total_gbps": sum(throughputs),
        "fairness": jain_fairness(throughputs),
        "p99_us": [result.latency.percentile(0.99) * 1e6 for result in results],
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Fairness across 8 equal tenants per design."""
    platform = platform or DEFAULT_PLATFORM
    n_tenants = 4 if quick else 8
    per_tenant = 400 if quick else 1200
    rows = []
    data = {}
    for design, workers in DESIGNS.items():
        stats = measure_tenants(design, workers, n_tenants, per_tenant, platform)
        data[design] = stats
        rows.append(
            [
                design,
                n_tenants,
                round(stats["total_gbps"], 1),
                round(min(stats["per_tenant_gbps"]), 2),
                round(max(stats["per_tenant_gbps"]), 2),
                round(stats["fairness"], 4),
            ]
        )
    text = format_table(
        ["design", "tenants", "total (Gb/s)", "min tenant", "max tenant", "Jain index"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ext-tenants",
        title="Multi-tenant fairness on one middle-tier server",
        text=text,
        data=data,
    )

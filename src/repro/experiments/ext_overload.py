"""Extension: goodput plateaus (not cliffs) under sustained overload.

The DPU-datapath literature (PAPERS.md: Sun et al., Lovelock) shows
NIC-hosted services collapse non-linearly once their queues saturate:
every queued request blows its budget, times out, and the retry traffic
multiplies the very load that caused the problem. This extension drives
the SmartDS tier with an open-loop (Poisson) write stream swept past its
measured saturation point and shows that with the admission subsystem
(``repro.middletier.admission``, ``docs/robustness.md``) enabled:

- **goodput plateaus**: served bytes/s at 2x the saturation rate stays
  within 10% of the peak across the sweep, instead of collapsing;
- **p99-of-admitted stays bounded**: requests that are *not* shed
  complete within a small multiple of the configured latency budget —
  the tail is bounded by early shedding, not stretched by queueing;
- **every request terminates**: each offered request ends in exactly one
  of ok / shed / unavailable / not_found — no silent hangs (the drain
  auditor in the test suite re-checks this cell);
- **the tier recovers**: after an overload storm composed with an
  ``ext_chaos`` fault plan, a calm wave is served cleanly and the
  brownout ladder returns to full service.

Every cell is seeded and replayable.
"""

from __future__ import annotations

import dataclasses

from repro.core import SmartDsMiddleTier
from repro.experiments.common import ExperimentResult
from repro.experiments.ext_chaos import build_fault_plan
from repro.middletier import HeartbeatMonitor, Testbed
from repro.params import (
    DEFAULT_PLATFORM,
    AdmissionSpec,
    FlightSpec,
    PlatformSpec,
    SLOSpec,
)
from repro.sim import Simulator
from repro.telemetry.metrics import ratio
from repro.telemetry.reporting import format_table
from repro.telemetry.spans import SpanCollector
from repro.units import msec, to_usec, usec
from repro.workloads import ClientDriver, OpenLoopDriver, WriteRequestFactory

#: Offered-load multipliers of the measured saturation rate.
MULTIPLIERS = (0.5, 0.75, 1.0, 1.5, 2.0)
#: Fault seed for the recovery leg (first of ext_chaos's FAULT_SEEDS).
FAULT_SEED = 11
#: Statuses a request is allowed to terminate with.
TERMINAL_STATUSES = frozenset({"ok", "shed", "unavailable", "not_found"})
#: Bounded-tail criterion: p99 of *admitted* requests must stay under
#: this multiple of the admission latency budget at 2x saturation.
P99_BUDGET_MULTIPLE = 3.0

#: The admission tuning this experiment runs under: a tight latency
#: budget and queue target so protection engages well inside the sweep.
EXPERIMENT_ADMISSION = dict(
    enabled=True,
    initial_credits=64,
    min_credits=8,
    max_credits=128,
    latency_budget=usec(500),
    adapt_interval=usec(200),
    queue_target=32,
)

#: The SLOs this experiment watches (``docs/observability.md``): write
#: availability and write p99-under-threshold (the admission latency
#: budget times the bounded-tail multiple), both with a 1 ms fast /
#: 5 ms slow burn window so the page-grade alert can fire inside a
#: sweep point. Every shed consumes error budget, so at 2x saturation
#: the fast-burn alert trips *while goodput is still on its plateau* —
#: the monitor pages before throughput degrades, not after.
EXPERIMENT_SLOS = (
    SLOSpec(
        name="write-availability",
        signal="availability",
        op="write",
        target=0.99,
        window=msec(20),
        fast_window=msec(1),
        slow_window=msec(5),
    ),
    SLOSpec(
        name="write-p99",
        signal="latency",
        op="write",
        target=0.99,
        latency_threshold=usec(1500),
        window=msec(20),
        fast_window=msec(1),
        slow_window=msec(5),
    ),
)


def overload_platform(
    platform: PlatformSpec | None = None, **overrides
) -> PlatformSpec:
    """`platform` with admission control, the experiment SLOs, and a
    flight recorder enabled (plus admission-spec `overrides`)."""
    platform = platform or DEFAULT_PLATFORM
    merged = dict(EXPERIMENT_ADMISSION)
    merged.update(overrides)
    return dataclasses.replace(
        platform,
        admission=AdmissionSpec(**merged),
        slos=EXPERIMENT_SLOS,
        flight=FlightSpec(enabled=True),
    )


def calibrate_saturation(
    platform: PlatformSpec, n_requests: int, seed: int = 3
) -> float:
    """The tier's saturation throughput in requests/second.

    Measured closed-loop (64 outstanding requests — past the knee where
    added concurrency buys only queueing, not throughput) on an
    admission-*disabled* twin of `platform`, so the sweep's multipliers
    are anchored to the raw service capacity, not to a shed-limited
    rate.
    """
    baseline = dataclasses.replace(
        platform, admission=AdmissionSpec(enabled=False), slos=(), flight=FlightSpec()
    )
    sim = Simulator()
    testbed = Testbed(sim, baseline, n_storage_servers=5)
    tier = SmartDsMiddleTier(sim, testbed, n_ports=1)
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(baseline, seed=seed),
        concurrency=64,
        warmup_fraction=0.1,
    )
    result = sim.run(until=driver.run(n_requests))
    return result.requests / result.duration


def measure_point(
    offered_rate: float,
    n_requests: int,
    platform: PlatformSpec,
    fault_plan=None,
    seed: int = 7,
) -> dict:
    """One open-loop sweep point at `offered_rate` requests/second."""
    sim = Simulator()
    # The flight recorder and SLO trace capture need span trees; reuse
    # a TraceSession's collector when one is installed (runner --trace/
    # --flight), otherwise attach a private one.
    if getattr(sim, "_span_collector", None) is None:
        SpanCollector(sim)
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(sim, testbed, n_ports=1, fault_plan=fault_plan)
    monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1), seed=seed)
    driver = OpenLoopDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=seed),
        offered_rate=offered_rate,
        warmup_fraction=0.1,
        seed=seed,
    )
    result = sim.run(until=driver.run(n_requests))
    sim.run(until=sim.now + msec(5))  # drain recovery timers
    monitor.stop()
    admission = tier.admission
    statuses = {"ok"} if result.ok_requests else set()
    statuses.update(status for _lba, status in result.failures)
    summary = result.latency.maybe_summary()
    slo = tier.slo
    flight = tier.flight
    #: Root outcomes of the traces the availability alerts captured —
    #: the evidence a fast-burn page ships with.
    alert_trace_outcomes = (
        sorted(
            {
                record.outcome
                for alert in slo.alerts
                for record in alert.traces
            }
        )
        if slo is not None
        else []
    )
    return {
        "offered_rate": offered_rate,
        "offered": n_requests,
        "answered": len(driver._samples),
        "measured": result.requests,
        "ok": result.ok_requests,
        "goodput": result.throughput,
        "p99_us": to_usec(summary["p99"]) if summary else float("nan"),
        "shed": 0 if admission is None else admission.shed_total,
        "shed_fraction": ratio(
            sum(1 for _lba, status in result.failures if status == "shed"),
            result.requests,
        ),
        "statuses": sorted(statuses),
        "brownout_transitions": 0
        if admission is None
        else admission.brownout.transitions.value,
        "short_circuits": 0 if admission is None else admission.short_circuits.value,
        "fast_burn_alerts": 0
        if slo is None
        else len(slo.alerts_for("write-availability", "fast_burn")),
        "slow_burn_alerts": 0
        if slo is None
        else len(slo.alerts_for("write-availability", "slow_burn")),
        "slo_verdict": None if slo is None else slo.verdict(),
        "alert_trace_outcomes": alert_trace_outcomes,
        "flight_kept": 0 if flight is None else flight.traces_kept,
        "flight_anomalous": 0
        if flight is None
        else len(flight.anomalous_records()),
    }


def measure_recovery(
    saturation: float, n_requests: int, platform: PlatformSpec, seed: int = 7
) -> dict:
    """Overload storm composed with a chaos fault plan, then a calm wave.

    The storm offers 2x saturation while the ``ext_chaos`` fault plan
    injects loss bursts / PCIe stalls / an engine slowdown; after a
    settling gap, a calm wave at 0.5x saturation must be served cleanly
    and the brownout ladder must be back at full service.
    """
    plan = build_fault_plan(FAULT_SEED, 1.0)
    sim = Simulator()
    if getattr(sim, "_span_collector", None) is None:
        SpanCollector(sim)
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(sim, testbed, n_ports=1, fault_plan=plan)
    monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1), seed=seed)
    factory = WriteRequestFactory(platform, seed=seed)
    storm_driver = OpenLoopDriver(
        sim,
        tier,
        factory,
        offered_rate=2.0 * saturation,
        address="storm",
        warmup_fraction=0.0,
        seed=seed,
    )
    storm = sim.run(until=storm_driver.run(n_requests))
    sim.run(until=sim.now + msec(3))  # let the storm drain and faults pass
    slo = tier.slo
    storm_fast_burn = (
        0 if slo is None else len(slo.alerts_for("write-availability", "fast_burn"))
    )
    #: Evidence the storm's page shipped: root outcomes of the traces
    #: captured by alerts that fired during the storm.
    storm_alert_outcomes = (
        sorted(
            {
                record.outcome
                for alert in slo.alerts
                for record in alert.traces
            }
        )
        if slo is not None
        else []
    )

    calm_driver = OpenLoopDriver(
        sim,
        tier,
        factory,
        offered_rate=0.5 * saturation,
        address="calm",
        warmup_fraction=0.0,
        seed=seed + 1,
    )
    calm = sim.run(until=calm_driver.run(max(16, n_requests // 4)))
    sim.run(until=sim.now + msec(5))
    monitor.stop()
    admission = tier.admission
    level_after = 0 if admission is None else admission.brownout.current_level()
    calm_ok_fraction = ratio(calm.ok_requests, calm.requests)
    flight = tier.flight
    return {
        "fault_plan": plan.describe(),
        "storm_fast_burn_alerts": storm_fast_burn,
        "storm_alert_trace_outcomes": storm_alert_outcomes,
        "slo_verdict": None if slo is None else slo.verdict(),
        "flight_kept": 0 if flight is None else flight.traces_kept,
        "flight_anomalous": 0 if flight is None else len(flight.anomalous_records()),
        "storm_ok": storm.ok_requests,
        "storm_requests": storm.requests,
        "storm_shed_fraction": ratio(
            sum(1 for _lba, status in storm.failures if status == "shed"),
            storm.requests,
        ),
        "calm_ok_fraction": calm_ok_fraction,
        "calm_requests": calm.requests,
        "level_after": level_after,
        "recovered": level_after == 0 and calm_ok_fraction >= 0.9,
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Offered-load sweep past saturation + chaos-composed recovery."""
    platform = overload_platform(platform)
    # Long enough that sustained 2x load actually exceeds the latency
    # budget's Little's-law ceiling — a short burst is merely absorbed.
    n_requests = 600 if quick else 1500
    multipliers = (0.5, 1.0, 2.0) if quick else MULTIPLIERS

    saturation = calibrate_saturation(platform, max(96, n_requests // 2))

    points = []
    rows = []
    for multiplier in multipliers:
        point = measure_point(multiplier * saturation, n_requests, platform)
        point["multiplier"] = multiplier
        points.append(point)
        rows.append(
            [
                f"{multiplier:.2f}x",
                round(point["offered_rate"] / 1e3, 1),
                point["measured"],
                point["ok"],
                f"{point['goodput'] / 1e6:.1f}",
                round(point["p99_us"], 1),
                f"{point['shed_fraction']:.1%}",
                point["brownout_transitions"],
                f"{point['fast_burn_alerts']}/{point['slow_burn_alerts']}",
            ]
        )
    sweep_table = format_table(
        [
            "offered",
            "rate (kreq/s)",
            "measured",
            "ok",
            "goodput (MB/s)",
            "p99 adm (us)",
            "shed",
            "brownout",
            "burn alerts f/s",
        ],
        rows,
    )

    peak_goodput = max(point["goodput"] for point in points)
    at_2x = points[-1]
    plateau_ok = at_2x["goodput"] >= 0.9 * peak_goodput
    budget_us = to_usec(platform.admission.latency_budget)
    p99_bounded = at_2x["p99_us"] <= P99_BUDGET_MULTIPLE * budget_us
    all_terminal = all(
        set(point["statuses"]) <= TERMINAL_STATUSES for point in points
    )
    all_answered = all(point["answered"] == point["offered"] for point in points)

    # The storm must be long enough to overlap the fault plan's loss
    # bursts (they land ~1.7 ms in) or the recovery cell measures an
    # unperturbed tier; floor it even under --quick.
    recovery = measure_recovery(saturation, max(n_requests, 1500), platform)

    # SLO early warning (docs/observability.md). Two complementary
    # claims: (1) across the plain sweep, admission keeps both write
    # SLOs inside budget, so the page-grade fast-burn alert stays
    # *silent* — protected overload does not page; (2) when the tier
    # itself degrades (the chaos-composed storm sheds in earnest), the
    # fast-burn alert fires while goodput is still protected — the
    # operator hears about it from the burn rate, not from a
    # throughput collapse — and the page ships its evidence: the
    # flight-recorder ring captured at trip time holds the shed /
    # degraded traces that burned the budget.
    sweep_quiet = all(point["fast_burn_alerts"] == 0 for point in points)
    sweep_slos_met = all(
        all(entry["met"] for entry in point["slo_verdict"].values())
        for point in points
        if point["slo_verdict"] is not None
    )
    storm_pages = recovery["storm_fast_burn_alerts"] >= 1
    early_warning = storm_pages and plateau_ok and recovery["recovered"]
    alert_evidence = any(
        outcome in ("shed", "degraded", "failed")
        for outcome in recovery["storm_alert_trace_outcomes"]
    )

    text = (
        f"saturation (closed-loop, admission off): {saturation / 1e3:.1f} kreq/s\n\n"
        f"{sweep_table}\n\n"
        f"goodput at 2x saturation vs peak: "
        f"{ratio(at_2x['goodput'], peak_goodput):.1%} (plateau >= 90%: {plateau_ok})\n"
        f"p99 of admitted at 2x: {at_2x['p99_us']:.1f} us "
        f"(bound {P99_BUDGET_MULTIPLE:.0f}x budget = {P99_BUDGET_MULTIPLE * budget_us:.0f} us: "
        f"{p99_bounded})\n"
        f"every request answered with a terminal status: "
        f"{all_answered and all_terminal}\n"
        f"SLOs met across the sweep with zero fast-burn pages: "
        f"{sweep_slos_met and sweep_quiet} (protected overload does not page)\n"
        f"fast-burn pages during the degraded storm, goodput still "
        f"protected: {early_warning} "
        f"({recovery['storm_fast_burn_alerts']} page(s))\n"
        f"page shipped shed/degraded trace evidence: {alert_evidence} "
        f"(outcomes: {', '.join(recovery['storm_alert_trace_outcomes']) or 'none'}; "
        f"flight kept {recovery['flight_kept']} trace(s), "
        f"{recovery['flight_anomalous']} anomalous)\n\n"
        f"recovery after a chaos-composed storm "
        f"(plan: {recovery['fault_plan']}):\n"
        f"  storm shed fraction: {recovery['storm_shed_fraction']:.1%}, "
        f"calm ok fraction: {recovery['calm_ok_fraction']:.1%}, "
        f"ladder level after: {recovery['level_after']} "
        f"-> recovered: {recovery['recovered']}"
    )
    return ExperimentResult(
        experiment_id="ext_overload",
        title="Overload protection: goodput plateau, bounded tails, recovery",
        text=text,
        data={
            "saturation": saturation,
            "points": points,
            "peak_goodput": peak_goodput,
            "plateau_ok": plateau_ok,
            "p99_bounded": p99_bounded,
            "all_terminal": all_terminal,
            "all_answered": all_answered,
            "sweep_quiet": sweep_quiet,
            "sweep_slos_met": sweep_slos_met,
            "early_warning": early_warning,
            "alert_evidence": alert_evidence,
            "recovery": recovery,
        },
    )

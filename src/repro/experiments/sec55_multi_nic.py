"""§5.5: multiple SmartNICs per server.

The paper estimates that a 4U server with two 1x4 PCIe switches can
host 8 SmartDS cards: ~2.8 Tb/s of storage traffic (51.6x the CPU-only
tier), ~392 Gb/s of host memory traffic (far below the ~1228 Gb/s
theoretical), and ~49.6 Gb/s per PCIe-switch root port (far below
102.4 Gb/s).

We reproduce the estimate from *measured* single-card numbers: simulate
one SmartDS-6 card and a CPU-only peak, then scale card counts through
a water-filling allocator that honours the host's shared-resource
capacities (memory bandwidth, PCIe switch root ports, CPU cores).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import ExperimentResult, measure_design
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim.waterfill import water_fill
from repro.telemetry.reporting import format_table
from repro.units import to_gbps

#: PCIe switch topology of the paper's 4U host: two 1x4 PCIe 3.0 x16
#: switches, each root port at ~102.4 Gb/s achievable.
CARDS_PER_SWITCH = 4
SWITCH_ROOT_GBPS = 102.4


@dataclasses.dataclass(frozen=True)
class ScaleUpPoint:
    """Estimated operating point with `cards` SmartDS cards installed."""

    cards: int
    throughput_gbps: float
    host_memory_gbps: float
    pcie_per_switch_gbps: float
    cores_used: int
    speedup_vs_cpu_only: float


def estimate(
    per_card_gbps: float,
    per_card_memory_gbps: float,
    per_card_pcie_gbps: float,
    cpu_only_peak_gbps: float,
    platform: PlatformSpec,
    max_cards: int = 8,
    ports_per_card: int = 6,
    apply_core_limit: bool = False,
) -> list[ScaleUpPoint]:
    """Scale single-card measurements to `max_cards`, capping at shared
    resources via water-filling.

    `apply_core_limit` enforces the two-cores-per-port rule against the
    host's 48 logical cores. The paper's own 2.8 Tb/s estimate does
    *not* apply it (8 cards x 6 ports would need 96 cores), so the
    default matches the paper and the flag lets an ablation surface the
    inconsistency.
    """
    points = []
    memory_capacity_gbps = to_gbps(platform.host.memory_rate)
    total_cores = platform.host.logical_cores
    for cards in range(1, max_cards + 1):
        # Per-card demands on host memory, allocated max-min fairly.
        memory_grants = water_fill(
            memory_capacity_gbps, [per_card_memory_gbps] * cards
        )
        memory_fraction = (
            min(memory_grants) / per_card_memory_gbps if per_card_memory_gbps else 1.0
        )
        # Cores: two per port (the paper's rule).
        cores_needed = cards * ports_per_card * 2
        core_fraction = min(1.0, total_cores / cores_needed) if apply_core_limit else 1.0
        # PCIe: cards share switch root ports in groups of four.
        cards_on_busiest_switch = min(cards, CARDS_PER_SWITCH)
        pcie_grants = water_fill(
            SWITCH_ROOT_GBPS, [per_card_pcie_gbps] * cards_on_busiest_switch
        )
        pcie_fraction = (
            min(pcie_grants) / per_card_pcie_gbps if per_card_pcie_gbps else 1.0
        )
        fraction = min(memory_fraction, core_fraction, pcie_fraction)
        throughput = cards * per_card_gbps * fraction
        points.append(
            ScaleUpPoint(
                cards=cards,
                throughput_gbps=throughput,
                host_memory_gbps=cards * per_card_memory_gbps * fraction,
                pcie_per_switch_gbps=cards_on_busiest_switch * per_card_pcie_gbps,
                cores_used=min(cores_needed, total_cores),
                speedup_vs_cpu_only=throughput / cpu_only_peak_gbps,
            )
        )
    return points


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate the §5.5 scale-up estimate from measured inputs."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1500 if quick else 6000
    card = measure_design(
        "SmartDS-2" if quick else "SmartDS-6",
        n_workers=0,
        n_requests=n_requests,
        concurrency=256,
        platform=platform,
    )
    ports = 2 if quick else 6
    # Normalise the measured card to 6 ports (linear: Fig. 10).
    per_card_gbps = card.throughput_gbps * (6 / ports)
    per_card_memory = (card.memory_read_gbps + card.memory_write_gbps) * (6 / ports)
    per_card_pcie = sum(card.pcie_gbps.values()) * (6 / ports)
    cpu_only = measure_design(
        "CPU-only",
        n_workers=48,
        n_requests=n_requests,
        concurrency=288,
        platform=platform,
    )

    points = estimate(
        per_card_gbps, per_card_memory, per_card_pcie, cpu_only.throughput_gbps, platform
    )
    rows = [
        [
            p.cards,
            round(p.throughput_gbps, 0),
            round(p.host_memory_gbps, 1),
            round(p.pcie_per_switch_gbps, 1),
            p.cores_used,
            round(p.speedup_vs_cpu_only, 1),
        ]
        for p in points
    ]
    text = format_table(
        [
            "cards",
            "tput (Gb/s)",
            "host mem (Gb/s)",
            "PCIe/switch (Gb/s)",
            "cores",
            "x CPU-only",
        ],
        rows,
    )
    full = points[-1]
    return ExperimentResult(
        experiment_id="sec55",
        title="Multiple SmartNICs per server (scale-up estimate)",
        text=text,
        data={
            "points": points,
            "cpu_only_peak_gbps": cpu_only.throughput_gbps,
            "per_card_gbps": per_card_gbps,
            "full_server": full,
            "paper": {
                "throughput_tbps": 2.8,
                "speedup": 51.6,
                "host_memory_gbps": 392,
                "pcie_per_switch_gbps": 49.6,
            },
        },
    )

"""Extension: the BlueField-3 thought experiment of §3.4.

The paper argues the *upcoming* SoC SmartNIC generation doesn't fix the
middle-tier problem: BlueField-3 drops the compression engine, its 16
Arm cores compress at ~50 Gb/s combined, and its device DDR delivers
~500 Gb/s against 400 Gb/s of networking with ~3.5x payload passes.
This experiment instantiates that card as a middle tier and compares it
with BlueField-2 and a 400 Gb/s-class SmartDS (4 ports): achieved
throughput vs networking capability.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, measure_design
from repro.middletier import Testbed
from repro.middletier.soc_smartnic import BlueField3MiddleTier
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import to_gbps
from repro.workloads import ClientDriver, WriteRequestFactory


def _measure_bf3(platform: PlatformSpec, n_requests: int) -> float:
    sim = Simulator()
    testbed = Testbed(sim, platform)
    tier = BlueField3MiddleTier(sim, testbed)
    driver = ClientDriver(
        sim, tier, WriteRequestFactory(platform, seed=1), concurrency=256
    )
    result = sim.run(until=driver.run(n_requests))
    return to_gbps(result.throughput)


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Compare achieved throughput against networking ability."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 5000

    bf2 = measure_design("BF2", n_workers=2, n_requests=n_requests, concurrency=256, platform=platform)
    bf3_gbps = _measure_bf3(platform, n_requests)
    smartds = measure_design(
        "SmartDS-4", n_workers=0, n_requests=n_requests * 2, concurrency=192, platform=platform
    )

    rows = [
        ["BF2", 200, round(bf2.throughput_gbps, 1), round(bf2.throughput_gbps / 200, 2)],
        ["BF3", 400, round(bf3_gbps, 1), round(bf3_gbps / 400, 2)],
        [
            "SmartDS-4",
            400,
            round(smartds.throughput_gbps, 1),
            round(smartds.throughput_gbps / 400, 2),
        ],
    ]
    text = format_table(
        ["design", "network (Gb/s)", "achieved (Gb/s)", "fraction of network"],
        rows,
        title="Networking ability vs achieved middle-tier throughput",
    )
    return ExperimentResult(
        experiment_id="ext-bf3",
        title="BlueField-3 thought experiment (§3.4)",
        text=text,
        data={
            "bf2_gbps": bf2.throughput_gbps,
            "bf3_gbps": bf3_gbps,
            "smartds4_gbps": smartds.throughput_gbps,
            "paper": {"bf3_arm_compression_gbps": 50, "bf3_network_gbps": 400},
        },
    )

"""Extension: the read path (§2.2.2).

The paper's evaluation focuses on writes (5x more frequent, and CPU
decompression is ~7x faster than compression, §2.2.3), but it describes
the read path in full: middle tier fetches the compressed block from a
replica, decompresses it, and returns it to the VM. This extension
measures read latency across the designs:

- CPU-only decompresses on a core (fast — the 7x factor);
- Acc round-trips the block through its PCIe FPGA;
- SmartDS lands the storage reply's payload in HBM via a mixed recv and
  decompresses on the port engine, so host memory stays untouched even
  on reads.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_tier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import to_usec
from repro.workloads import ClientDriver, WriteRequestFactory

DESIGNS = {"CPU-only": 4, "Acc": 2, "BF2": 2, "SmartDS-1": 2}


def measure_reads(
    design: str,
    n_workers: int,
    n_writes: int,
    n_reads: int,
    concurrency: int = 8,
    platform: PlatformSpec | None = None,
) -> dict:
    """Write `n_writes` blocks, then read `n_reads` of them; returns stats."""
    platform = platform or DEFAULT_PLATFORM
    sim = Simulator()
    testbed = Testbed(sim, platform)
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = build_tier(sim, testbed, design, n_workers, memory)
    driver = ClientDriver(
        sim, tier, WriteRequestFactory(platform, seed=4), concurrency=concurrency
    )
    sim.run(until=driver.run(n_writes))
    memory_before = memory.total_bytes
    lbas = [i % n_writes for i in range(n_reads)]
    result = sim.run(until=driver.run_reads(lbas, concurrency=concurrency))
    summary = result.latency.summary()
    return {
        "requests": result.requests,
        "avg_us": to_usec(summary["avg"]),
        "p99_us": to_usec(summary["p99"]),
        "memory_bytes_during_reads": memory.total_bytes - memory_before,
        "payload_bytes": result.payload_bytes,
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Measure read serving across the designs."""
    platform = platform or DEFAULT_PLATFORM
    n_writes = 32 if quick else 64
    n_reads = 120 if quick else 600
    rows = []
    data = {}
    for design, workers in DESIGNS.items():
        stats = measure_reads(design, workers, n_writes, n_reads, platform=platform)
        data[design] = stats
        rows.append(
            [
                design,
                stats["requests"],
                round(stats["avg_us"], 1),
                round(stats["p99_us"], 1),
                stats["memory_bytes_during_reads"],
            ]
        )
    text = format_table(
        ["design", "reads", "avg (us)", "p99 (us)", "host DRAM bytes during reads"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ext-reads",
        title="Read path (§2.2.2) across designs",
        text=text,
        data=data,
    )

"""Figure 10: effect of the number of network ports.

SmartDS with 1/2/4/6 ports (the paper simulates SmartDS-6 from the
smaller configurations because its QSFP FMC module was broken; we can
simply instantiate it). Expected shape: throughput scales linearly in
ports; average and tail latency stay flat; host memory and PCIe
bandwidth stay negligible.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Measurement, measure_design
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.reporting import format_table

PORT_SWEEP = (1, 2, 4, 6)
QUICK_PORTS = (1, 2)


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Fig. 10 a-c."""
    platform = platform or DEFAULT_PLATFORM
    ports_swept = QUICK_PORTS if quick else PORT_SWEEP
    n_requests_per_port = 1000 if quick else 4000
    measurements: list[tuple[int, Measurement]] = []
    rows = []
    for ports in ports_swept:
        m = measure_design(
            f"SmartDS-{ports}",
            n_workers=0,  # default: two per port
            n_requests=n_requests_per_port * ports,
            concurrency=256,
            platform=platform,
        )
        measurements.append((ports, m))
        rows.append(
            [
                ports,
                round(m.throughput_gbps, 1),
                round(m.avg_latency_us, 1),
                round(m.p99_latency_us, 1),
                round(m.p999_latency_us, 1),
                round(m.memory_read_gbps + m.memory_write_gbps, 2),
                round(sum(m.pcie_gbps.values()), 2),
            ]
        )
    text = format_table(
        [
            "ports",
            "tput (Gb/s)",
            "avg (us)",
            "p99 (us)",
            "p999 (us)",
            "host mem (Gb/s)",
            "PCIe (Gb/s)",
        ],
        rows,
    )
    base = measurements[0][1].throughput_gbps
    scaling = {ports: m.throughput_gbps / base for ports, m in measurements}
    return ExperimentResult(
        experiment_id="fig10",
        title="Effect of the number of network ports",
        text=text,
        data={
            "measurements": measurements,
            "scaling_vs_one_port": scaling,
            "paper": {"linear_scaling": True, "latency_flat": True},
        },
    )

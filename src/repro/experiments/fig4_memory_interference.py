"""Figure 4: RDMA throughput at different memory pressure levels.

The paper's microbenchmark: all 48 logical cores run Intel MLC
injecting dummy memory requests with a configurable delay, while a
one-sided-RDMA packet forwarder (4 MB messages, 100 GbE) moves data
through the same host memory. As the delay shrinks (pressure rises),
RDMA throughput collapses to ~46 % of its uncontended value.

We reproduce the methodology exactly: an
:class:`~repro.workloads.mlc.MlcInjector` with a delay sweep shares the
memory subsystem with a forwarding loop that writes each received chunk
to memory and reads it back out for transmission.
"""

from __future__ import annotations

import typing

from repro.experiments.common import ExperimentResult
from repro.hostmodel.memory import MemorySubsystem
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import BandwidthServer, Simulator
from repro.telemetry.metrics import BandwidthMeter
from repro.telemetry.reporting import Series, format_table
from repro.units import kib, msec, to_gBps, to_gbps, usec
from repro.workloads import MlcInjector

#: The delays swept, in seconds (0 = maximum pressure). The paper's axis
#: is in cycles between injections; these cover the same dynamic range,
#: from idle-ish (100 us between injections) to back-to-back.
DELAY_SWEEP = (0.0, usec(1), usec(5), usec(10), usec(20), usec(50), usec(100))


def _forwarding_run(
    platform: PlatformSpec,
    mlc_threads: int,
    delay: float,
    duration: float,
    window: int = 6,
    chunk: int = kib(64),
) -> tuple[float, float]:
    """Achieved (RDMA Gb/s, MLC GB/s) under one pressure level.

    `window` is the NIC's DMA pipeline depth: how many chunks can be in
    flight between receive and transmit. A real NIC has little on-chip
    buffering, so when host-memory accesses stall under pressure the
    pipeline drains and the NIC goes idle — that is the collapse Fig. 4
    measures.
    """
    sim = Simulator()
    memory = MemorySubsystem.for_host(sim, platform.host)
    rx = BandwidthServer(sim, rate=platform.network.port_rate, name="nic.rx")
    tx = BandwidthServer(sim, rate=platform.network.port_rate, name="nic.tx")
    rdma_meter = BandwidthMeter("rdma")

    def forwarder() -> typing.Generator:
        # One in-flight chunk per window slot: receive (NIC), buffer in
        # memory, read back out, transmit (NIC).
        while True:
            yield rx.transfer(chunk)
            yield memory.write(chunk)
            yield memory.read(chunk)
            yield tx.transfer(chunk)
            rdma_meter.record(sim.now, chunk)

    for _ in range(window):
        sim.process(forwarder())
    # MLC at cache-line granularity would be millions of events; inject
    # the same bandwidth in 64 KB strides instead.
    mlc = MlcInjector(sim, memory, n_threads=mlc_threads, delay=delay, chunk=kib(64))
    mlc.start()
    sim.run(until=duration)
    return to_gbps(rdma_meter.rate(duration)), to_gBps(mlc.meter.rate(duration))


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Fig. 4 (RDMA + MLC throughput vs injection delay)."""
    platform = platform or DEFAULT_PLATFORM
    duration = msec(0.5) if quick else msec(2)
    mlc_threads = platform.host.logical_cores  # all cores run MLC
    delays = DELAY_SWEEP[:4] if quick else DELAY_SWEEP

    baseline_rdma, _ = _forwarding_run(platform, mlc_threads=0, delay=0.0, duration=duration)
    rows = [["no MLC", round(baseline_rdma, 1), 0.0, 1.0]]
    points = []
    for delay in sorted(delays, reverse=True):  # pressure rising left to right
        rdma, mlc_bw = _forwarding_run(platform, mlc_threads, delay, duration)
        fraction = rdma / baseline_rdma
        rows.append([f"{delay * 1e6:.2f} us", round(rdma, 1), round(mlc_bw, 1), round(fraction, 2)])
        points.append((delay, rdma, mlc_bw, fraction))

    text = format_table(
        ["MLC delay", "RDMA (Gb/s)", "MLC (GB/s)", "fraction of baseline"], rows
    )
    min_fraction = min(fraction for _, _, _, fraction in points)
    return ExperimentResult(
        experiment_id="fig4",
        title="RDMA throughput at different memory pressure levels",
        text=text,
        data={
            "baseline_rdma_gbps": baseline_rdma,
            "series": Series.from_points(
                "rdma", [(delay, rdma) for delay, rdma, _, _ in points]
            ),
            "mlc_series": Series.from_points(
                "mlc", [(delay, bw) for delay, _, bw, _ in points]
            ),
            "min_fraction": min_fraction,
            "paper": {"min_fraction": 0.46},
        },
    )

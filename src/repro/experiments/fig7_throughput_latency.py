"""Figure 7: throughput and latency of serving write requests.

Sweeps the number of worker threads for each middle-tier design and
reports achieved throughput (a), average latency (b), p99 (c) and p999
(d), reproducing the paper's observations:

- "SmartDS-1 and Acc only require two threads to reach the peak
  throughput, while CPU-only requires nearly all 48 logical cores";
- BF2 plateaus at its ~40 Gb/s compression engine;
- Acc has the highest unloaded average latency (extra PCIe crossings
  plus the slow-clock FPGA pipeline); BF2 the lowest (no host);
  SmartDS-1 sits near CPU-only.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Measurement, measure_design
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.reporting import format_table

#: Worker-thread sweep per design (the paper's x axis).
CORE_SWEEP = {
    "CPU-only": (1, 2, 4, 8, 16, 24, 32, 48),
    "Acc": (1, 2, 4, 8),
    "BF2": (1, 2, 4, 8),
    "SmartDS-1": (1, 2, 4),
}

QUICK_SWEEP = {
    "CPU-only": (2, 8, 24, 48),
    "Acc": (1, 2),
    "BF2": (1, 2),
    "SmartDS-1": (1, 2),
}


def _concurrency_for(design: str, n_workers: int) -> int:
    if design == "CPU-only":
        # Compression-bound workers: keep ~6 requests per worker in flight.
        return min(512, max(16, 6 * n_workers))
    return 256


def sweep(
    quick: bool = False, platform: PlatformSpec | None = None
) -> dict[str, list[Measurement]]:
    """Run the full Fig. 7 sweep; shared with Fig. 8."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 6000
    plan = QUICK_SWEEP if quick else CORE_SWEEP
    results: dict[str, list[Measurement]] = {}
    for design, cores in plan.items():
        results[design] = [
            measure_design(
                design,
                n_workers=n,
                n_requests=n_requests,
                concurrency=_concurrency_for(design, n),
                platform=platform,
            )
            for n in cores
        ]
    return results


def unloaded_latency(
    quick: bool = False, platform: PlatformSpec | None = None
) -> dict[str, Measurement]:
    """Latency at light load (the paper's "when not overloaded" regime).

    Expected ordering: Acc highest (two extra PCIe crossings plus the
    slow-clock engine pipeline), BF2 lowest (no host communication),
    SmartDS-1 about level with CPU-only.
    """
    platform = platform or DEFAULT_PLATFORM
    n_requests = 400 if quick else 2000
    return {
        design: measure_design(
            design,
            n_workers=2,
            n_requests=n_requests,
            concurrency=4,
            platform=platform,
        )
        for design in ("CPU-only", "Acc", "BF2", "SmartDS-1")
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Fig. 7 a-d."""
    results = sweep(quick, platform)
    rows = []
    for design, measurements in results.items():
        for m in measurements:
            rows.append(
                [
                    design,
                    m.n_workers,
                    round(m.throughput_gbps, 1),
                    round(m.avg_latency_us, 1),
                    round(m.p99_latency_us, 1),
                    round(m.p999_latency_us, 1),
                ]
            )
    text = format_table(
        ["design", "cores", "tput (Gb/s)", "avg (us)", "p99 (us)", "p999 (us)"],
        rows,
        title="(saturated: throughput is Fig. 7a; latency shows queueing)",
    )
    light = unloaded_latency(quick, platform)
    light_rows = [
        [
            design,
            round(m.avg_latency_us, 1),
            round(m.p99_latency_us, 1),
            round(m.p999_latency_us, 1),
        ]
        for design, m in light.items()
    ]
    text += "\n\n" + format_table(
        ["design", "avg (us)", "p99 (us)", "p999 (us)"],
        light_rows,
        title="(not overloaded: Fig. 7b-d's left edge)",
    )
    peaks = {d: max(m.throughput_gbps for m in ms) for d, ms in results.items()}
    return ExperimentResult(
        experiment_id="fig7",
        title="Throughput and latency of different approaches",
        text=text,
        data={
            "measurements": results,
            "peaks_gbps": peaks,
            "unloaded_latency": light,
            "paper": {
                "cpu_peak_needs_all_cores": True,
                "smartds_acc_peak_threads": 2,
                "bf2_peak_gbps": 40,
                "unloaded_order": ["BF2", "CPU-only", "SmartDS-1", "Acc"],
            },
        },
    )

"""Extension: latency vs offered load (open-loop).

The paper reports latency at the operating points of Fig. 7; this
extension sweeps *offered load* with a Poisson (open-loop) generator
and traces the classic latency hockey stick for the CPU-only tier and
SmartDS-1. The claim it sharpens: SmartDS holds low latency to a far
higher absolute load because its knee sits near the port limit, not the
host's compression/memory limits.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_tier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import to_gbps, to_usec
from repro.workloads import WriteRequestFactory
from repro.workloads.generators import OpenLoopDriver

#: The CPU-only tier's measured peak (Fig. 7); both designs are offered
#: the same absolute loads, expressed as fractions of this peak — the
#: comparison behind the paper's 2.6x/3.4x/3.5x latency-reduction claim.
CPU_PEAK_GBPS = 62.0

#: Offered loads as fractions of the CPU-only peak. At 0.95 the CPU
#: tier sits past its queueing knee while SmartDS still has headroom.
LOAD_POINTS = (0.3, 0.6, 0.8, 0.95, 0.99)

WORKERS = {"CPU-only": 48, "SmartDS-1": 2}


def _measure_point(
    design: str, offered_rps: float, n_requests: int, platform: PlatformSpec
) -> dict:
    sim = Simulator()
    testbed = Testbed(sim, platform)
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = build_tier(sim, testbed, design, WORKERS[design], memory)
    driver = OpenLoopDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=3),
        offered_rate=offered_rps,
        seed=11,
    )
    result = sim.run(until=driver.run(n_requests))
    summary = result.latency.summary()
    return {
        "achieved_gbps": to_gbps(result.throughput),
        "avg_us": to_usec(summary["avg"]),
        "p99_us": to_usec(summary["p99"]),
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Latency vs offered load for CPU-only and SmartDS-1."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 5000
    block_bits = platform.workload.block_size * 8
    loads = (0.3, 0.8, 0.95) if quick else LOAD_POINTS
    rows = []
    data: dict[str, list[dict]] = {}
    for design in WORKERS:
        data[design] = []
        for fraction in loads:
            offered_gbps = fraction * CPU_PEAK_GBPS
            offered_rps = offered_gbps * 1e9 / block_bits
            point = _measure_point(design, offered_rps, n_requests, platform)
            point["offered_fraction"] = fraction
            point["offered_gbps"] = offered_gbps
            data[design].append(point)
            rows.append(
                [
                    design,
                    f"{fraction:.0%}",
                    round(offered_gbps, 1),
                    round(point["avg_us"], 1),
                    round(point["p99_us"], 1),
                ]
            )
    text = format_table(
        ["design", "load (of CPU peak)", "offered (Gb/s)", "avg (us)", "p99 (us)"], rows
    )
    # The paper's headline latency ratios: at the highest common load.
    cpu_last, smartds_last = data["CPU-only"][-1], data["SmartDS-1"][-1]
    ratios = {
        "avg": cpu_last["avg_us"] / smartds_last["avg_us"],
        "p99": cpu_last["p99_us"] / smartds_last["p99_us"],
    }
    text += (
        f"\n\nat {loads[-1]:.0%} of the CPU-only peak, SmartDS-1 cuts latency"
        f" {ratios['avg']:.1f}x (avg) / {ratios['p99']:.1f}x (p99)"
        " [paper: 2.6x avg, 3.4x p99, 3.5x p999]"
    )
    return ExperimentResult(
        experiment_id="ext-load",
        title="Latency vs offered load (open loop)",
        text=text,
        data={**data, "latency_ratio_at_peak": ratios},
    )

"""Claim-by-claim validation against the paper.

Runs the (quick-mode) experiments and checks every headline claim of
the paper programmatically, producing a pass/fail report — the
reproduction's scorecard. ``smartds-repro validate`` prints it.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import (
    fig4_memory_interference,
    fig7_throughput_latency,
    fig8_bandwidth,
    fig9_interference,
    fig10_multiport,
    sec55_multi_nic,
    table3_resources,
)
from repro.experiments.common import ExperimentResult
from repro.params import PlatformSpec
from repro.telemetry.reporting import format_table


@dataclasses.dataclass(frozen=True)
class ClaimCheck:
    """One verified claim."""

    source: str  # where the paper makes the claim
    claim: str
    measured: str
    passed: bool


def _check_table3() -> list[ClaimCheck]:
    result = table3_resources.run()
    ok = result.data["SmartDS-6"]["brams"] == 1752 and result.data["Acc"]["luts_k"] == 112
    return [
        ClaimCheck(
            "Table 3",
            "resource rows match the published table",
            "exact" if ok else "MISMATCH",
            ok,
        )
    ]


def _check_fig4(quick: bool) -> list[ClaimCheck]:
    result = fig4_memory_interference.run(quick=False)  # cheap either way
    fraction = result.data["min_fraction"]
    return [
        ClaimCheck(
            "§3.1.2 / Fig. 4",
            "RDMA keeps only ~46% of bandwidth at max memory pressure",
            f"{fraction:.0%}",
            0.35 <= fraction <= 0.60,
        )
    ]


def _check_fig7(quick: bool) -> list[ClaimCheck]:
    result = fig7_throughput_latency.run(quick=quick)
    measurements = result.data["measurements"]
    peaks = result.data["peaks_gbps"]
    checks = []

    two_thread_ok = all(
        next(m for m in measurements[d] if m.n_workers == 2).throughput_gbps
        > 0.9 * peaks[d]
        for d in ("SmartDS-1", "Acc")
    )
    checks.append(
        ClaimCheck(
            "§5.2 / Fig. 7a",
            "SmartDS-1 and Acc reach peak throughput with two threads",
            "yes" if two_thread_ok else "no",
            two_thread_ok,
        )
    )
    cpu = {m.n_workers: m.throughput_gbps for m in measurements["CPU-only"]}
    cpu_needs_all = cpu[48] > 0.85 * peaks["SmartDS-1"] and cpu[8] < 0.5 * peaks["SmartDS-1"]
    checks.append(
        ClaimCheck(
            "§5.2 / Fig. 7a",
            "CPU-only needs nearly all 48 logical cores for the same peak",
            f"48c={cpu[48]:.0f} Gb/s vs 8c={cpu[8]:.0f}",
            cpu_needs_all,
        )
    )
    checks.append(
        ClaimCheck(
            "§3.4 / Fig. 7a",
            "BF2 is capped by its ~40 Gb/s compression engine",
            f"{peaks['BF2']:.0f} Gb/s",
            peaks["BF2"] < 45,
        )
    )
    light = result.data["unloaded_latency"]
    avg = {d: m.avg_latency_us for d, m in light.items()}
    order_ok = avg["Acc"] == max(avg.values()) and avg["BF2"] == min(avg.values())
    near_ok = abs(avg["SmartDS-1"] - avg["CPU-only"]) / avg["CPU-only"] < 0.25
    checks.append(
        ClaimCheck(
            "§5.2 / Fig. 7b-d",
            "unloaded latency: Acc highest, BF2 lowest, SmartDS ~ CPU-only",
            f"Acc {avg['Acc']:.0f} > CPU {avg['CPU-only']:.0f} ~ SDS"
            f" {avg['SmartDS-1']:.0f} > BF2 {avg['BF2']:.0f} us",
            order_ok and near_ok,
        )
    )
    return checks


def _check_fig8(quick: bool) -> list[ClaimCheck]:
    result = fig8_bandwidth.run(quick=quick)
    measurements = result.data["measurements"]

    def peak(design):
        return max(measurements[design], key=lambda m: m.throughput_gbps)

    smartds = peak("SmartDS-1")
    acc = peak("Acc")
    acc_off = peak("Acc w/o DDIO")
    mem = smartds.memory_read_gbps + smartds.memory_write_gbps
    pcie_fraction = sum(smartds.pcie_gbps.values()) / smartds.throughput_gbps
    return [
        ClaimCheck(
            "§5.2 / Fig. 8a",
            "SmartDS hardly occupies host memory bandwidth",
            f"{mem:.2f} Gb/s",
            mem < 1.0,
        ),
        ClaimCheck(
            "§5.2 / Fig. 8b",
            "SmartDS PCIe use is a tiny fraction of its traffic (~2%)",
            f"{pcie_fraction:.0%} of served Gb/s",
            pcie_fraction < 0.12,
        ),
        ClaimCheck(
            "§5.2 / Fig. 8a",
            "DDIO removes Acc's memory reads (and only its reads)",
            f"w/ DDIO {acc.memory_read_gbps:.1f}, w/o {acc_off.memory_read_gbps:.0f} Gb/s",
            acc.memory_read_gbps < 1 and acc_off.memory_read_gbps > 20,
        ),
    ]


def _check_fig9(quick: bool) -> list[ClaimCheck]:
    result = fig9_interference.run(quick=quick)
    retained = result.data["retained_fraction"]
    return [
        ClaimCheck(
            "§5.3 / Fig. 9",
            "SmartDS's performance hardly changes under memory pressure",
            f"keeps {retained['SmartDS-1']:.0%}",
            retained["SmartDS-1"] > 0.95,
        ),
        ClaimCheck(
            "§5.3 / Fig. 9",
            "CPU-only and Acc degrade under the same pressure",
            f"CPU keeps {retained['CPU-only']:.0%}, Acc {retained['Acc']:.0%}",
            retained["CPU-only"] < 0.8 and retained["Acc"] < 0.85,
        ),
    ]


def _check_fig10(quick: bool) -> list[ClaimCheck]:
    result = fig10_multiport.run(quick=quick)
    scaling = result.data["scaling_vs_one_port"]
    linear = all(abs(factor - ports) / ports < 0.05 for ports, factor in scaling.items())
    measurements = result.data["measurements"]
    latencies = [m.avg_latency_us for _p, m in measurements]
    flat = max(latencies) / min(latencies) < 1.1
    top = max(scaling)
    return [
        ClaimCheck(
            "§5.4 / Fig. 10",
            "throughput scales linearly in networking ports",
            f"{top} ports -> {scaling[top]:.2f}x",
            linear,
        ),
        ClaimCheck(
            "§5.4 / Fig. 10",
            "latency stays flat as ports are added",
            f"avg spread {max(latencies) / min(latencies):.2f}x",
            flat,
        ),
    ]


def _check_sec55(quick: bool) -> list[ClaimCheck]:
    result = sec55_multi_nic.run(quick=quick)
    full = result.data["full_server"]
    smartds4_like = result.data["per_card_gbps"] * 4 / 6  # 4 ports of the card
    cpu_peak = result.data["cpu_only_peak_gbps"]
    headline = smartds4_like / cpu_peak
    return [
        ClaimCheck(
            "§1 / abstract",
            "SmartDS provides up to ~4.3x the CPU-based tier's throughput",
            f"SmartDS-4 / CPU-only peak = {headline:.1f}x",
            3.4 <= headline <= 5.2,
        ),
        ClaimCheck(
            "§5.5",
            "8 cards per 4U server reach ~2.8 Tb/s",
            f"{full.throughput_gbps / 1000:.2f} Tb/s",
            full.throughput_gbps > 2000,
        ),
        ClaimCheck(
            "§5.5 / abstract",
            "reduces required middle-tier servers by tens of times (51.6x)",
            f"{full.speedup_vs_cpu_only:.0f}x",
            full.speedup_vs_cpu_only > 25,
        ),
    ]


def run(quick: bool = True, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Validate every headline claim; returns the scorecard."""
    checks: list[ClaimCheck] = []
    checks += _check_table3()
    checks += _check_fig4(quick)
    checks += _check_fig7(quick)
    checks += _check_fig8(quick)
    checks += _check_fig9(quick)
    checks += _check_fig10(quick)
    checks += _check_sec55(quick)
    rows = [
        [
            "PASS" if check.passed else "FAIL",
            check.source,
            check.claim,
            check.measured,
        ]
        for check in checks
    ]
    passed = sum(check.passed for check in checks)
    text = format_table(["", "source", "claim", "measured"], rows)
    text += f"\n\n{passed}/{len(checks)} claims reproduced"
    return ExperimentResult(
        experiment_id="validate",
        title="Paper-claim scorecard",
        text=text,
        data={"checks": checks, "passed": passed, "total": len(checks)},
    )

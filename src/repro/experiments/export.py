"""JSON export of experiment results.

Experiment data holds dataclasses (`Measurement`, `ScaleUpPoint`,
`ClaimCheck`), `Series`, and nested containers; this module converts any
result to plain JSON so external plotting/analysis pipelines can
consume ``smartds-repro ... --json out.json`` output.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.experiments.common import ExperimentResult
from repro.telemetry.reporting import Series


def jsonable(value: typing.Any) -> typing.Any:
    """Recursively convert experiment data into JSON-serializable form."""
    if isinstance(value, Series):
        return {"label": value.label, "x": list(value.x), "y": list(value.y)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return None  # JSON has no infinities; sweep sentinels become null
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Anything exotic degrades to its repr rather than crashing the dump.
    return repr(value)


def result_to_dict(result: ExperimentResult) -> dict:
    """One experiment result as a JSON-ready dictionary."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "text": result.text,
        "data": jsonable(result.data),
    }


def dump_results(results: typing.Sequence[ExperimentResult], path: str) -> None:
    """Write results to `path` as a JSON document keyed by experiment id."""
    document = {result.experiment_id: result_to_dict(result) for result in results}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def dump_bench(document: dict, path: str) -> None:
    """Write a validated ``BENCH_*.json`` benchmark document to `path`.

    Validation lives with the harness (``benchmarks.perf.schema``), which
    must be importable — i.e. run from the repository root, where the
    ``benchmarks`` package sits next to ``src``.
    """
    try:
        from benchmarks.perf.schema import validate_bench
    except ImportError as exc:  # pragma: no cover - depends on cwd
        raise RuntimeError(
            "the benchmarks package is not importable; run from the repository "
            "root (where benchmarks/ lives) to use --bench"
        ) from exc
    validate_bench(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def metrics_to_dict(registries: typing.Sequence[typing.Any]) -> dict:
    """Flat dump of every registry a :class:`TraceSession` collected.

    One entry per simulator the traced run created, in creation order;
    each is the registry's :meth:`~repro.telemetry.registry.MetricsRegistry.to_dict`
    (series values plus the periodic gauge samples).
    """
    return {"registries": [jsonable(registry.to_dict()) for registry in registries]}


def dump_metrics(registries: typing.Sequence[typing.Any], path: str) -> None:
    """Write :func:`metrics_to_dict` to `path` as JSON."""
    with open(path, "w") as handle:
        json.dump(metrics_to_dict(registries), handle, indent=2, sort_keys=True)


def dump_flight(recorders: typing.Sequence[typing.Any], path: str) -> None:
    """Write every flight recorder's ring to `path`, schema-validated.

    One entry per simulator's recorder, in creation order. Like
    ``--bench``, the dump refuses to write a malformed document
    (``repro.telemetry.schemas``).
    """
    from repro.telemetry.schemas import validate_flight

    document = {"recorders": [recorder.to_dict() for recorder in recorders]}
    validate_flight(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def dump_slo(monitors: typing.Sequence[typing.Any], path: str) -> None:
    """Write every SLO monitor's budgets/alerts to `path`, schema-validated."""
    from repro.telemetry.schemas import validate_slo

    document = {"monitors": [monitor.to_dict() for monitor in monitors]}
    validate_slo(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def dump_profile(profile: typing.Any, path: str) -> None:
    """Write a :class:`~repro.telemetry.profiler.SimProfile` dump to `path`,
    schema-validated."""
    from repro.telemetry.schemas import validate_profile

    document = profile.to_dict()
    validate_profile(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)

"""Extension: sharded middle tier — scaling, churn, and blast radius.

The paper's testbed runs one middle-tier server (§5.1); this extension
scales the tier horizontally with the :mod:`repro.cluster` subsystem
(``docs/scaling.md``) and measures three things:

- **near-linear scaling**: a shard-count sweep (1 -> 8) of aggregate
  goodput under a segment-balanced write stream, with per-shard p99 and
  the cross-shard heat-imbalance metric per cell. Acceptance: >= 3.2x
  aggregate goodput at 4 shards vs 1, per-shard p99 within 2x of the
  single-shard baseline;
- **directory churn**: a write stream while shards leave and rejoin the
  directory and hot segments are re-pinned. Stale-map retries must
  converge — every request ends in a terminal status, and FlowLedger
  byte conservation holds per shard (client tx bytes for flow
  ``shard:<addr>`` equal that shard's rx bytes) — no lost or silently
  dropped requests;
- **blast radius**: with per-shard replica groups (partitioned
  storage), one shard's replicas are killed mid-sweep under an
  ``ext_chaos`` fault plan. Read availability must degrade *only* for
  that shard's segments while the other shards hold their p99.

Every cell is seeded and replayable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.experiments.common import ExperimentResult
from repro.experiments.ext_chaos import build_fault_plan
from repro.params import DEFAULT_PLATFORM, ClusterSpec, PlatformSpec, SLOSpec
from repro.sim import Simulator
from repro.sim.debug import FlowLedger
from repro.telemetry.metrics import ratio
from repro.telemetry.reporting import format_table
from repro.units import to_gbps, to_usec, usec
from repro.workloads import RoutingClient, WriteRequestFactory

#: Shard counts of the scale sweep.
SHARD_SWEEP = (1, 2, 4, 8)
#: Statuses a routed request is allowed to terminate with.
TERMINAL_STATUSES = frozenset(
    {"ok", "shed", "unavailable", "not_found", "wrong_shard"}
)
#: Acceptance bound: aggregate goodput at 4 shards vs 1 shard.
MIN_SPEEDUP_AT_4 = 3.2
#: Acceptance bound: per-shard p99 vs the single-shard baseline.
MAX_P99_RATIO = 2.0

#: Middle-tier flavor the cells run (any design name works).
DESIGN = "CPU-only"
N_WORKERS = 2
#: Active segments per shard; pinned round-robin so the sweep measures
#: scaling, not ring luck (the ring's own spread is reported alongside).
SEGMENTS_PER_SHARD = 4


def cluster_platform(
    n_shards: int, platform: PlatformSpec | None = None, **overrides: typing.Any
) -> PlatformSpec:
    """`platform` reconfigured for an `n_shards` cluster."""
    platform = platform or DEFAULT_PLATFORM
    spec = ClusterSpec(n_shards=n_shards, **overrides)
    return dataclasses.replace(platform, cluster=spec)


def _build_cluster(
    sim: Simulator,
    platform: PlatformSpec,
    partition_storage: bool = False,
):
    from repro.cluster import ShardedCluster

    return ShardedCluster(
        sim,
        platform,
        design=DESIGN,
        n_workers=N_WORKERS,
        partition_storage=partition_storage,
    )


def measure_scale_cell(n_shards: int, n_requests_per_shard: int, seed: int = 3) -> dict:
    """One sweep cell: balanced write stream over `n_shards` shards."""
    platform = cluster_platform(n_shards)
    sim = Simulator()
    cluster = _build_cluster(sim, platform)
    n_segments = SEGMENTS_PER_SHARD * n_shards
    ring_spread = cluster.directory.route_map().placement(range(n_segments))
    cluster.directory.rebalance(range(n_segments))
    factory = WriteRequestFactory(
        platform, seed=seed, spread_segments=n_segments
    )
    client = RoutingClient(
        sim, cluster, factory, concurrency=8 * n_shards, warmup_fraction=0.1
    )
    result = sim.run(until=client.run(n_requests_per_shard * n_shards))

    shard_p99_us = {
        address: to_usec(recorder.percentile(0.99))
        for address, recorder in client.shard_latency.items()
        if recorder.count
    }
    ring_counts = {address: 0 for address in cluster.addresses}
    for owner in ring_spread.values():
        ring_counts[owner] += 1
    return {
        "n_shards": n_shards,
        "requests": result.requests,
        "ok_requests": result.ok_requests,
        "goodput_gbps": to_gbps(result.throughput),
        "p99_us": to_usec(result.latency.percentile(0.99)),
        "shard_p99_us": shard_p99_us,
        "imbalance": cluster.directory.imbalance(),
        "ring_segments_per_shard": ring_counts,
        "stale_retries": client.stale_retries.value,
        "failures": len(result.failures),
    }


def measure_churn_cell(
    n_requests: int, seed: int = 5, n_shards: int = 4
) -> dict:
    """Writes under directory churn: shards leave/rejoin, segments re-pin.

    Proves convergence, terminal statuses, and per-shard byte
    conservation under stale-map retries.
    """
    platform = cluster_platform(n_shards)
    sim = Simulator()
    cluster = _build_cluster(sim, platform)
    n_segments = SEGMENTS_PER_SHARD * n_shards
    factory = WriteRequestFactory(platform, seed=seed, spread_segments=n_segments)
    client = RoutingClient(
        sim, cluster, factory, concurrency=8, warmup_fraction=0.0, seed=seed
    )
    ledger = FlowLedger(sim, name="cluster-churn")
    ledger.attach(client.port)
    cluster.attach_ledger(ledger)

    last = cluster.addresses[-1]
    hot = list(range(min(SEGMENTS_PER_SHARD, n_segments)))

    def churn() -> typing.Generator:
        for step in range(8):
            yield sim.timeout(usec(25))
            if step % 2 == 0:
                cluster.directory.remove_shard(last)
            else:
                cluster.directory.add_shard(last)
                # Migrate the hot segments to a rotating owner as well.
                target = cluster.addresses[(step // 2) % n_shards]
                for segment_id in hot:
                    cluster.directory.pin_segment(segment_id, target)

    sim.process(churn(), daemon=True)
    result = sim.run(until=client.run(n_requests))

    conserved = []
    for address in cluster.addresses:
        flow = f"shard:{address}"
        sent = ledger.total(flow, f"{client.address}.port.tx")
        received = ledger.total(flow, *cluster.ingress_points(address))
        conserved.append(sent == received)
    statuses_terminal = all(
        status in TERMINAL_STATUSES for _lba, status in result.failures
    )
    return {
        "n_shards": n_shards,
        "requests": result.requests,
        "ok_requests": result.ok_requests,
        "failures": len(result.failures),
        "stale_retries": client.stale_retries.value,
        "map_fetches": client.map_fetches.value,
        "route_exhausted": client.route_exhausted.value,
        "wrong_shard_replies": sum(
            tier.wrong_shard_replies.value for tier in cluster.tiers
        ),
        "directory_version": cluster.directory.version,
        "bytes_conserved_per_shard": all(conserved),
        "all_terminal": statuses_terminal,
    }


def measure_kill_cell(
    n_segments_per_shard: int = 2,
    blocks_per_segment: int = 8,
    seed: int = 11,
    n_shards: int = 4,
) -> dict:
    """Kill one shard's replica group mid-run; measure the blast radius.

    Storage is partitioned per shard. A healthy write phase places every
    block, then the victim shard's replicas crash (composed with an
    ``ext_chaos`` fault plan on its network endpoint) and every block is
    read back: reads of the victim's segments must degrade to
    ``unavailable`` (terminal) while every other shard's reads stay
    100% available with their p99 intact.

    Each shard carries its own read-availability SLO monitor
    (``platform.slos`` -> per-tier budgets, ``docs/observability.md``),
    so the blast radius shows up in the error-budget ledger too: the
    victim's budget is burned through while every healthy shard's
    budget stays fully intact.
    """
    # Shrink the read fail-over budget so the victim's reads give up in
    # simulated milliseconds, not the default 20 ms each.
    recovery = dataclasses.replace(
        DEFAULT_PLATFORM.recovery,
        read_max_attempts=2,
        read_attempt_timeout=usec(300),
        read_deadline=usec(900),
    )
    platform = dataclasses.replace(
        cluster_platform(n_shards),
        recovery=recovery,
        slos=(
            SLOSpec(
                name="read-availability",
                signal="availability",
                op="read",
                target=0.99,
            ),
        ),
    )
    sim = Simulator()
    cluster = _build_cluster(sim, platform, partition_storage=True)
    n_segments = n_segments_per_shard * n_shards
    cluster.directory.rebalance(range(n_segments))
    factory = WriteRequestFactory(platform, seed=seed, spread_segments=n_segments)
    client = RoutingClient(
        sim, cluster, factory, concurrency=8, warmup_fraction=0.0, seed=seed
    )
    n_blocks = n_segments * blocks_per_segment
    write_result = sim.run(until=client.run(n_blocks))

    victim = cluster.addresses[1]
    victim_segments = {
        segment_id
        for segment_id in range(n_segments)
        if cluster.directory.owner_of(segment_id) == victim
    }
    cluster.fail_shard_storage(victim)
    plan = build_fault_plan(seed, intensity=0.5)
    cluster.tier(victim).client_endpoint.fault_plan = plan

    written = sorted(
        lba for lba, _status in _written_lbas(factory, n_blocks, n_segments)
    )
    read_result = sim.run(until=client.run_reads(written, concurrency=8))
    cluster.recover_shard_storage(victim)

    by_shard: dict[str, dict[str, int]] = {
        address: {"reads": 0, "unavailable": 0} for address in cluster.addresses
    }
    failed_lbas = dict(read_result.failures)
    for lba in written:
        owner = cluster.directory.owner_of(cluster.mapper.segment_of(lba))
        by_shard[owner]["reads"] += 1
        if lba in failed_lbas:
            by_shard[owner]["unavailable"] += 1
    availability = {
        address: 1.0 - ratio(cell["unavailable"], cell["reads"])
        for address, cell in by_shard.items()
    }
    healthy_p99_us = {
        address: to_usec(recorder.percentile(0.99))
        for address, recorder in client.shard_latency.items()
        if address != victim and recorder.count
    }
    verdicts = cluster.slo_verdicts()
    healthy_budgets = {
        address: verdict["read-availability"]["budget_remaining"]
        for address, verdict in verdicts.items()
        if address != victim
    }
    return {
        "victim": victim,
        "victim_segments": sorted(victim_segments),
        "writes_ok": write_result.ok_requests,
        "reads": read_result.requests,
        "availability": availability,
        "victim_availability": availability[victim],
        "healthy_availability": min(
            value for address, value in availability.items() if address != victim
        ),
        "healthy_p99_us": healthy_p99_us,
        "slo_verdicts": verdicts,
        "victim_slo_violated": not verdicts[victim]["read-availability"]["met"],
        "healthy_slos_met": all(
            verdict["read-availability"]["met"]
            for address, verdict in verdicts.items()
            if address != victim
        ),
        "healthy_budget_min": min(healthy_budgets.values()),
        "fault_plan": plan.describe(),
    }


def _written_lbas(
    factory: WriteRequestFactory, n_blocks: int, n_segments: int
) -> list[tuple[int, str]]:
    """The LBAs a `spread_segments` factory placed for `n_blocks` writes."""
    blocks_per_segment = (
        factory.platform.storage.segment_bytes // factory.platform.workload.block_size
    )
    lbas = []
    for index in range(n_blocks):
        lba = (index % n_segments) * blocks_per_segment + index // n_segments
        lbas.append((lba, "ok"))
    return lbas


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Shard-count sweep + directory churn + blast-radius cell."""
    del platform  # cells derive their own cluster platforms
    shard_counts = SHARD_SWEEP[:3] if quick else SHARD_SWEEP
    per_shard = 64 if quick else 160

    cells = [measure_scale_cell(n, per_shard) for n in shard_counts]
    baseline = cells[0]
    rows = []
    for cell in cells:
        speedup = ratio(cell["goodput_gbps"], baseline["goodput_gbps"])
        worst_shard_p99 = max(cell["shard_p99_us"].values())
        rows.append(
            [
                cell["n_shards"],
                round(cell["goodput_gbps"], 2),
                f"{speedup:.2f}x",
                round(cell["p99_us"], 1),
                round(worst_shard_p99, 1),
                f"{cell['imbalance']:.2f}",
                cell["stale_retries"],
                cell["failures"],
            ]
        )
    sweep_table = format_table(
        [
            "shards",
            "goodput (Gb/s)",
            "speedup",
            "p99 (us)",
            "worst shard p99 (us)",
            "imbalance",
            "stale",
            "failures",
        ],
        rows,
    )

    four = next((cell for cell in cells if cell["n_shards"] == 4), None)
    speedup_at_4 = (
        ratio(four["goodput_gbps"], baseline["goodput_gbps"]) if four else None
    )
    p99_ratio_at_4 = (
        ratio(max(four["shard_p99_us"].values()), baseline["p99_us"]) if four else None
    )

    churn = measure_churn_cell(n_requests=96 if quick else 240)
    kill = measure_kill_cell(n_segments_per_shard=2, blocks_per_segment=4 if quick else 8)

    text = (
        f"{sweep_table}\n\n"
        f"aggregate goodput at 4 shards: {speedup_at_4:.2f}x of 1 shard "
        f"(bound: >= {MIN_SPEEDUP_AT_4}x); worst per-shard p99 at 4 shards: "
        f"{p99_ratio_at_4:.2f}x of the single-shard baseline "
        f"(bound: <= {MAX_P99_RATIO}x)\n\n"
        f"directory churn ({churn['stale_retries']} stale retries over "
        f"{churn['requests']} writes, directory v{churn['directory_version']}): "
        f"failures={churn['failures']}, route_exhausted={churn['route_exhausted']}, "
        f"per-shard byte conservation={'ok' if churn['bytes_conserved_per_shard'] else 'VIOLATED'}\n\n"
        f"blast radius (killed {kill['victim']}'s replicas): victim read "
        f"availability {kill['victim_availability']:.0%}, healthy shards "
        f"{kill['healthy_availability']:.0%}\n"
        f"per-shard SLO budgets: victim read-availability violated="
        f"{kill['victim_slo_violated']}, healthy shards met="
        f"{kill['healthy_slos_met']} "
        f"(min healthy budget remaining {kill['healthy_budget_min']:.0%})"
    )
    return ExperimentResult(
        experiment_id="ext_cluster",
        title="Sharded middle tier: scaling, churn, blast radius (docs/scaling.md)",
        text=text,
        data={
            "cells": cells,
            "speedup_at_4": speedup_at_4,
            "p99_ratio_at_4": p99_ratio_at_4,
            "churn": churn,
            "kill": kill,
        },
    )

"""Command-line runner: regenerate any (or all) paper artifacts.

Usage::

    smartds-repro all --quick
    smartds-repro fig7
    python -m repro.experiments.runner table1 fig10
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.experiments import (
    ablations,
    ext_bluefield3,
    ext_cache,
    ext_chaos,
    ext_cluster,
    ext_load_latency,
    ext_maintenance,
    ext_multitenancy,
    ext_overload,
    ext_read_path,
    fig4_memory_interference,
    fig7_throughput_latency,
    fig8_bandwidth,
    fig9_interference,
    fig10_multiport,
    sec55_multi_nic,
    table1_pcie,
    table3_resources,
    validation,
)

EXPERIMENTS: dict[str, typing.Any] = {
    "ablations": ablations,
    "ext-bf3": ext_bluefield3,
    "ext_cache": ext_cache,
    "ext_chaos": ext_chaos,
    "ext_cluster": ext_cluster,
    "ext-load": ext_load_latency,
    "ext-maint": ext_maintenance,
    "ext-tenants": ext_multitenancy,
    "ext_overload": ext_overload,
    "ext-reads": ext_read_path,
    "table1": table1_pcie,
    "table3": table3_resources,
    "fig4": fig4_memory_interference,
    "fig7": fig7_throughput_latency,
    "fig8": fig8_bandwidth,
    "fig9": fig9_interference,
    "fig10": fig10_multiport,
    "sec55": sec55_multi_nic,
    "validate": validation,
}


def main(argv: typing.Sequence[str] | None = None) -> int:
    """Entry point for the ``smartds-repro`` script."""
    parser = argparse.ArgumentParser(
        prog="smartds-repro",
        description="Regenerate the SmartDS paper's tables and figures "
        "on the simulated testbed.",
    )
    # No argparse `choices`: with nargs="*" pre-3.12 argparse rejects an
    # empty selection against them, breaking the bare `--list` form.
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"which artifacts to regenerate: {', '.join(sorted(EXPERIMENTS))}, all",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment registry with one-line descriptions and exit",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render ASCII charts for results that carry series data",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps and request counts (for smoke runs)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="dump all selected results to FILE as JSON (for external plotting)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record request spans for every simulator the selected experiments "
        "create and write a Chrome trace_event JSON to FILE (open in Perfetto); "
        "also prints the critical path of the most interesting request",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="with --trace: also dump every registered metric series "
        "(counters, gauges + periodic samples, histograms) to FILE as JSON",
    )
    parser.add_argument(
        "--flight",
        metavar="FILE",
        help="arm a tail-sampling flight recorder on every simulator and write "
        "the kept (anomalous + sampled-healthy) traces to FILE as JSON "
        "(docs/observability.md)",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        help="watch the stock SLOs (availability, read p99) on every simulator "
        "and write error budgets, burn-rate alerts, and captured traces to FILE",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="fold every recorded span tree into component-level time "
        "attribution and write the collapsed-stack profile to FILE; also "
        "prints the latency-attribution table",
    )
    parser.add_argument(
        "--bench",
        metavar="FILE",
        help="run the perf harness (benchmarks.perf) instead of experiments and "
        "write the schema-validated benchmark document to FILE; honors --quick",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(list_experiments())
        return 0
    if args.bench:
        if args.experiments:
            parser.error("--bench runs the perf harness; don't also select experiments")
        try:
            from benchmarks.perf.harness import run_benchmarks
        except ImportError:
            parser.error(
                "the benchmarks package is not importable; run from the "
                "repository root (where benchmarks/ lives) to use --bench"
            )
        from repro.experiments.export import dump_bench

        document = run_benchmarks(quick=args.quick)
        dump_bench(document, args.bench)
        print(f"[wrote benchmark document to {args.bench}]")
        return 0
    if not args.experiments:
        parser.error("no experiments selected (try --list to see the registry)")
    unknown = [name for name in args.experiments if name != "all" and name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} (try --list to see the registry)"
        )

    if args.metrics and not args.trace:
        parser.error("--metrics requires --trace (the trace session owns the registries)")

    session = None
    if args.trace or args.flight or args.slo or args.profile:
        from repro.telemetry.spans import TraceSession

        flight_spec = None
        if args.flight or args.slo:
            # --slo implies a recorder so alerts can capture traces.
            from repro.params import FlightSpec

            flight_spec = FlightSpec(enabled=True)
        slo_specs = None
        if args.slo:
            from repro.telemetry.slo import DEFAULT_SLOS

            slo_specs = DEFAULT_SLOS
        session = TraceSession(flight=flight_spec, slo_specs=slo_specs).install()

    selected = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    results = []
    try:
        for name in selected:
            started = time.time()
            result = EXPERIMENTS[name].run(quick=args.quick)
            results.append(result)
            print(result.render())
            if args.chart:
                charts = render_charts(result)
                if charts:
                    print("\n" + charts)
            print(f"[{name} completed in {time.time() - started:.1f}s]\n")
    finally:
        if session is not None:
            session.uninstall()
    if args.json:
        from repro.experiments.export import dump_results

        dump_results(results, args.json)
        print(f"[wrote {len(results)} result(s) to {args.json}]")
    if session is not None:
        if args.trace:
            session.write_chrome_trace(args.trace)
            print(
                f"[wrote {session.total_spans} span(s) across {session.total_traces} "
                f"request trace(s) to {args.trace}]"
            )
            interesting = session.interesting_trace()
            if interesting is not None:
                collector, trace_id = interesting
                print("critical path of the most interesting request:")
                print(collector.format_critical_path(trace_id))
        if args.metrics:
            from repro.experiments.export import dump_metrics

            dump_metrics(session.registries, args.metrics)
            print(f"[wrote {len(session.registries)} metric registr(ies) to {args.metrics}]")
        if args.flight:
            from repro.experiments.export import dump_flight

            dump_flight(session.flights, args.flight)
            kept = sum(recorder.traces_kept for recorder in session.flights)
            print(f"[wrote {kept} kept trace(s) from {len(session.flights)} "
                  f"flight recorder(s) to {args.flight}]")
        if args.slo:
            from repro.experiments.export import dump_slo

            dump_slo(session.monitors, args.slo)
            alerts = sum(len(monitor.alerts) for monitor in session.monitors)
            print(f"[wrote {len(session.monitors)} SLO monitor(s), "
                  f"{alerts} alert(s) to {args.slo}]")
        if args.profile:
            from repro.experiments.export import dump_profile
            from repro.telemetry.profiler import SimProfile

            profile = SimProfile.from_session(session)
            dump_profile(profile, args.profile)
            print(f"[wrote profile of {profile.n_traces} trace(s) to {args.profile}]")
            print(profile.attribution_table())
    return 0


def list_experiments() -> str:
    """The registry, one line per experiment: key + docstring headline."""
    lines = []
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        headline = doc[0].strip() if doc else "(no description)"
        lines.append(f"  {name:<{width}}  {headline}")
    return "available experiments:\n" + "\n".join(lines)


def render_charts(result: typing.Any) -> str:
    """Render ASCII charts for any Series the result's data carries,
    plus a bar chart for per-design peak dictionaries."""
    from repro.telemetry.charts import bar_chart, line_chart
    from repro.telemetry.reporting import Series

    pieces = []
    series = [value for value in result.data.values() if isinstance(value, Series)]
    by_x: dict[tuple, list[Series]] = {}
    for one in series:
        by_x.setdefault(one.x, []).append(one)
    for group in by_x.values():
        pieces.append(line_chart(group, title=result.title))
    peaks = result.data.get("peaks_gbps")
    if isinstance(peaks, dict) and peaks:
        pieces.append(
            bar_chart(list(peaks), list(peaks.values()), title="peak throughput", unit="Gb/s")
        )
    return "\n\n".join(pieces)


if __name__ == "__main__":
    sys.exit(main())

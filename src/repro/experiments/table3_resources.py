"""Table 3: FPGA resource consumption.

Reproduces the published post-implementation resource rows for the
accelerator design and SmartDS-1/2/4/6, with utilization percentages
against the VCU128 totals.
"""

from __future__ import annotations

from repro.core.resources import design_resources, utilization
from repro.experiments.common import ExperimentResult
from repro.telemetry.reporting import format_table


def run(quick: bool = False, platform=None) -> ExperimentResult:
    """Regenerate Table 3 (the model is analytic; `quick` is ignored)."""
    configurations = [("Acc", ("acc", 1))] + [
        (f"SmartDS-{ports}", ("smartds", ports)) for ports in (1, 2, 4, 6)
    ]
    rows = []
    data = {}
    for label, (design, ports) in configurations:
        resources = design_resources(design, ports)
        util = utilization(resources)
        rows.append(
            [
                label,
                f"{resources.luts_k:.0f} ({util['luts']:.1%})",
                f"{resources.regs_k:.0f} ({util['regs']:.1%})",
                f"{resources.brams:.0f} ({util['brams']:.1%})",
            ]
        )
        data[label] = {
            "luts_k": resources.luts_k,
            "regs_k": resources.regs_k,
            "brams": resources.brams,
            "utilization": util,
        }
    text = format_table(["Name", "LUTs (K)", "REGS (K)", "BRAMs"], rows)
    return ExperimentResult(
        experiment_id="table3",
        title="FPGA resource consumption",
        text=text,
        data=data,
    )

"""Ablations of SmartDS design choices.

DESIGN.md calls out the decisions this module stresses:

- ``split``        — what AAMS buys: SmartDS vs the no-split design
                     with the same engine (Acc) on host memory and PCIe;
- ``recv_window``  — how many posted split descriptors the Split module
                     needs before back-to-back messages pipeline;
- ``engine_latency`` — engine pipeline depth vs throughput/latency:
                     throughput must not care, unloaded latency must;
- ``compressibility`` — where the egress bottleneck moves as block
                     compressibility varies (3-way replication amplifies
                     egress by 3/ratio);
- ``replication``  — sensitivity to the replication factor;
- ``latency_sensitive`` — Listing 1's compression bypass: latency gets
                     better per request, but raw 3x replication eats the
                     egress port sooner.

Each ablation returns rows; ``run`` bundles them into one report.
"""

from __future__ import annotations

import dataclasses

from repro.compression.model import FPGA_ENGINE, CompressorProfile, RatioSampler
from repro.core import SmartDsMiddleTier
from repro.experiments.common import ExperimentResult, measure_design
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import to_gbps, to_usec, usec
from repro.workloads import ClientDriver, WriteRequestFactory


def _drive_smartds(
    platform: PlatformSpec,
    n_requests: int,
    concurrency: int,
    recv_window: int = 64,
    ratio: float | None = None,
    latency_sensitive_fraction: float = 0.0,
) -> dict:
    sim = Simulator()
    testbed = Testbed(sim, platform)
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = SmartDsMiddleTier(sim, testbed, memory=memory, recv_window=recv_window)
    factory = WriteRequestFactory(
        platform,
        ratio_sampler=RatioSampler.constant(ratio) if ratio else None,
        latency_sensitive_fraction=latency_sensitive_fraction,
        seed=1,
    )
    driver = ClientDriver(sim, tier, factory, concurrency=concurrency)
    result = sim.run(until=driver.run(n_requests))
    summary = result.latency.summary()
    return {
        "throughput_gbps": to_gbps(result.throughput),
        "avg_us": to_usec(summary["avg"]),
        "p99_us": to_usec(summary["p99"]),
    }


def split_ablation(quick: bool = False, platform: PlatformSpec | None = None) -> list[list]:
    """AAMS on (SmartDS-1) vs off (Acc: same engine, host-memory path)."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 4000
    rows = []
    for label, design in (("AAMS split (SmartDS-1)", "SmartDS-1"), ("no split (Acc)", "Acc")):
        m = measure_design(design, n_workers=2, n_requests=n_requests, concurrency=256, platform=platform)
        per_gb = m.throughput_gbps or 1.0
        rows.append(
            [
                label,
                round(m.throughput_gbps, 1),
                round(m.memory_read_gbps + m.memory_write_gbps, 1),
                round(sum(m.pcie_gbps.values()), 1),
                round((m.memory_read_gbps + m.memory_write_gbps) / per_gb, 2),
                round(sum(m.pcie_gbps.values()) / per_gb, 2),
            ]
        )
    return rows


def recv_window_ablation(quick: bool = False, platform: PlatformSpec | None = None) -> list[list]:
    """Split-descriptor depth: 1 descriptor serializes the split pipeline."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1000 if quick else 3000
    windows = (1, 4, 64) if quick else (1, 2, 4, 8, 16, 64)
    rows = []
    for window in windows:
        m = _drive_smartds(platform, n_requests, concurrency=256, recv_window=window)
        rows.append([window, round(m["throughput_gbps"], 1), round(m["avg_us"], 1)])
    return rows


def engine_latency_ablation(
    quick: bool = False, platform: PlatformSpec | None = None
) -> list[list]:
    """Engine pipeline depth: throughput flat, unloaded latency linear."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 800 if quick else 2500
    depths_us = (1, 18) if quick else (1, 5, 18, 50)
    rows = []
    for depth in depths_us:
        profile = CompressorProfile("fpga-engine", rate=FPGA_ENGINE.rate, setup_time=usec(depth))
        sim = Simulator()
        testbed = Testbed(sim, platform)
        tier = SmartDsMiddleTier(sim, testbed)
        for instance in tier.device.instances:
            instance.engine.profile = profile
        # Saturated run for throughput.
        driver = ClientDriver(
            sim, tier, WriteRequestFactory(platform, seed=1), concurrency=256
        )
        saturated = sim.run(until=driver.run(n_requests))
        # Light run for latency on a fresh testbed.
        sim2 = Simulator()
        testbed2 = Testbed(sim2, platform)
        tier2 = SmartDsMiddleTier(sim2, testbed2)
        for instance in tier2.device.instances:
            instance.engine.profile = profile
        light_driver = ClientDriver(
            sim2, tier2, WriteRequestFactory(platform, seed=2), concurrency=4
        )
        light = sim2.run(until=light_driver.run(max(200, n_requests // 8)))
        rows.append(
            [
                depth,
                round(to_gbps(saturated.throughput), 1),
                round(to_usec(light.latency.mean()), 1),
            ]
        )
    return rows


def compressibility_ablation(
    quick: bool = False, platform: PlatformSpec | None = None
) -> list[list]:
    """Peak throughput vs block compressibility (egress amplification 3/r)."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1000 if quick else 3000
    ratios = (1.0, 2.1, 4.0) if quick else (1.0, 1.5, 2.1, 3.0, 4.0, 8.0)
    rows = []
    for ratio in ratios:
        m = _drive_smartds(platform, n_requests, concurrency=256, ratio=ratio)
        rows.append([ratio, round(m["throughput_gbps"], 1)])
    return rows


def replication_ablation(
    quick: bool = False, platform: PlatformSpec | None = None
) -> list[list]:
    """Peak throughput vs replication factor (egress amplification r/ratio)."""
    base = platform or DEFAULT_PLATFORM
    n_requests = 1000 if quick else 3000
    factors = (1, 3) if quick else (1, 2, 3, 4)
    rows = []
    for replication in factors:
        storage = dataclasses.replace(base.storage, replication=replication)
        varied = dataclasses.replace(base, storage=storage)
        m = _drive_smartds(varied, n_requests, concurrency=256)
        rows.append([replication, round(m["throughput_gbps"], 1)])
    return rows


def latency_sensitive_ablation(
    quick: bool = False, platform: PlatformSpec | None = None
) -> list[list]:
    """Listing 1's bypass knob: more raw forwarding = more egress bytes."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1000 if quick else 3000
    fractions = (0.0, 1.0) if quick else (0.0, 0.25, 0.5, 0.75, 1.0)
    rows = []
    for fraction in fractions:
        m = _drive_smartds(
            platform, n_requests, concurrency=256, latency_sensitive_fraction=fraction
        )
        rows.append([fraction, round(m["throughput_gbps"], 1), round(m["avg_us"], 1)])
    return rows


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Run every ablation and bundle one report."""
    sections = [
        (
            "AAMS split on/off (per-Gb/s host footprints)",
            ["variant", "tput (Gb/s)", "mem (Gb/s)", "PCIe (Gb/s)", "mem/tput", "PCIe/tput"],
            split_ablation(quick, platform),
        ),
        (
            "Split recv-descriptor window",
            ["window", "tput (Gb/s)", "avg (us)"],
            recv_window_ablation(quick, platform),
        ),
        (
            "Engine pipeline depth",
            ["depth (us)", "tput (Gb/s)", "unloaded avg (us)"],
            engine_latency_ablation(quick, platform),
        ),
        (
            "Block compressibility",
            ["LZ4 ratio", "tput (Gb/s)"],
            compressibility_ablation(quick, platform),
        ),
        (
            "Replication factor",
            ["replicas", "tput (Gb/s)"],
            replication_ablation(quick, platform),
        ),
        (
            "Latency-sensitive (compression bypass) fraction",
            ["fraction", "tput (Gb/s)", "avg (us)"],
            latency_sensitive_ablation(quick, platform),
        ),
    ]
    text = "\n\n".join(
        format_table(headers, rows, title=title) for title, headers, rows in sections
    )
    return ExperimentResult(
        experiment_id="ablations",
        title="SmartDS design-choice ablations",
        text=text,
        data={title: rows for title, _headers, rows in sections},
    )

"""Extension: availability and graceful degradation under injected faults.

The paper argues the middle tier is the availability linchpin of the
disaggregated store (§2.2.3) but only evaluates it healthy. This
extension runs the SmartDS tier through seeded chaos — a
:class:`~repro.sim.debug.FaultPlan` of loss bursts, PCIe stalls, and
engine slowdowns, plus storage-server kill/recover cycles — across a
fault-intensity sweep, and reports the SLO-under-failure metrics of the
middle-tier storage literature:

- **acked-write durability**: every write the VM saw acknowledged must
  remain readable from at least one live replica (must be 100% — the
  retry policy has no deadline on writes, exactly so this holds);
- **read availability**: fraction of reads answered with data rather
  than ``status="unavailable"`` once the retry policy's fail-over
  budget is spent;
- **tail latency** for writes and reads under fault injection;
- **degraded-request fraction**: how often the tier fell back to
  host-path (no-split / software) handling under pressure.

A second leg shrinks the device's HBM to force the allocator through
its watermark gate: the burst must complete with degraded counters
instead of ``MemoryError``. Every cell is seeded and replayable — see
``docs/robustness.md``.
"""

from __future__ import annotations

import random
import typing

from repro.core import SmartDsMiddleTier
from repro.experiments.common import ExperimentResult
from repro.middletier import HeartbeatMonitor, Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec, SLOSpec
from repro.sim import Simulator
from repro.sim.debug import FaultPlan
from repro.telemetry.metrics import ratio
from repro.telemetry.slo import SLOMonitor
from repro.telemetry.reporting import format_table
from repro.units import kib, msec, to_usec, usec
from repro.workloads import ClientDriver, WriteRequestFactory

#: FaultPlan seeds every cell is replayed across.
FAULT_SEEDS = (11, 23, 37)
#: Fault-intensity sweep: 0 = healthy baseline, 1 = full chaos.
INTENSITIES = (0.0, 0.5, 1.0)
#: HBM capacities for the degradation leg; the window fits but leaves
#: (almost) no headroom above the admission watermark at the low end.
HBM_SWEEP = (kib(512), kib(192), kib(160))


def build_fault_plan(seed: int, intensity: float) -> FaultPlan:
    """A replayable fault schedule scaled by `intensity` in [0, 1]."""
    plan = FaultPlan(seed=seed)
    if intensity <= 0.0:
        return plan
    rng = random.Random(seed * 7919 + int(intensity * 1000))
    for _ in range(max(1, round(3 * intensity))):
        plan.add_loss_burst(
            start=rng.uniform(usec(100), msec(2)),
            duration=rng.uniform(usec(30), usec(150)),
            probability=min(1.0, 0.4 + 0.6 * intensity),
        )
    plan.add_pcie_stall(
        start=rng.uniform(usec(200), msec(1)),
        duration=usec(60) * intensity,
        direction="both",
    )
    plan.add_engine_slowdown(
        start=rng.uniform(usec(200), msec(1)),
        duration=usec(200),
        factor=1.0 + 3.0 * intensity,
    )
    return plan


def _kill_cycle(
    sim: Simulator,
    testbed: Testbed,
    rng: random.Random,
    delay: float,
    downtime: float,
) -> typing.Generator:
    """Kill one healthy server after `delay`, recover it after `downtime`.

    Skips the kill when another server is already down, keeping the run
    inside the single-failure envelope the 3-replica scheme tolerates
    without data loss.
    """
    yield sim.timeout(delay)
    candidates = [s for s in testbed.storage_servers if not s.failed]
    if len(candidates) < len(testbed.storage_servers):
        return
    victim = rng.choice(candidates)
    victim.fail()
    yield sim.timeout(downtime)
    victim.recover()


def measure_cell(
    intensity: float,
    seed: int,
    n_writes: int,
    platform: PlatformSpec | None = None,
) -> dict:
    """One chaos cell: write phase, then a mixed read/write phase."""
    platform = platform or DEFAULT_PLATFORM
    plan = build_fault_plan(seed, intensity)
    rng = random.Random(seed * 104_729 + int(intensity * 1000) + 1)
    sim = Simulator()
    # Session-attached SLO monitor (before the tier is built, so the
    # tier adopts it): the healthy baseline must stay alert-free, and
    # chaos cells report how hard the availability budget burns.
    slo_monitor = SLOMonitor(
        sim,
        (SLOSpec(name="availability", signal="availability", op="any", target=0.99),),
        name=f"chaos-i{intensity:.1f}-s{seed}",
    ).attach()
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(sim, testbed, n_ports=1, fault_plan=plan)
    tier.retain_writes = True
    monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=seed),
        concurrency=8,
        warmup_fraction=0.0,
    )

    n_kills = round(2 * intensity)
    if n_kills:
        sim.process(
            _kill_cycle(
                sim, testbed, rng, delay=msec(rng.uniform(0.3, 1.0)), downtime=msec(2)
            )
        )
    sim.run(until=driver.run(n_writes))
    sim.run(until=sim.now + msec(5))  # let re-replication settle

    # Mixed phase: a second write wave concurrent with reads of every
    # block from the first wave, under another kill/recover cycle.
    if n_kills > 1:
        sim.process(
            _kill_cycle(
                sim, testbed, rng, delay=usec(rng.uniform(50, 200)), downtime=msec(2)
            )
        )
    writes = driver.run(n_writes)
    reads = driver.run_reads(range(n_writes), concurrency=8)
    both = sim.all_of([writes, reads])
    values = sim.run(until=both)
    read_result = values[reads]
    sim.run(until=sim.now + msec(5))  # drain recovery timers
    monitor.stop()
    write_result = driver.result()

    total_keys = len(tier._block_locations)
    durable = 0
    for (chunk_id, block_id), addresses in tier._block_locations.items():
        for address in addresses:
            server = testbed.server(address)
            if not server.failed and server.store.latest(chunk_id, block_id) is not None:
                durable += 1
                break
    n_reads = read_result.requests
    served = tier.requests_completed.value
    return {
        "intensity": intensity,
        "seed": seed,
        "plan": plan.describe(),
        "durability": ratio(durable, total_keys),
        "read_availability": 1.0 - ratio(tier.reads_unavailable.value, n_reads),
        "write_p99_us": to_usec(write_result.latency.summary()["p99"]),
        "read_p99_us": to_usec(read_result.latency.summary()["p99"]),
        "write_failovers": tier.failovers.value,
        "read_failovers": tier.read_failovers.value,
        "reads_unavailable": tier.reads_unavailable.value,
        "degraded_fraction": ratio(
            tier.requests_degraded.value + tier.reads_degraded.value, served
        ),
        "failures_detected": monitor.failures_detected.value,
        "recoveries_detected": monitor.recoveries_detected.value,
        "slo_alerts": len(slo_monitor.alerts),
        "slo_fast_burn": len(slo_monitor.alerts_for("availability", "fast_burn")),
        "slo_budget_remaining": slo_monitor.budget_remaining("availability"),
        "slo_met": slo_monitor.verdict()["availability"]["met"],
    }


def measure_degradation(
    hbm_capacity: int,
    n_writes: int,
    platform: PlatformSpec | None = None,
    seed: int = 5,
) -> dict:
    """A write burst against a shrunk HBM: degrade, never crash."""
    platform = platform or DEFAULT_PLATFORM
    sim = Simulator()
    testbed = Testbed(sim, platform, n_storage_servers=5)
    tier = SmartDsMiddleTier(
        sim, testbed, n_ports=1, recv_window=32, hbm_capacity=hbm_capacity
    )
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=seed),
        concurrency=8,
        warmup_fraction=0.0,
    )
    result = sim.run(until=driver.run(n_writes))
    allocator = tier.device.allocator
    return {
        "hbm_kib": hbm_capacity // 1024,
        "requests": result.requests,
        "degraded": tier.requests_degraded.value,
        "deferred": allocator.alloc_deferred.value,
        "rejected": allocator.alloc_rejected.value,
        "host_path": tier.device.host_path_fallbacks.value,
        "peak_occupancy": allocator.occupancy.peak,
        "p99_us": to_usec(result.latency.summary()["p99"]),
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Chaos sweep + HBM degradation curve."""
    platform = platform or DEFAULT_PLATFORM
    n_writes = 96 if quick else 240
    intensities = (0.0, 1.0) if quick else INTENSITIES

    cells = []
    rows = []
    for intensity in intensities:
        for seed in FAULT_SEEDS:
            cell = measure_cell(intensity, seed, n_writes, platform)
            cells.append(cell)
            rows.append(
                [
                    f"{intensity:.1f}",
                    seed,
                    f"{cell['durability']:.0%}",
                    f"{cell['read_availability']:.1%}",
                    round(cell["write_p99_us"], 1),
                    round(cell["read_p99_us"], 1),
                    cell["write_failovers"],
                    cell["read_failovers"],
                    f"{cell['degraded_fraction']:.1%}",
                    cell["slo_alerts"],
                ]
            )
    chaos_table = format_table(
        [
            "intensity",
            "seed",
            "durability",
            "read avail",
            "write p99 (us)",
            "read p99 (us)",
            "w-failovers",
            "r-failovers",
            "degraded",
            "SLO alerts",
        ],
        rows,
    )

    degradation = []
    deg_rows = []
    for capacity in HBM_SWEEP:
        point = measure_degradation(capacity, n_writes, platform)
        degradation.append(point)
        deg_rows.append(
            [
                point["hbm_kib"],
                point["requests"],
                point["degraded"],
                point["deferred"],
                point["rejected"],
                point["host_path"],
                round(point["p99_us"], 1),
            ]
        )
    deg_table = format_table(
        [
            "HBM (KiB)",
            "requests",
            "degraded",
            "deferred",
            "rejected",
            "host-path",
            "p99 (us)",
        ],
        deg_rows,
    )

    worst_durability = min(cell["durability"] for cell in cells)
    healthy_quiet = all(
        cell["slo_alerts"] == 0 for cell in cells if cell["intensity"] == 0.0
    )
    chaos_alerts = sum(
        cell["slo_alerts"] for cell in cells if cell["intensity"] > 0.0
    )
    text = (
        f"{chaos_table}\n\n"
        f"acked-write durability across all cells: {worst_durability:.0%}\n"
        f"availability SLO quiet in every healthy cell: {healthy_quiet}; "
        f"alerts across chaos cells: {chaos_alerts}\n\n"
        f"graceful degradation under shrunk HBM (write burst, no crashes):\n{deg_table}"
    )
    return ExperimentResult(
        experiment_id="ext_chaos",
        title="Failure recovery: durability, availability, degradation (§2.2.3)",
        text=text,
        data={
            "cells": cells,
            "degradation": degradation,
            "healthy_cells_quiet": healthy_quiet,
            "chaos_cell_alerts": chaos_alerts,
        },
    )

"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact; each exposes ``run(quick=False) -> ExperimentResult``:

- :mod:`repro.experiments.table1_pcie` -- Table 1, PCIe latency under load
- :mod:`repro.experiments.table3_resources` -- Table 3, FPGA resources
- :mod:`repro.experiments.fig4_memory_interference` -- Fig. 4, RDMA vs MLC
- :mod:`repro.experiments.fig7_throughput_latency` -- Fig. 7 a-d
- :mod:`repro.experiments.fig8_bandwidth` -- Fig. 8 a-b
- :mod:`repro.experiments.fig9_interference` -- Fig. 9 a-d
- :mod:`repro.experiments.fig10_multiport` -- Fig. 10 a-c
- :mod:`repro.experiments.sec55_multi_nic` -- §5.5, multi-SmartNIC scale-up

``python -m repro.experiments.runner`` (or the ``smartds-repro`` script)
runs them from the command line; ``EXPERIMENTS.md`` records paper-vs-
measured for each.
"""

from repro.experiments.common import (
    ExperimentResult,
    Measurement,
    build_tier,
    measure_design,
)

__all__ = ["ExperimentResult", "Measurement", "build_tier", "measure_design"]

"""Shared experiment machinery: tier construction, measurement, results."""

from __future__ import annotations

import dataclasses
import typing

from repro.core import SmartDsMiddleTier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import (
    AcceleratorMiddleTier,
    BlueField2MiddleTier,
    CpuOnlyMiddleTier,
    NaiveFpgaMiddleTier,
    Testbed,
)
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.units import to_gbps, to_usec
from repro.workloads import ClientDriver, MlcInjector, WriteRequestFactory

#: Designs an experiment can name (plus "SmartDS-<N>" for any port count).
DESIGN_NAMES = ("CPU-only", "Acc", "Acc w/o DDIO", "BF2", "FPGA-only", "SmartDS-1")


def build_tier(
    sim: "Simulator",
    testbed: Testbed,
    design: str,
    n_workers: int,
    memory: MemorySubsystem,
) -> typing.Any:
    """Construct a middle tier by design name ("SmartDS-<N>" for N ports)."""
    if design.startswith("SmartDS-"):
        n_ports = int(design.split("-", 1)[1])
        return SmartDsMiddleTier(
            sim, testbed, n_ports=n_ports, memory=memory, n_workers=n_workers or None
        )
    if design == "CPU-only":
        return CpuOnlyMiddleTier(sim, testbed, n_workers=n_workers, memory=memory)
    if design == "Acc":
        return AcceleratorMiddleTier(sim, testbed, n_workers=n_workers, memory=memory)
    if design == "Acc w/o DDIO":
        return AcceleratorMiddleTier(
            sim, testbed, n_workers=n_workers, memory=memory, ddio_enabled=False
        )
    if design == "BF2":
        return BlueField2MiddleTier(sim, testbed, n_workers=n_workers)
    if design == "FPGA-only":
        return NaiveFpgaMiddleTier(sim, testbed, n_workers=n_workers)
    raise ValueError(f"unknown design {design!r}; have {DESIGN_NAMES} or SmartDS-<N>")


@dataclasses.dataclass
class ExperimentResult:
    """Output of one experiment run: data plus ready-to-print text."""

    experiment_id: str
    title: str
    text: str
    data: dict

    def render(self) -> str:
        """The experiment's formatted report."""
        header = f"== {self.experiment_id}: {self.title} =="
        return f"{header}\n{self.text}"


@dataclasses.dataclass
class Measurement:
    """One middle-tier operating point."""

    design: str
    n_workers: int
    throughput_gbps: float
    avg_latency_us: float
    p99_latency_us: float
    p999_latency_us: float
    memory_read_gbps: float
    memory_write_gbps: float
    pcie_gbps: dict[str, float]
    mlc_gbps: float = 0.0


def _tier_pcie_meters(tier: typing.Any, window: float | None = None) -> dict[str, float]:
    """Per-device PCIe bandwidth (Gb/s, both directions summed).

    Pass the run's measurement `window` so a meter with a single
    recorded transfer still reports a rate (its implicit first-to-last
    span is zero).
    """
    meters: dict[str, float] = {}
    nic = getattr(tier, "nic", None)
    if nic is not None:
        meters["nic-h2d"] = to_gbps(nic.pcie.h2d_meter.rate(window))
        meters["nic-d2h"] = to_gbps(nic.pcie.d2h_meter.rate(window))
    fpga_pcie = getattr(tier, "fpga_pcie", None)
    if fpga_pcie is not None:
        meters["fpga-h2d"] = to_gbps(fpga_pcie.h2d_meter.rate(window))
        meters["fpga-d2h"] = to_gbps(fpga_pcie.d2h_meter.rate(window))
    device = getattr(tier, "device", None)
    if device is not None and hasattr(device, "pcie"):
        meters["smartds-h2d"] = to_gbps(device.pcie.h2d_meter.rate(window))
        meters["smartds-d2h"] = to_gbps(device.pcie.d2h_meter.rate(window))
    return meters


def measure_design(
    design: str,
    n_workers: int,
    n_requests: int = 4000,
    concurrency: int | None = None,
    n_ports: int = 1,
    platform: PlatformSpec | None = None,
    mlc_threads: int = 0,
    mlc_delay: float = 0.0,
    seed: int = 1,
) -> Measurement:
    """Drive one design to a steady state and read the paper's metrics.

    When `mlc_threads` > 0, an MLC injector shares the tier's host
    memory subsystem (the §5.3 methodology). `n_ports` > 1 selects the
    SmartDS multi-port configuration with one client per port.
    """
    platform = platform or DEFAULT_PLATFORM
    if design.startswith("SmartDS-"):
        n_ports = int(design.split("-", 1)[1])
    sim = Simulator()
    testbed = Testbed(sim, platform, n_storage_servers=max(3, 2 * n_ports))
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = build_tier(sim, testbed, design, n_workers, memory)
    ports = getattr(tier, "n_ports", 1)
    concurrency = concurrency or 64
    drivers = [
        ClientDriver(
            sim,
            tier,
            WriteRequestFactory(platform, vm_id=f"vm{p}", seed=seed + p),
            concurrency=concurrency,
            port_index=p,
        )
        for p in range(ports)
    ]

    mlc = None
    if mlc_threads:
        mlc = MlcInjector(sim, memory, n_threads=mlc_threads, delay=mlc_delay, chunk=64 * 1024)
        mlc.start()

    runs = [driver.run(max(n_requests // ports, concurrency)) for driver in drivers]
    sim.run(until=sim.all_of(runs))
    if mlc is not None:
        mlc.stop()

    results = [driver.result() for driver in drivers]
    throughput = sum(result.throughput for result in results)
    # Pool latency samples across ports.
    latencies = [lat for result in results for lat in result.latency.samples]
    latencies.sort()

    def pct(fraction: float) -> float:
        index = max(0, min(len(latencies) - 1, int(fraction * len(latencies)) - 1))
        return to_usec(latencies[index])

    return Measurement(
        design=design,
        n_workers=n_workers,
        throughput_gbps=to_gbps(throughput),
        avg_latency_us=to_usec(sum(latencies) / len(latencies)),
        p99_latency_us=pct(0.99),
        p999_latency_us=pct(0.999),
        memory_read_gbps=to_gbps(memory.read_meter.rate(sim.now)),
        memory_write_gbps=to_gbps(memory.write_meter.rate(sim.now)),
        pcie_gbps=_tier_pcie_meters(tier, window=sim.now),
        mlc_gbps=to_gbps(mlc.meter.rate(sim.now)) if mlc is not None else 0.0,
    )

"""Extension: the real maintenance services as the interferer.

§5.3 uses Intel MLC as a *stand-in* for the middle tier's own
maintenance services ("despite serving I/O requests from VMs, each
middle-tier server runs maintenance services ... result in performance
interference"). This extension closes the loop by running the real
LSM-compaction service (§2.2.3) — which reads retained writes out of
host memory and burns merge CPU — beside the real-time write path.

Honest findings: (1) one compactor bounded by the run's own write
volume is a *mild* memory-side interferer at benchmark scale (its scans
move MBs, not GBs) — the paper's MLC delay sweep (Fig. 9) is the right
tool for bounding the aggregate pressure of every co-resident service;
(2) the interference compaction *does* cause is instructive: its
re-replication traffic competes for the egress port, which is the
resource SmartDS is actually bound by, while on the CPU-only tier the
same service shows up as memory pressure and tail-latency growth.
AAMS isolates the host memory subsystem, not the wire.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_tier
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import LsmCompactionService, Testbed
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import gBps, to_gbps, to_usec, usec
from repro.workloads import ClientDriver, WriteRequestFactory

DESIGNS = {"CPU-only": 32, "SmartDS-1": 2}


def measure(
    design: str,
    n_workers: int,
    with_compaction: bool,
    n_requests: int,
    platform: PlatformSpec | None = None,
) -> dict:
    """One operating point, with or without the compaction service."""
    platform = platform or DEFAULT_PLATFORM
    sim = Simulator()
    testbed = Testbed(sim, platform)
    memory = MemorySubsystem.for_host(sim, platform.host)
    tier = build_tier(sim, testbed, design, n_workers, memory)
    service = None
    if with_compaction:
        # An aggressive compactor: chunks ripen quickly and the scanner
        # never sleeps long.
        service = LsmCompactionService(
            sim, tier, threshold=16, scan_interval=usec(50), merge_rate=gBps(2)
        )
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(platform, seed=1),
        concurrency=min(512, 8 * n_workers) if design == "CPU-only" else 256,
    )
    result = sim.run(until=driver.run(n_requests))
    if service is not None:
        service.stop()
    summary = result.latency.summary()
    return {
        "throughput_gbps": to_gbps(result.throughput),
        "avg_us": to_usec(summary["avg"]),
        "p99_us": to_usec(summary["p99"]),
        "compactions": service.compactions.value if service else 0,
        "bytes_reclaimed": service.bytes_reclaimed.value if service else 0,
    }


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Write-serving with and without the real compaction service."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1500 if quick else 5000
    rows = []
    data: dict[str, dict] = {}
    for design, workers in DESIGNS.items():
        clean = measure(design, workers, False, n_requests, platform)
        busy = measure(design, workers, True, n_requests, platform)
        retained = busy["throughput_gbps"] / clean["throughput_gbps"]
        data[design] = {"clean": clean, "busy": busy, "retained": retained}
        rows.append(
            [
                design,
                round(clean["throughput_gbps"], 1),
                round(busy["throughput_gbps"], 1),
                f"{retained:.0%}",
                round(clean["p99_us"], 1),
                round(busy["p99_us"], 1),
                busy["compactions"],
            ]
        )
    text = format_table(
        [
            "design",
            "tput alone (Gb/s)",
            "tput w/ compaction",
            "retained",
            "p99 alone (us)",
            "p99 w/ compaction",
            "compactions",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="ext-maint",
        title="Real maintenance services as the interferer (§2.2.3 + §5.3)",
        text=text,
        data=data,
    )

"""Table 1: PCIe latency under different pressure.

The paper's microbenchmark uses an FPGA's DMA to read from / write to
host memory while the PCIe link is under-loaded vs heavily loaded, and
reports H2D (DMA read) and D2H (DMA write) latency. We reproduce the
methodology: background DMA streams saturate both directions, then a
probe measures DMA latency.

Paper's rows: under-loaded 1.4 / 1.4 us; heavily loaded 11.3 / 6.6 us
(reads suffer more because each completion chunk re-queues behind the
background stream).
"""

from __future__ import annotations

import typing

from repro.experiments.common import ExperimentResult
from repro.hostmodel.pcie import PcieLink
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.sim import Simulator
from repro.telemetry.reporting import format_table
from repro.units import kib, to_usec, usec


def _measure(
    platform: PlatformSpec,
    loaded: bool,
    probes: int,
    background_streams: int = 4,
    background_chunk: int = kib(32),
) -> tuple[float, float]:
    """Mean (H2D, D2H) DMA latency in microseconds."""
    sim = Simulator()
    link = PcieLink(sim, platform.host)
    h2d_samples: list[float] = []
    d2h_samples: list[float] = []

    def background_reader() -> typing.Generator:
        while True:
            yield link.dma_read(background_chunk)

    def background_writer() -> typing.Generator:
        while True:
            yield link.dma_write(background_chunk)

    def prober() -> typing.Generator:
        yield sim.timeout(usec(100))  # let the background reach steady state
        for _ in range(probes):
            start = sim.now
            yield link.dma_read(kib(4))
            h2d_samples.append(sim.now - start)
            start = sim.now
            yield link.dma_write(kib(4))
            d2h_samples.append(sim.now - start)
            yield sim.timeout(usec(5))

    if loaded:
        for _ in range(background_streams):
            sim.process(background_reader())
            sim.process(background_writer())
    done = sim.process(prober())
    sim.run(until=done)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - tiny local helper
    return to_usec(mean(h2d_samples)), to_usec(mean(d2h_samples))


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Table 1."""
    platform = platform or DEFAULT_PLATFORM
    probes = 20 if quick else 200
    idle_h2d, idle_d2h = _measure(platform, loaded=False, probes=probes)
    busy_h2d, busy_d2h = _measure(platform, loaded=True, probes=probes)
    rows = [
        ["Under Loaded", round(idle_h2d, 1), round(idle_d2h, 1)],
        ["Heavily Loaded", round(busy_h2d, 1), round(busy_d2h, 1)],
    ]
    text = format_table(["", "H2D Latency (us)", "D2H Latency (us)"], rows)
    return ExperimentResult(
        experiment_id="table1",
        title="PCIe latency under different pressure",
        text=text,
        data={
            "under_loaded": {"h2d_us": idle_h2d, "d2h_us": idle_d2h},
            "heavily_loaded": {"h2d_us": busy_h2d, "d2h_us": busy_d2h},
            "paper": {
                "under_loaded": {"h2d_us": 1.4, "d2h_us": 1.4},
                "heavily_loaded": {"h2d_us": 11.3, "d2h_us": 6.6},
            },
        },
    )

"""Figure 9: performance under different memory pressure.

The paper's §5.3 methodology: 16 dedicated cores run Intel MLC
injecting memory requests at a swept delay while the remaining cores
serve write requests. CPU-only and Acc lose throughput and gain
latency as pressure rises; SmartDS-1's performance "hardly changes",
and the MLC itself achieves *more* bandwidth next to SmartDS — i.e.
performance isolation without partitioning the memory subsystem.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Measurement, measure_design
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.reporting import format_table
from repro.units import usec

#: MLC inter-injection delays swept (0 = maximum pressure).
DELAY_SWEEP = (float("inf"), usec(50), usec(20), usec(10), usec(5), usec(1), 0.0)
QUICK_DELAYS = (float("inf"), usec(10), 0.0)

#: 16 cores run MLC; the tier gets the remaining workers.
MLC_THREADS = 16
WORKERS = {"CPU-only": 32, "Acc": 2, "SmartDS-1": 2}


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Fig. 9 a-d."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 5000
    delays = QUICK_DELAYS if quick else DELAY_SWEEP
    measurements: dict[str, list[tuple[float, Measurement]]] = {}
    rows = []
    for design, workers in WORKERS.items():
        measurements[design] = []
        for delay in delays:
            mlc_threads = 0 if delay == float("inf") else MLC_THREADS
            m = measure_design(
                design,
                n_workers=workers,
                n_requests=n_requests,
                concurrency=min(512, 8 * workers) if design == "CPU-only" else 256,
                platform=platform,
                mlc_threads=mlc_threads,
                mlc_delay=0.0 if delay == float("inf") else delay,
            )
            measurements[design].append((delay, m))
            label = "off" if delay == float("inf") else f"{delay * 1e6:.0f} us"
            rows.append(
                [
                    design,
                    label,
                    round(m.throughput_gbps, 1),
                    round(m.avg_latency_us, 1),
                    round(m.p99_latency_us, 1),
                    round(m.p999_latency_us, 1),
                    round(m.mlc_gbps / 8, 1),  # GB/s
                ]
            )
    text = format_table(
        [
            "design",
            "MLC delay",
            "tput (Gb/s)",
            "avg (us)",
            "p99 (us)",
            "p999 (us)",
            "MLC (GB/s)",
        ],
        rows,
    )

    def degradation(design: str) -> float:
        series = measurements[design]
        baseline = series[0][1].throughput_gbps
        worst = min(m.throughput_gbps for _, m in series)
        return worst / baseline

    return ExperimentResult(
        experiment_id="fig9",
        title="Performance under different memory pressure",
        text=text,
        data={
            "measurements": measurements,
            "retained_fraction": {d: degradation(d) for d in WORKERS},
            "paper": {"smartds_hardly_changes": True},
        },
    )

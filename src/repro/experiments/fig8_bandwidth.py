"""Figure 8: host memory and CPU PCIe link bandwidth per approach.

Runs the write-serving workload and meters (a) host DRAM read/write
bandwidth and (b) per-PCIe-device bandwidth, for CPU-only, Acc with and
without DDIO, and SmartDS-1. The paper's observations to reproduce:

- CPU-only consumes balanced, growing memory read and write bandwidth;
- Acc w/ DDIO consumes growing memory *write* bandwidth but almost no
  read bandwidth; disabling DDIO makes reads reappear;
- Acc doubles PCIe traffic (NIC plus FPGA both near line rate);
- SmartDS-1 consumes almost no host memory bandwidth and only ~2 % of
  a PCIe link (headers and completions).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Measurement, measure_design
from repro.params import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.reporting import format_table

SWEEP = {
    "CPU-only": (8, 24, 48),
    "Acc": (1, 2, 4),
    "Acc w/o DDIO": (1, 2, 4),
    "SmartDS-1": (1, 2),
}

QUICK_SWEEP = {
    "CPU-only": (8, 48),
    "Acc": (2,),
    "Acc w/o DDIO": (2,),
    "SmartDS-1": (2,),
}


def run(quick: bool = False, platform: PlatformSpec | None = None) -> ExperimentResult:
    """Regenerate Fig. 8 a-b."""
    platform = platform or DEFAULT_PLATFORM
    n_requests = 1200 if quick else 6000
    plan = QUICK_SWEEP if quick else SWEEP
    measurements: dict[str, list[Measurement]] = {}
    rows = []
    for design, cores in plan.items():
        measurements[design] = []
        for n in cores:
            concurrency = min(512, max(16, 6 * n)) if design == "CPU-only" else 256
            m = measure_design(
                design,
                n_workers=n,
                n_requests=n_requests,
                concurrency=concurrency,
                platform=platform,
            )
            measurements[design].append(m)
            pcie_total = sum(m.pcie_gbps.values())
            rows.append(
                [
                    design,
                    n,
                    round(m.throughput_gbps, 1),
                    round(m.memory_read_gbps, 1),
                    round(m.memory_write_gbps, 1),
                    round(pcie_total, 1),
                ]
            )
    text = format_table(
        [
            "design",
            "cores",
            "tput (Gb/s)",
            "mem read (Gb/s)",
            "mem write (Gb/s)",
            "PCIe total (Gb/s)",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Host memory and CPU PCIe link bandwidth usage",
        text=text,
        data={
            "measurements": measurements,
            "paper": {
                "acc_ddio_reads_vanish": True,
                "smartds_memory_near_zero": True,
                "smartds_pcie_fraction_of_link": 0.02,
            },
        },
    )

"""A conventional host NIC (ConnectX-5-like) with its DMA datapath.

Every message a CPU-based middle tier receives crosses PCIe into host
memory, and every message it sends crosses back (Fig. 1a). The
:class:`HostDmaDatapath` charges those costs on the shared
:class:`~repro.hostmodel.pcie.PcieLink` and
:class:`~repro.hostmodel.memory.MemorySubsystem`, consulting the
:class:`~repro.hostmodel.cache.DdioLlc` to decide whether DRAM is
touched.

Two working-set parameters steer the DDIO decision independently:

- `write_working_set` — the DMA ring the NIC writes into. The middle
  tier's ~400 MB intermediate buffer (§3.2) never fits: arriving data
  spills to DRAM.
- `read_working_set` — how far back the NIC (or another device) reads
  data that was recently produced. A tight accelerator pipeline reads
  lines still resident in the DDIO ways (the paper's "Acc w/ DDIO"
  behaviour); a CPU-only tier reads long-evicted buffers.
"""

from __future__ import annotations

import typing

from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.memory import MemorySubsystem
from repro.hostmodel.pcie import PcieLink
from repro.net.link import NetworkPort
from repro.net.message import Message
from repro.net.roce import Datapath, QueuePair, RoceEndpoint
from repro.sim.resources import Resource
from repro.params import HostSpec, NetworkSpec, WorkloadSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class HostDmaDatapath(Datapath):
    """NIC <-> host-memory DMA costs for a conventional NIC.

    The NIC's DMA engine has a bounded number of in-flight transactions
    (`dma_slots`). When host memory is congested, each transaction holds
    its slot longer, the pipeline drains, and the NIC stalls — the
    mechanism behind both Fig. 4's RDMA collapse and Fig. 9's
    degradation of the host-memory-based designs.
    """

    def __init__(
        self,
        pcie: PcieLink,
        memory: MemorySubsystem,
        llc: DdioLlc,
        write_working_set: int,
        read_working_set: int,
        dma_slots: int = 32,
    ) -> None:
        self.pcie = pcie
        self.memory = memory
        self.llc = llc
        self.write_working_set = write_working_set
        self.read_working_set = read_working_set
        self._dma = Resource(pcie.sim, capacity=dma_slots, name="nic.dma")

    def ingress(self, message: Message, qp: QueuePair) -> typing.Generator:
        """NIC DMA-writes the arriving message into the host buffer."""
        slot = self._dma.request()
        yield slot
        try:
            yield self.pcie.dma_write(message.size)
            traffic = self.llc.dma_write(message.size, self.write_working_set)
            if traffic.dram_write:
                yield self.memory.write(traffic.dram_write)
        finally:
            self._dma.release(slot)
        return False

    def egress(self, message: Message, qp: QueuePair) -> typing.Generator:
        """NIC DMA-reads the departing message from the host buffer."""
        slot = self._dma.request()
        yield slot
        try:
            traffic = self.llc.dma_read(message.size, self.read_working_set)
            if traffic.dram_read:
                yield self.memory.read(traffic.dram_read)
            yield self.pcie.dma_read(message.size)
        finally:
            self._dma.release(slot)
        return None


class HostNic:
    """One conventional NIC plugged into a host: port + endpoint + datapath."""

    def __init__(
        self,
        sim: "Simulator",
        address: str,
        memory: MemorySubsystem,
        llc: DdioLlc,
        host_spec: HostSpec | None = None,
        network_spec: NetworkSpec | None = None,
        workload_spec: WorkloadSpec | None = None,
        pcie: PcieLink | None = None,
        write_working_set: int | None = None,
        read_working_set: int | None = None,
    ) -> None:
        host_spec = host_spec or HostSpec()
        network_spec = network_spec or NetworkSpec()
        workload_spec = workload_spec or WorkloadSpec()
        buffer_bytes = workload_spec.intermediate_buffer_bytes
        self.sim = sim
        self.port = NetworkPort(sim, rate=network_spec.port_rate, name=f"{address}.port")
        self.pcie = pcie or PcieLink(sim, host_spec, name=f"{address}.pcie")
        self.datapath = HostDmaDatapath(
            self.pcie,
            memory,
            llc,
            write_working_set=buffer_bytes if write_working_set is None else write_working_set,
            read_working_set=buffer_bytes if read_working_set is None else read_working_set,
        )
        self.endpoint = RoceEndpoint(
            sim, self.port, address, datapath=self.datapath, spec=network_spec
        )

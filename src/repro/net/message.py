"""Messages and payloads.

A :class:`Message` is one RDMA message: a small block-storage header
(the part SmartDS forwards to the host) plus an optional
:class:`Payload` (the part SmartDS keeps in device memory).

Payloads run in one of two modes, chosen per experiment:

- **functional** — `data` carries real bytes; compression really runs
  the pure-Python LZ4 codec, so output sizes are measured and blocks
  can be bit-compared end to end;
- **performance** — `data` is ``None`` and the compressed size is
  computed from `ratio`, the block's LZ4 compressibility (sampled from
  the corpus-calibrated distribution). This keeps large sweeps fast.

Both modes flow through the same simulation code paths.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.compression.lz4 import lz4_compress, lz4_decompress
from repro.compression.model import compressed_size

_request_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class Payload:
    """A data block travelling in a message."""

    size: int
    ratio: float = 1.0
    data: bytes | None = None
    is_compressed: bool = False
    original_size: int | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size {self.size}")
        if self.ratio <= 0:
            raise ValueError(f"compression ratio must be positive, got {self.ratio!r}")
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(f"size {self.size} disagrees with data length {len(self.data)}")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Payload":
        """A functional-mode payload carrying real bytes."""
        return cls(size=len(data), data=data)

    @classmethod
    def synthetic(cls, size: int, ratio: float) -> "Payload":
        """A performance-mode payload described only by size and ratio."""
        return cls(size=size, ratio=ratio)


def compress_payload(payload: Payload) -> Payload:
    """LZ4-compress a payload (really, or synthetically via its ratio)."""
    if payload.is_compressed:
        raise ValueError("payload is already compressed")
    if payload.data is not None:
        blob = lz4_compress(payload.data)
        return Payload(
            size=len(blob),
            ratio=payload.ratio,
            data=blob,
            is_compressed=True,
            original_size=payload.size,
        )
    return Payload(
        size=compressed_size(payload.size, payload.ratio),
        ratio=payload.ratio,
        is_compressed=True,
        original_size=payload.size,
    )


def decompress_payload(payload: Payload) -> Payload:
    """Invert :func:`compress_payload`."""
    if not payload.is_compressed:
        raise ValueError("payload is not compressed")
    if payload.data is not None:
        raw = lz4_decompress(payload.data)
        return Payload(size=len(raw), ratio=payload.ratio, data=raw)
    if payload.original_size is None:
        raise ValueError("synthetic compressed payload lost its original size")
    return Payload(size=payload.original_size, ratio=payload.ratio)


@dataclasses.dataclass
class Message:
    """One RDMA message: block-storage header + optional payload.

    `header` carries the parsed block-storage header fields the
    middle-tier software inspects (VM id, service type, block offset,
    segment id, latency sensitivity, ...).
    """

    kind: str
    src: str
    dst: str
    header_size: int = 64
    payload: Payload | None = None
    header: dict = dataclasses.field(default_factory=dict)
    request_id: int = dataclasses.field(default_factory=lambda: next(_request_ids))
    created_at: float | None = None
    #: Optional flow id for byte-conservation audits: transfers charged
    #: for this message are tagged with it (see repro.sim.debug.FlowLedger).
    flow: str | None = None
    #: Causal trace context (a repro.telemetry.spans.Span), or None when
    #: the request is untraced — the common case. Datapath stages open
    #: children off it; replies are not auto-propagated, call sites set
    #: it explicitly.
    span: typing.Any = None

    def __post_init__(self) -> None:
        if self.header_size < 0:
            raise ValueError(f"negative header size {self.header_size}")

    @property
    def size(self) -> int:
        """Total message bytes (header + payload)."""
        return self.header_size + (self.payload.size if self.payload else 0)

    @property
    def payload_size(self) -> int:
        """Payload bytes (0 for header-only messages like acks)."""
        return self.payload.size if self.payload else 0

    def reply(self, kind: str, payload: Payload | None = None, **header: typing.Any) -> "Message":
        """Build a response message addressed back to this message's sender."""
        return Message(
            kind=kind,
            src=self.dst,
            dst=self.src,
            header_size=self.header_size,
            payload=payload,
            header={**header, "in_reply_to": self.request_id},
        )

"""Datacenter fabric topology.

The paper's testbed is four servers behind one switch, but the
disaggregated architecture it models (Fig. 2) spans racks: compute
clusters, the middle tier, and storage clusters connected through a
spine. This module places endpoints in racks and derives per-connection
one-way latency from the number of switch hops, so experiments can
study rack-locality effects (e.g. replicas spread across racks for
fault tolerance cost extra spine hops).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.params import NetworkSpec
from repro.units import usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.roce import RoceEndpoint


@dataclasses.dataclass(frozen=True)
class FabricSpec:
    """Latency model of a two-tier (ToR + spine) Clos fabric."""

    tor_latency: float = usec(0.6)  # one traversal of a top-of-rack switch
    spine_latency: float = usec(0.9)  # one traversal of a spine switch
    cable_latency: float = usec(0.15)  # per hop propagation

    def one_way_latency(self, same_rack: bool) -> float:
        """One-way latency between two endpoints.

        Same rack: host - ToR - host (1 switch, 2 cables). Cross rack:
        host - ToR - spine - ToR - host (3 switches, 4 cables).
        """
        if same_rack:
            return self.tor_latency + 2 * self.cable_latency
        return 2 * self.tor_latency + self.spine_latency + 4 * self.cable_latency


class Fabric:
    """Tracks endpoint placement and hands out per-connection latencies."""

    def __init__(self, spec: FabricSpec | None = None) -> None:
        self.spec = spec or FabricSpec()
        self._racks: dict[str, str] = {}  # endpoint address -> rack name

    def place(self, endpoint: "RoceEndpoint | str", rack: str) -> None:
        """Put an endpoint (or address) in a rack."""
        address = endpoint if isinstance(endpoint, str) else endpoint.address
        self._racks[address] = rack

    def rack_of(self, endpoint: "RoceEndpoint | str") -> str:
        """The rack an endpoint was placed in."""
        address = endpoint if isinstance(endpoint, str) else endpoint.address
        if address not in self._racks:
            raise KeyError(f"{address!r} has not been placed in a rack")
        return self._racks[address]

    def latency_between(self, a: "RoceEndpoint | str", b: "RoceEndpoint | str") -> float:
        """One-way latency between two placed endpoints."""
        return self.spec.one_way_latency(self.rack_of(a) == self.rack_of(b))

    def network_spec_between(
        self, a: "RoceEndpoint | str", b: "RoceEndpoint | str", base: NetworkSpec | None = None
    ) -> NetworkSpec:
        """A :class:`NetworkSpec` whose switch latency matches the path.

        Hand this to the *connecting* endpoint so its queue pairs use
        the topology-derived latency.
        """
        base = base or NetworkSpec()
        return dataclasses.replace(base, switch_latency=self.latency_between(a, b))

"""RoCE-like reliable message transport between queue pairs.

Modeled on the FPGA RoCE stack the paper extends [18, 70]: endpoints own
queue pairs; ``send`` moves one whole RDMA message through the sender's
datapath and tx port, the fabric, and the receiver's rx port and
datapath, then lands it in the destination queue pair's receive buffer.
Delivery is reliable and in order per queue pair (the transport layer
guarantee §2.2.1 assumes).

The per-endpoint :class:`Datapath` hook is where architectures differ:
a plain host charges PCIe + DRAM on both directions; SmartDS's device
charges HBM and splits header from payload; client/storage endpoints
used as harness fixtures charge nothing.
"""

from __future__ import annotations

import random
import typing

from repro.net.link import NetworkPort
from repro.net.message import Message
from repro.params import NetworkSpec
from repro.sim.events import Event, SimulationError
from repro.sim.process import Process
from repro.sim.resources import Store
from repro.telemetry.metrics import Counter
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.debug import FaultPlan
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class Datapath:
    """Resource charges an endpoint pays on message ingress/egress.

    Subclasses override :meth:`ingress` / :meth:`egress` with generator
    methods that yield simulation events (DMA transfers, memory
    traffic). The base class charges nothing.

    :meth:`ingress` may *consume* the message by returning ``True`` —
    the transport then skips the receive buffer. SmartDS's Split module
    uses this: the message is steered into posted split descriptors
    instead of a software receive queue.
    """

    def ingress(self, message: Message, qp: "QueuePair") -> typing.Generator:
        """Charge local resources for an arriving message.

        Returns ``True`` to consume the message (skip buffer delivery).
        """
        return False
        yield  # pragma: no cover - makes this a generator function

    def egress(self, message: Message, qp: "QueuePair") -> typing.Generator:
        """Charge local resources for a departing message."""
        return
        yield  # pragma: no cover - makes this a generator function


#: A datapath that charges nothing (harness clients, storage fixtures).
NullDatapath = Datapath


class QueuePair:
    """One direction-pair of a reliable connection between two endpoints."""

    def __init__(self, endpoint: "RoceEndpoint", remote: "RoceEndpoint") -> None:
        self.endpoint = endpoint
        self.remote = remote
        self.sim = endpoint.sim
        self._recv_buffer = Store(self.sim, name=f"recv:{endpoint.address}<-{remote.address}")
        self._peer: QueuePair | None = None  # set by RoceEndpoint.connect
        # Reliable-connection sequencing: sender-side PSN counter and
        # receiver-side in-order gate (on the *peer* half).
        self._next_tx_seq = 0
        self._rx_next = 0
        self._rx_waiters: dict[int, Event] = {}
        # Per-kind send-process names, rendered once (one spawn per message).
        self._send_names: dict[str, str] = {}

    @property
    def peer(self) -> "QueuePair":
        """The remote half of this connection."""
        if self._peer is None:
            raise SimulationError("queue pair is not connected")
        return self._peer

    def send(self, message: Message) -> "Process":
        """Reliably deliver `message` to the remote endpoint.

        The returned process fires (like an RDMA send completion) once
        the message has fully landed in the remote receive buffer.
        """
        message.src = self.endpoint.address
        message.dst = self.remote.address
        if message.created_at is None:
            message.created_at = self.sim.now
        names = self._send_names
        name = names.get(message.kind)
        if name is None:
            name = names[message.kind] = f"send:{message.kind}"
        return Process(self.sim, self._send(message), name=name)

    def _send(self, message: Message) -> typing.Generator:
        spec = self.endpoint.spec
        wire_bytes = message.size + spec.roce_overhead_bytes
        sequence = self._next_tx_seq
        self._next_tx_seq += 1
        if message.span is not None:
            # Downstream stages (receive datapath, server handling) hang
            # off the transport span, keeping the trace tree causal.
            message.span = message.span.child(
                f"net.{message.kind}", src=message.src, dst=message.dst
            )
        lost_frames = 0
        yield from self.endpoint.datapath.egress(message, self)
        while True:
            yield self.endpoint.port.tx.transfer(wire_bytes, flow=message.flow)
            yield self.sim.timeout(spec.switch_latency)
            if self.endpoint._frame_lost():
                # Lossy fabric: the transport retransmits after a
                # time-out (go-back-N on a real RoCE RC connection).
                # The attempt's bytes crossed tx but will never cross
                # rx; book them under `<tx>.dropped` so conservation
                # holds exactly: tx == rx + tx.dropped.
                if message.flow is not None:
                    self.endpoint.port.tx.account("dropped", message.flow, wire_bytes)
                self.endpoint.retransmissions.add()
                lost_frames += 1
                yield self.sim.timeout(spec.retransmit_timeout)
                continue
            yield self.remote.port.rx.transfer(wire_bytes, flow=message.flow)
            break
        # Hold every consumed-message side effect behind the PSN order
        # gate: the receive datapath (and with it the Split module's
        # descriptor completion) must run strictly in PSN order, like the
        # processing pipeline of a real RC queue pair. Running ingress
        # before the gate let a retransmitted frame's successor complete
        # first and consume the wrong split descriptor.
        peer = self.peer
        if sequence != peer._rx_next:
            gate = self.sim.event(name=f"order:{sequence}")
            peer._rx_waiters[sequence] = gate
            yield gate
        consumed = yield from self.remote.datapath.ingress(message, peer)
        if message.span is not None:
            message.span.finish(
                "retried" if lost_frames else "ok",
                nbytes=wire_bytes,
                retransmits=lost_frames,
            )
        if not consumed:
            peer._recv_buffer.put(message)
        peer._rx_next += 1
        next_gate = peer._rx_waiters.pop(peer._rx_next, None)
        if next_gate is not None:
            next_gate.succeed()
        return message

    def recv(self) -> Event:
        """Next message from this connection; blocks while none is queued."""
        return self._recv_buffer.get()

    @property
    def pending(self) -> int:
        """Messages waiting in the receive buffer."""
        return len(self._recv_buffer)


class RoceEndpoint:
    """A network endpoint (one port) that owns queue pairs."""

    def __init__(
        self,
        sim: "Simulator",
        port: NetworkPort,
        address: str,
        datapath: Datapath | None = None,
        spec: NetworkSpec | None = None,
        loss_seed: int = 0,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.address = address
        self.datapath = datapath or Datapath()
        self.spec = spec or NetworkSpec()
        self.queue_pairs: list[QueuePair] = []
        self.retransmissions = Counter(f"{address}.retransmissions")
        registry = registry_for(sim)
        if registry is not None:
            registry.register_instance(self.retransmissions, "net.retransmissions", address=address)
        self._loss_rng = random.Random(loss_seed) if self.spec.loss_rate > 0 else None
        #: Deterministic fault schedule (repro.sim.debug.FaultPlan);
        #: loss bursts here compose with the spec's steady loss_rate.
        self.fault_plan = fault_plan

    def _frame_lost(self) -> bool:
        """Whether this transmission attempt is dropped by the fabric."""
        if self.fault_plan is not None and self.fault_plan.frame_lost(self.sim.now):
            return True
        if self._loss_rng is None:
            return False
        return self._loss_rng.random() < self.spec.loss_rate

    def connect(self, remote: "RoceEndpoint") -> QueuePair:
        """Create a connected queue pair; returns the local half.

        The remote half is reachable as ``local.peer`` — hand it to the
        remote side's logic so it can ``recv`` and reply.
        """
        if remote.sim is not self.sim:
            raise SimulationError("endpoints must share a simulator")
        local = QueuePair(self, remote)
        peer = QueuePair(remote, self)
        local._peer = peer
        peer._peer = local
        self.queue_pairs.append(local)
        remote.queue_pairs.append(peer)
        return local

    def __repr__(self) -> str:
        return f"<RoceEndpoint {self.address!r} qps={len(self.queue_pairs)}>"

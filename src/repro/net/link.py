"""Full-duplex network ports.

A :class:`NetworkPort` is one 100 GbE port: independent transmit and
receive directions, each a FIFO bandwidth server, with per-direction
byte meters. Serialization happens at the sender's tx pipe and again at
the receiver's rx pipe (store-and-forward through the fabric), so a
congested receiver back-pressures all of its senders.
"""

from __future__ import annotations

import typing

from repro.sim.bandwidth import BandwidthServer
from repro.telemetry.metrics import BandwidthMeter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class NetworkPort:
    """One full-duplex network port with metered tx/rx directions."""

    def __init__(self, sim: "Simulator", rate: float, name: str = "port") -> None:
        self.sim = sim
        self.name = name
        self.rate = rate
        self.tx = BandwidthServer(sim, rate=rate, name=f"{name}.tx")
        self.rx = BandwidthServer(sim, rate=rate, name=f"{name}.rx")
        self.tx_meter = BandwidthMeter(f"{name}.tx")
        self.rx_meter = BandwidthMeter(f"{name}.rx")
        self.tx.attach_meter(self.tx_meter)
        self.rx.attach_meter(self.rx_meter)

    def attach_ledger(self, ledger: typing.Any) -> None:
        """Attach a byte-conservation ledger to both directions."""
        self.tx.attach_ledger(ledger)
        self.rx.attach_ledger(ledger)

    def __repr__(self) -> str:
        return f"<NetworkPort {self.name!r} rate={self.rate:g} B/s>"

"""Network substrate: messages, ports, and a RoCE-like reliable transport.

The disaggregated block storage system of the paper speaks RDMA (RoCE)
between compute servers, the middle tier, and storage servers. This
package models full-duplex 100 GbE ports as paired bandwidth servers and
delivers whole RDMA messages reliably between queue pairs, with
pluggable per-endpoint datapaths so hosts can charge PCIe/DRAM costs and
SmartNICs can charge device-memory costs on ingress/egress.
"""

from repro.net.link import NetworkPort
from repro.net.message import Message, Payload, compress_payload, decompress_payload
from repro.net.roce import Datapath, NullDatapath, QueuePair, RoceEndpoint

__all__ = [
    "Datapath",
    "Message",
    "NetworkPort",
    "NullDatapath",
    "Payload",
    "QueuePair",
    "RoceEndpoint",
    "compress_payload",
    "decompress_payload",
]

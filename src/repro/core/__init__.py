"""SmartDS: the paper's contribution.

- :mod:`repro.core.device` -- the VCU128-based SmartDS card: HBM, PCIe,
  and one extended RoCE instance per networking port;
- :mod:`repro.core.aams` -- the application-aware message split: Split
  and Assemble modules with their descriptor tables (§4.1);
- :mod:`repro.core.engines` -- the offloaded hardware engines (LZ4);
- :mod:`repro.core.api` -- the RDMA-like high-level API of Table 2
  (`host_alloc`, `dev_alloc`, `open_roce_instance`, `dev_mixed_recv`,
  `dev_mixed_send`, `dev_func`, `poll`);
- :mod:`repro.core.server` -- the SmartDS middle-tier server built on
  that API (the production version of Listing 1);
- :mod:`repro.core.resources` -- the FPGA resource model of Table 3.
"""

from repro.core.api import SmartDsApi
from repro.core.device import DeviceBuffer, SmartDsDevice
from repro.core.resources import FpgaResources, design_resources
from repro.core.server import SmartDsMiddleTier

__all__ = [
    "DeviceBuffer",
    "FpgaResources",
    "SmartDsApi",
    "SmartDsDevice",
    "SmartDsMiddleTier",
    "design_resources",
]

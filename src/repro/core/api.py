"""The SmartDS high-level API (Table 2).

Programming with SmartDS looks like RDMA verbs plus three extras: mixed
recv/send (the AAMS split), and ``dev_func`` (invoke a hardware
engine). Listing 1 of the paper, transcribed onto this API, is the
``examples/quickstart.py`` of this repository; the production middle
tier (:mod:`repro.core.server`) uses the same entry points.

All ``dev_*`` calls are asynchronous and return a
:class:`CompletionEvent`; ``poll`` suspends the calling process until
the completion arrives, exactly like Listing 1's ``poll(e)``.
"""

from __future__ import annotations

import typing

from repro.core.aams import SplitCompletion, SplitDescriptor
from repro.core.device import DeviceBuffer, HostBuffer, SmartDsDevice
from repro.core.engines import HardwareEngine
from repro.net.roce import QueuePair, RoceEndpoint

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.message import Message
    from repro.sim.events import Event


class CompletionEvent:
    """Asynchronous completion handle returned by the ``dev_*`` calls.

    After ``poll`` returns, :attr:`size` holds the byte count the
    operation produced (received payload size for recvs, result size
    for engine invocations) — Listing 1's ``e.size``.
    """

    def __init__(self, event: "Event") -> None:
        self.event = event

    @property
    def completed(self) -> bool:
        """True once the operation has finished."""
        return self.event.processed

    @property
    def size(self) -> int:
        """Bytes produced by the operation (valid after completion)."""
        value = self.event.value
        if isinstance(value, SplitCompletion):
            return value.size
        if hasattr(value, "size"):
            return value.size
        if hasattr(value, "payload_size"):
            return value.payload_size
        raise AttributeError(f"completion value {value!r} carries no size")

    @property
    def message(self) -> "Message":
        """The received message (mixed-recv completions only)."""
        value = self.event.value
        if isinstance(value, SplitCompletion):
            return value.message
        raise AttributeError("this completion does not carry a message")


class RoceInstanceContext:
    """Context of one RoCE instance, from ``open_roce_instance``."""

    def __init__(self, api: "SmartDsApi", index: int) -> None:
        self.api = api
        self.index = index
        self._instance = api.device.instance(index)

    @property
    def endpoint(self) -> RoceEndpoint:
        """The instance's network endpoint (for inbound connections)."""
        return self._instance.endpoint

    @property
    def engine(self) -> HardwareEngine:
        """The hardware engine paired with this port."""
        return self._instance.engine

    def connect_qp(self, remote: RoceEndpoint) -> QueuePair:
        """Connect a queue pair to a remote endpoint (client or storage)."""
        return self._instance.endpoint.connect(remote)


class SmartDsApi:
    """The Table 2 API bound to one SmartDS device."""

    def __init__(self, device: SmartDsDevice) -> None:
        self.device = device
        self.sim = device.sim

    # -- memory management ---------------------------------------------------

    def host_alloc(self, size: int) -> HostBuffer:
        """Allocate `size` bytes of host memory (header buffers)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        return HostBuffer(size=size)

    def dev_alloc(self, size: int) -> DeviceBuffer:
        """Allocate `size` bytes in the SmartDS's device memory."""
        return self.device.allocator.alloc(size)

    def dev_try_alloc(self, size: int) -> DeviceBuffer | None:
        """Gated device alloc: ``None`` above the admission watermark.

        Callers that can degrade (host-path handling) use this instead of
        :meth:`dev_alloc`, which raises :class:`MemoryError` only at the
        hard capacity limit.
        """
        return self.device.allocator.try_alloc(size)

    def dev_alloc_within(self, size: int, max_wait: float) -> typing.Generator:
        """Process body: gated device alloc with a bounded headroom wait.

        ``buffer = yield from api.dev_alloc_within(size, wait)`` — the
        result is ``None`` if the wait expired, signalling the caller to
        degrade rather than crash.
        """
        return (yield from self.device.allocator.alloc_within(size, max_wait))

    def dev_free(self, buffer: DeviceBuffer) -> None:
        """Return a device buffer to the allocator."""
        self.device.allocator.free(buffer)

    # -- instances -------------------------------------------------------------

    def open_roce_instance(self, instance_index: int) -> RoceInstanceContext:
        """Open one of the RoCE instances and return its context."""
        return RoceInstanceContext(self, instance_index)

    # -- data movement ---------------------------------------------------------

    def dev_mixed_recv(
        self,
        qp: QueuePair,
        h_buf: HostBuffer,
        h_size: int,
        d_buf: DeviceBuffer,
        d_size: int,
    ) -> CompletionEvent:
        """Post a mixed recv: first `h_size` bytes to host, rest to device."""
        instance = self._instance_of(qp)
        event = self.sim.event(name="mixed-recv")
        instance.split.post(
            SplitDescriptor(
                qp=qp, h_buf=h_buf, h_size=h_size, d_buf=d_buf, d_size=d_size, event=event
            )
        )
        return CompletionEvent(event)

    def dev_mixed_send(
        self,
        qp: QueuePair,
        h_buf: HostBuffer,
        h_size: int,
        d_buf: DeviceBuffer,
        d_size: int,
    ) -> CompletionEvent:
        """Post a mixed send: assemble host header + device payload."""
        instance = self._instance_of(qp)
        process = instance.assemble.send(qp, h_buf, h_size, d_buf, d_size)
        return CompletionEvent(process)

    def dev_func(
        self,
        src: DeviceBuffer,
        src_size: int,
        dest: DeviceBuffer,
        dest_size: int,
        engine: HardwareEngine,
    ) -> CompletionEvent:
        """Invoke a hardware engine on `src_size` bytes of device memory."""
        if dest_size > dest.size:
            raise ValueError("dest_size exceeds the destination buffer")
        return CompletionEvent(engine.run(src, src_size, dest))

    def poll(self, completion: CompletionEvent) -> typing.Generator:
        """Suspend the calling process until `completion` fires."""
        yield completion.event

    # -- helpers -------------------------------------------------------------------

    def _instance_of(self, qp: QueuePair) -> typing.Any:
        for instance in self.device.instances:
            if qp.endpoint is instance.endpoint:
                return instance
        raise ValueError("queue pair does not belong to this SmartDS device")

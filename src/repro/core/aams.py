"""Application-aware message split (AAMS): Split and Assemble (§4.1).

The Split module sits between the RoCE stack and the host: the
application posts *recv descriptors* naming a host buffer for the first
``h_size`` bytes of an RDMA message (the block-storage header) and a
device buffer for the rest (the payload). When a message arrives, the
Split module pops the next descriptor for that queue pair, DMAs the
header across PCIe into host memory — a 64 B ring that lives happily in
the DDIO LLC ways, so host DRAM is untouched — writes the payload to
device HBM, and completes the descriptor.

The Assemble module is the inverse: ``h_size`` bytes are fetched from
host memory over PCIe, ``d_size`` bytes from device memory, and the two
are joined into one outgoing RDMA message.

Messages *without* a payload (storage acks, replies) bypass AAMS and
flow to the host whole, like on a conventional NIC — that traffic is
tiny, which is exactly the paper's point.
"""

from __future__ import annotations

import dataclasses
import typing
import weakref
from collections import OrderedDict

from repro.net.message import Message
from repro.net.roce import Datapath, QueuePair
from repro.sim.resources import Store

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.device import DeviceBuffer, HostBuffer, SmartDsDevice
    from repro.sim.events import Event
    from repro.sim.process import Process


@dataclasses.dataclass
class SplitCompletion:
    """What `poll` sees after a mixed recv completes (Listing 1's `e`)."""

    size: int  # received payload bytes (`e.size`)
    message: Message
    h_buf: "HostBuffer"
    d_buf: "DeviceBuffer"


@dataclasses.dataclass
class SplitDescriptor:
    """One posted ``dev_mixed_recv`` work request."""

    qp: QueuePair
    h_buf: "HostBuffer"
    h_size: int
    d_buf: "DeviceBuffer"
    d_size: int
    event: "Event"


class SplitModule:
    """Per-QP recv-descriptor tables feeding the Split datapath."""

    def __init__(self, device: "SmartDsDevice") -> None:
        self.device = device
        self.sim = device.sim
        # Keyed by the QueuePair object itself, not id(qp): a table must
        # never outlive its QP and get inherited by a new QP allocated at
        # the same address after garbage collection. Weak keys so the
        # module does not pin dead QPs (and their Stores) forever under
        # QP churn — an empty table vanishes with its QP.
        self._tables: "weakref.WeakKeyDictionary[QueuePair, Store]" = (
            weakref.WeakKeyDictionary()
        )
        # QPs whose owner could not post a descriptor because device
        # memory sat above the admission watermark. Ingress must not
        # block on a descriptor that will never arrive: a starved QP's
        # messages take the host path instead (graceful degradation).
        self._starved: "weakref.WeakSet[QueuePair]" = weakref.WeakSet()

    def _table(self, qp: QueuePair) -> Store:
        table = self._tables.get(qp)
        if table is None:
            table = Store(self.sim, name=f"split-table:{qp.endpoint.address}")
            self._tables[qp] = table
        return table

    def post(self, descriptor: SplitDescriptor) -> None:
        """Append a recv descriptor to its QP's table (§4.1 receive side)."""
        if descriptor.h_size > descriptor.h_buf.size:
            raise ValueError("h_size exceeds the host buffer")
        if descriptor.d_size > descriptor.d_buf.size:
            raise ValueError("d_size exceeds the device buffer")
        self._table(descriptor.qp).put(descriptor)

    def has_descriptor(self, qp: QueuePair) -> bool:
        """Whether a split descriptor is queued for `qp` right now."""
        return len(self._table(qp)) > 0

    def pop(self, qp: QueuePair) -> "Event":
        """Next descriptor for `qp` (blocks the caller until one is posted)."""
        return self._table(qp).get()

    def mark_starved(self, qp: QueuePair) -> None:
        """Record that `qp`'s owner failed a gated device-memory alloc."""
        self._starved.add(qp)

    def clear_starved(self, qp: QueuePair) -> None:
        """Descriptors flow again for `qp` (a deferred post succeeded)."""
        self._starved.discard(qp)

    def starved(self, qp: QueuePair) -> bool:
        """Whether `qp` currently cannot get recv descriptors posted."""
        return qp in self._starved


class AamsDatapath(Datapath):
    """The SmartDS extended-RoCE datapath: Split on ingress, Assemble on egress.

    Egress charging covers messages sent directly through
    ``QueuePair.send`` (the middle tier's control path); the richer
    ``dev_mixed_send`` entry point in :mod:`repro.core.api` builds the
    message from explicit buffers and then uses the same machinery.
    """

    #: The Assemble header cache remembers this many recently fetched
    #: send headers, so a 3-replica fan-out fetches its header once.
    HEADER_CACHE_LIMIT = 8192

    def __init__(self, device: "SmartDsDevice", split: SplitModule) -> None:
        self.device = device
        self.split = split
        # Bounded LRU: key -> header content at fetch time. Content is
        # kept so a re-fetch with *different* header bytes invalidates
        # the entry instead of replaying a stale header on the wire.
        self._header_cache: OrderedDict[tuple, dict] = OrderedDict()

    def ingress(self, message: Message, qp: QueuePair) -> typing.Generator:
        device = self.device
        if message.payload is None or message.payload.size == 0:
            # Header-only control message (storage ack, reply): the RoCE
            # stack surfaces it to the host as a completion-queue entry
            # (RDMA send-with-immediate), not a full DMA of the frame.
            yield device.pcie.dma_write(device.spec.notify_bytes, flow=message.flow)
            yield from device.charge_host_header_write(device.spec.notify_bytes)
            return False
        if not self.split.has_descriptor(qp) and self.split.starved(qp):
            # Degraded ingress: the receiver could not post a descriptor
            # (device memory above the admission watermark), so waiting on
            # the table would deadlock. Ship the whole frame to the host
            # over PCIe like a conventional NIC and surface it to the
            # software recv queue (return False); the payload lands in
            # host DRAM instead of HBM.
            total = message.header_size + message.payload.size
            span = None
            if message.span is not None:
                span = message.span.child("aams.split", path="host")
            yield device.pcie.dma_write(total, flow=message.flow)
            yield from device.charge_host_header_write(message.header_size)
            if device.host_memory is not None:
                yield device.host_memory.write(message.payload.size, flow=message.flow)
            device.host_path_fallbacks.add()
            if span is not None:
                span.finish("degraded", nbytes=total, reason="starved-qp")
            return False
        # Large message: wait for (or take) the posted split descriptor.
        descriptor: SplitDescriptor = yield self.split.pop(qp)
        span = None
        if message.span is not None:
            span = message.span.child("aams.split", path="split")
        yield device.sim.timeout(device.spec.split_latency)
        header_bytes = min(descriptor.h_size, message.header_size)
        pcie_span = None if span is None else span.child("pcie.header")
        yield device.pcie.dma_write(header_bytes, flow=message.flow)
        yield from device.charge_host_header_write(header_bytes)
        if pcie_span is not None:
            pcie_span.finish(nbytes=header_bytes)
        hbm_span = None if span is None else span.child("hbm.payload")
        yield device.hbm.write(message.payload.size, flow=message.flow)
        if hbm_span is not None:
            hbm_span.finish(nbytes=message.payload.size)
        descriptor.h_buf.content = dict(message.header)
        descriptor.d_buf.payload = message.payload
        completion = SplitCompletion(
            size=message.payload.size,
            message=message,
            h_buf=descriptor.h_buf,
            d_buf=descriptor.d_buf,
        )
        descriptor.event.succeed(completion)
        if span is not None:
            span.finish("ok", nbytes=message.payload.size)
        return True

    def egress(self, message: Message, qp: QueuePair) -> typing.Generator:
        device = self.device
        # Assemble: header from host memory over PCIe, payload from HBM.
        # The replica fan-out reuses one prepared send header (Listing 1
        # fills a single h_buf_send), so repeat fetches for the same
        # (kind, block) hit the Assemble module's header cache.
        cache_key = (
            message.kind,
            message.header.get("chunk_id"),
            message.header.get("block_id"),
        )
        cached = self._header_cache.get(cache_key) if cache_key[1] is not None else None
        if cached is not None and cached == message.header:
            # Cache hit with identical content: refresh LRU recency.
            self._header_cache.move_to_end(cache_key)
        else:
            # Miss, unkeyed message, or stale content for this key: fetch
            # the header from host memory and (re)install the entry.
            yield device.pcie.dma_read(message.header_size, flow=message.flow)
            yield from device.charge_host_header_read(message.header_size)
            if cache_key[1] is not None:
                self._header_cache[cache_key] = dict(message.header)
                self._header_cache.move_to_end(cache_key)
                while len(self._header_cache) > self.HEADER_CACHE_LIMIT:
                    self._header_cache.popitem(last=False)
        if message.payload is not None and message.payload.size > 0:
            yield device.hbm.read(message.payload.size, flow=message.flow)
        yield device.sim.timeout(device.spec.split_latency)
        return None


class AssembleModule:
    """Explicit ``dev_mixed_send``: join a host header and a device payload."""

    def __init__(self, device: "SmartDsDevice") -> None:
        self.device = device
        self.sim = device.sim

    def send(
        self,
        qp: QueuePair,
        h_buf: "HostBuffer",
        h_size: int,
        d_buf: "DeviceBuffer",
        d_size: int,
    ) -> "Process":
        """Assemble and transmit one RDMA message; notifies the host after."""
        if h_size > h_buf.size:
            raise ValueError("h_size exceeds the host buffer")
        if d_size > d_buf.size:
            raise ValueError("d_size exceeds the device buffer")
        return self.sim.process(self._send(qp, h_buf, h_size, d_buf, d_size))

    def _send(
        self,
        qp: QueuePair,
        h_buf: "HostBuffer",
        h_size: int,
        d_buf: "DeviceBuffer",
        d_size: int,
    ) -> typing.Generator:
        payload = d_buf.payload
        if d_size > 0 and payload is None:
            raise ValueError("dev_mixed_send with empty device buffer")
        header = dict(h_buf.content)
        kind = header.pop("kind", "data")
        message = Message(
            kind=kind,
            src=qp.endpoint.address,
            dst=qp.remote.address,
            header_size=h_size,
            payload=payload if d_size > 0 else None,
            header=header,
        )
        # qp.send runs the AamsDatapath egress (PCIe header fetch + HBM
        # payload read) before the wire transfer.
        sent = yield qp.send(message)
        yield self.device.pcie.dma_write(self.device.spec.notify_bytes)
        return sent

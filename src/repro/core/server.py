"""The SmartDS middle-tier server (§4.3, productionized Listing 1).

The write path is exactly the paper's running example, at scale:

1. ``dev_mixed_recv`` splits every arriving write request — the 64 B
   header lands in host memory (a small ring the DDIO LLC absorbs),
   the 4 KB payload stays in SmartDS HBM.
2. A host worker parses the header (full software flexibility) and
   posts descriptors — the *only* CPU work per request.
3. ``dev_func`` compresses the payload in place on the port's hardware
   engine (skipped for latency-sensitive writes).
4. ``dev_mixed_send`` ships header+payload to each of the three replica
   storage servers; once all ack, the VM gets its reply.

Each networking port has its own extended RoCE instance and engine
(Fig. 6), so throughput scales linearly in ports; storage traffic exits
on the port its request arrived on.
"""

from __future__ import annotations

import typing

from repro.core.api import SmartDsApi
from repro.core.device import SmartDsDevice
from repro.core.engines import lz4_decompress_op
from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier.base import MiddleTierServer, ResponseMatcher
from repro.middletier.cluster import Testbed
from repro.net.message import Message, decompress_payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.telemetry.metrics import Counter
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.params import CacheSpec
    from repro.sim.kernel import Simulator
    from repro.storage.server import StorageServer

#: Device buffers leave room for LZ4's worst-case expansion on
#: incompressible blocks.
_BUFFER_SLACK = 512


class SmartDsMiddleTier(MiddleTierServer):
    """Middle tier built on the SmartDS device and its Table 2 API."""

    design_name = "SmartDS"
    #: control plane stays in host software (the design's raison d'etre).
    flexible = True

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int | None = None,
        n_ports: int = 1,
        address: str = "tier0",
        memory: MemorySubsystem | None = None,
        recv_window: int = 64,
        hbm_capacity: int | None = None,
        fault_plan: typing.Any = None,
        cache_spec: "CacheSpec | None" = None,
    ) -> None:
        if recv_window < 1:
            raise ValueError(f"recv_window must be >= 1, got {recv_window}")
        self._n_ports = n_ports
        self._shared_memory = memory
        self._recv_window = recv_window
        self._hbm_capacity = hbm_capacity
        self._fault_plan = fault_plan
        self._cache_spec = cache_spec
        # The paper's provisioning rule (§5.5): two host cores per port.
        workers = n_workers if n_workers is not None else 2 * n_ports
        super().__init__(sim, testbed, workers, address=address)
        spec = cache_spec if cache_spec is not None else self.platform.cache
        if spec.enabled:
            # Deferred: repro.cache imports repro.core.device, so a
            # module-level import here would close an import cycle.
            from repro.cache.hotblock import HotBlockCache

            self.attach_cache(
                HotBlockCache(
                    sim,
                    self.device.allocator,
                    spec,
                    hbm=self.device.hbm,
                    name=f"{address}.cache",
                )
            )
        #: Writes served without AAMS/engine help (host-path ingress or
        #: no device memory for the compressed output) — the graceful-
        #: degradation signal experiments plot against fault intensity.
        self.requests_degraded = Counter(f"{address}.requests-degraded")
        #: Reads whose reply payload landed in host memory (no split
        #: descriptor) or was decompressed in software (no HBM output).
        self.reads_degraded = Counter(f"{address}.reads-degraded")
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="middletier", design=self.design_name, address=address)
            registry.register_instance(self.requests_degraded, "tier.requests_degraded", **labels)
            registry.register_instance(self.reads_degraded, "tier.reads_degraded", **labels)

    @property
    def n_ports(self) -> int:
        """Networking ports in use on the card."""
        return self._n_ports

    def _build(self) -> None:
        host = self.platform.host
        self.memory = self._shared_memory or MemorySubsystem.for_host(
            self.sim, host, name=f"{self.address}.dram"
        )
        self.llc = DdioLlc(host)
        device_kwargs: dict[str, typing.Any] = {}
        if self._hbm_capacity is not None:
            device_kwargs["hbm_capacity"] = self._hbm_capacity
        self.device = SmartDsDevice(
            self.sim,
            self.platform,
            n_ports=self._n_ports,
            name=f"{self.address}.smartds",
            host_memory=self.memory,
            host_llc=self.llc,
            fault_plan=self._fault_plan,
            **device_kwargs,
        )
        self.api = SmartDsApi(self.device)
        self._buffer_bytes = self.platform.workload.block_size + _BUFFER_SLACK
        self._buffers: dict[int, tuple[int, typing.Any, typing.Any]] = {}
        self._port_links: list[dict[str, tuple[QueuePair, ResponseMatcher]]] = []
        self._read_matchers: dict[tuple[int, str], _SplitReplyMatcher] = {}
        self.client_endpoint = self.device.instance(0).endpoint
        self.storage_endpoint = self.client_endpoint

    # -- wiring ---------------------------------------------------------------

    def _endpoint_for_port(self, port_index: int) -> RoceEndpoint:
        return self.device.instance(port_index).endpoint

    def _connect_storage(self) -> None:
        for instance in self.device.instances:
            links: dict[str, tuple[QueuePair, ResponseMatcher]] = {}
            for server in self.testbed.storage_servers:
                qp = server.accept_from(instance.endpoint)
                links[server.address] = (qp, ResponseMatcher(self.sim, qp))
            self._port_links.append(links)
        # Base-class paths that don't know about ports use port 0.
        self._storage_links = self._port_links[0]

    def _storage_link_for(
        self, server: "StorageServer", message: Message
    ) -> tuple[QueuePair, ResponseMatcher]:
        port = message.header.get("arrival_port", 0)
        return self._port_links[port][server.address]

    def attach_client(self, client_endpoint: RoceEndpoint, port_index: int = 0) -> QueuePair:
        qp = client_endpoint.connect(self._endpoint_for_port(port_index))
        # Keep a window of mixed-recv descriptors posted so the Split
        # module pipelines back-to-back messages (Listing 1's loop, with
        # the descriptor depth a production receive queue would use).
        for _ in range(self._recv_window):
            self._post_recv(port_index, qp.peer)
        # Header-only client messages (read requests) bypass AAMS and land
        # in the software receive queue; drain it like a plain NIC.
        self.sim.process(
            self._dispatch_control(qp.peer, port_index),
            name=f"{self.address}.ctl{port_index}",
            daemon=True,
        )
        return qp

    def _dispatch_control(self, qp: QueuePair, port_index: int) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            message.header["arrival_port"] = port_index
            if self._bounce_if_misrouted(qp, message):
                continue
            if self._admit(qp, message):
                self._requests.put((qp, message))

    def _post_recv(self, port_index: int, qp: QueuePair) -> None:
        """Post one mixed-recv descriptor; its completion reposts another.

        Posting goes through the gated allocator: above the high
        watermark the descriptor is *not* posted — the QP is flagged
        starved so ingress degrades to the host path instead of blocking
        on an empty table — and a deferred repost waits for headroom.
        Brownout rung 2 applies the same degradation deliberately:
        while the ladder prefers host ingress, descriptors stay unposted
        and arriving writes take the host path whole.
        """
        api = self.api
        if self.admission is not None and self.admission.prefer_host_ingress():
            split = self.device.instance(port_index).split
            split.mark_starved(qp)
            self.sim.process(
                self._brownout_repost(port_index, qp),
                name=f"{self.address}.recv-brownout{port_index}",
                daemon=True,
            )
            return
        header_size = self.platform.workload.header_size
        d_buf = api.dev_try_alloc(self._buffer_bytes)
        if d_buf is None:
            split = self.device.instance(port_index).split
            split.mark_starved(qp)
            self.sim.process(
                self._deferred_post_recv(port_index, qp),
                name=f"{self.address}.recv-defer{port_index}",
                daemon=True,
            )
            return
        h_buf = api.host_alloc(header_size)
        completion = api.dev_mixed_recv(qp, h_buf, header_size, d_buf, self._buffer_bytes)
        # Daemon: one of the posted receive-window descriptors; it is
        # expected to still be waiting for a message when the run drains.
        self.sim.process(
            self._on_recv(port_index, qp, completion, h_buf, d_buf),
            name=f"{self.address}.recv{port_index}",
            daemon=True,
        )

    def _deferred_post_recv(self, port_index: int, qp: QueuePair) -> typing.Generator:
        yield self.device.allocator.headroom_event(self._buffer_bytes)
        self.device.instance(port_index).split.clear_starved(qp)
        self._post_recv(port_index, qp)

    def _brownout_repost(self, port_index: int, qp: QueuePair) -> typing.Generator:
        """Restore a brownout-withheld descriptor once the ladder descends."""
        while self.admission is not None and self.admission.prefer_host_ingress():
            if not self.sim._queue:
                # Idle sim: never hold up a drain-mode run; the window
                # slot is restored by the next attach in a later phase.
                return
            yield self.sim.timeout(self.admission.spec.adapt_interval)
        self.device.instance(port_index).split.clear_starved(qp)
        self._post_recv(port_index, qp)

    def _on_recv(
        self,
        port_index: int,
        qp: QueuePair,
        completion: typing.Any,
        h_buf: typing.Any,
        d_buf: typing.Any,
    ) -> typing.Generator:
        yield from self.api.poll(completion)
        message = completion.message
        message.header["arrival_port"] = port_index
        if self._bounce_if_misrouted(qp, message) or not self._admit(qp, message):
            # Bounced or shed at ingress: the split already landed the
            # payload in HBM — recycle the buffer, keep the descriptor
            # window full.
            self.api.dev_free(d_buf)
            self._post_recv(port_index, qp)
            return
        self._buffers[message.request_id] = (port_index, h_buf, d_buf)
        self._requests.put((qp, message))
        self._post_recv(port_index, qp)

    # -- the write path ----------------------------------------------------------

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        host = self.platform.host
        if message.payload is None:
            raise ValueError("write_request without payload")
        # Parse the header in host memory; post the engine descriptor and
        # the recv repost. The storage/reply sends are posted from the
        # completion context when the engine finishes.
        yield self.sim.timeout(host.parse_header_time)
        yield self.sim.timeout(host.post_descriptor_time * 2)
        self.sim.process(self._compress_and_complete(qp, message))

    def _compress_and_complete(self, qp: QueuePair, message: Message) -> typing.Generator:
        api = self.api
        entry = self._buffers.pop(message.request_id, None)
        posts = self.platform.storage.replication + 1
        parent = message.span
        if entry is None:
            # Degraded host-path write: ingress fell back under memory
            # pressure, so the payload sits in host DRAM, not HBM. Skip
            # the engine and replicate the raw payload — durability is
            # preserved, compression is sacrificed.
            self.requests_degraded.add()
            host_span = None
            if parent is not None:
                host_span = message.span = parent.child(
                    "write.host-path", reason="ingress-fallback"
                )
            yield self.sim.timeout(self.platform.host.post_descriptor_time * posts)
            yield from self._replicate_and_reply(qp, message, message.payload)
            if host_span is not None:
                host_span.finish("degraded", nbytes=message.payload_size)
            return
        port_index, h_buf, d_recv = entry
        engine = self.device.instance(port_index).engine
        d_send = None
        if message.header.get("latency_sensitive"):
            outgoing = message.payload
        elif not self._compression_allowed():
            # Brownout rung 3: skip the engine and replicate the raw
            # payload — shed compression work before shedding requests.
            self.requests_degraded.add()
            if parent is not None:
                parent.event("write.raw-payload", outcome="degraded", reason="brownout")
            outgoing = message.payload
        else:
            d_send = yield from api.dev_alloc_within(
                self._buffer_bytes, self.platform.recovery.degraded_alloc_wait
            )
            if d_send is None:
                # No HBM for the compressed output within the bounded
                # wait: ship the raw payload instead of crashing.
                self.requests_degraded.add()
                if parent is not None:
                    parent.event("write.raw-payload", outcome="degraded", reason="no-hbm")
                outgoing = message.payload
            else:
                eng_span = None if parent is None else parent.child("engine.compress")
                completion = api.dev_func(
                    d_recv, message.payload.size, d_send, self._buffer_bytes, engine
                )
                yield from api.poll(completion)
                outgoing = d_send.payload
                if eng_span is not None:
                    eng_span.finish(nbytes=outgoing.size)
        # Post the replica sends and the VM reply (completion-context CPU).
        yield self.sim.timeout(self.platform.host.post_descriptor_time * posts)
        try:
            yield from self._replicate_and_reply(qp, message, outgoing)
        finally:
            api.dev_free(d_recv)
            if d_send is not None:
                api.dev_free(d_send)

    # -- the read path --------------------------------------------------------------

    def _reply_from_cache(
        self,
        qp: QueuePair,
        message: Message,
        entry: typing.Any,
        port_index: int,
        started: float,
    ) -> typing.Generator:
        """Serve a hit from HBM: decompress the cached buffer on the
        port engine and reply — one hop, no storage traffic.

        The entry stays pinned across the engine yields, so a
        concurrent invalidation or shed defers the buffer free to our
        release instead of yanking it mid-decompress.
        """
        api = self.api
        payload = entry.payload
        parent = message.span
        hit_span = None if parent is None else parent.child("cache.hit")
        d_out = None
        try:
            if payload.is_compressed:
                d_out = yield from api.dev_alloc_within(
                    self._buffer_bytes, self.platform.recovery.degraded_alloc_wait
                )
                if d_out is None:
                    # No HBM for the decompressed output: software path.
                    self.reads_degraded.add()
                    sw_span = None if hit_span is None else hit_span.child("decompress.sw")
                    yield self.memory.read(payload.size)
                    payload = decompress_payload(payload)
                    if sw_span is not None:
                        sw_span.finish("degraded", nbytes=payload.size)
                else:
                    engine = self.device.instance(port_index).engine
                    eng_span = None if hit_span is None else hit_span.child("engine.decompress")
                    payload = yield engine.run(
                        entry.buffer, payload.size, d_out, operation=lz4_decompress_op
                    )
                    if eng_span is not None:
                        eng_span.finish(nbytes=payload.size)
            response = message.reply("read_reply", status="ok")
            response.payload = payload
            response.span = hit_span
            yield qp.send(response)
            if hit_span is not None:
                hit_span.finish(nbytes=payload.size)
            self._complete(message, nbytes=payload.size)
            self.cache_hit_latency.record(self.sim.now - started)
        finally:
            self.cache.release(entry)
            if d_out is not None:
                api.dev_free(d_out)

    def _fetch_and_reply(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """§2.2.2 on SmartDS: reply payloads land in HBM via mixed recv,
        decompress on the port engine, and leave via the Assemble path.

        Same fail-over discipline as the base class: per-attempt
        time-outs, rotation through the replica set (skipping suspected
        servers), and ``status="unavailable"`` once the retry policy's
        budget runs out. Under device-memory pressure a reply payload
        may instead arrive whole on the control path (host DRAM); the
        read then completes degraded with a software decompress.
        """
        api = self.api
        started = self.sim.now
        key = (message.header.get("chunk_id", 0), message.header.get("block_id", 0))
        port_index = message.header.get("arrival_port", 0)
        parent = message.span
        fill_token = None
        if self.cache is not None:
            entry = self.cache.lookup(key)
            if entry is not None:
                yield from self._reply_from_cache(qp, message, entry, port_index, started)
                return
            if parent is not None:
                parent.event("cache.miss")
            if self._fill_allowed():
                fill_token = self.cache.begin_fill(key)
        locations = self._block_locations.get(key)
        if not locations:
            if parent is not None:
                parent.event("read.not_found", outcome="failed")
            self._release_admission(message)
            if self._slo_monitors:
                self._observe_completion(
                    message, "not_found", latency=self.sim.now - started
                )
            yield qp.send(message.reply("read_reply", status="not_found"))
            return
        policy = self.read_retry
        token = self._retry_token(message)
        start = self.sim.now
        attempts = 0
        stored: Message | None = None
        d_buf: typing.Any = None
        reply_matcher: "_SplitReplyMatcher | None" = None
        while stored is None:
            address = self._read_replica_for(locations, attempts)
            if (
                address is None
                or policy.attempts_exhausted(attempts)
                or policy.deadline_expired(self.sim.now - start)
            ):
                self.reads_unavailable.add()
                self._release_admission(message)
                if self._slo_monitors:
                    self._observe_completion(
                        message, "unavailable", latency=self.sim.now - started
                    )
                unavail_span = None
                if parent is not None:
                    unavail_span = parent.child(
                        "read.unavailable", attempts=attempts, **policy.describe()
                    )
                response = message.reply("read_reply", status="unavailable")
                response.span = unavail_span
                yield qp.send(response)
                if unavail_span is not None:
                    unavail_span.finish("failed")
                return
            attempts += 1
            backoff = policy.backoff_before(attempts, token)
            if backoff > 0:
                yield self.sim.timeout(backoff)
            server = self.testbed.server(address)
            storage_qp, control_matcher = self._port_links[port_index][address]
            reply_matcher = self._read_matchers.get((port_index, address))
            if reply_matcher is None:
                reply_matcher = _SplitReplyMatcher(self, storage_qp)
                self._read_matchers[(port_index, address)] = reply_matcher

            fetch = Message(
                kind="storage_read",
                src=self.address,
                dst=server.address,
                header_size=message.header_size,
                header={"chunk_id": key[0], "block_id": key[1]},
            )
            attempt_span = None
            if parent is not None:
                attempt_span = parent.child("read.attempt", server=address, attempt=attempts)
                fetch.span = attempt_span
            # A reply with data is consumed by the Split module (payload
            # to HBM); a miss is header-only and lands at the control
            # matcher — as does a *full* reply when the device degraded
            # this QP to host-path ingress.
            data_event = reply_matcher.expect(fetch.request_id)
            ctl_event = control_matcher.expect(fetch.request_id)
            yield storage_qp.send(fetch)
            deadline = self.sim.timeout(policy.timeout_for(attempts, self.sim.now - start))
            yield self.sim.any_of([data_event, ctl_event, deadline])

            if data_event.triggered:
                control_matcher.forget(fetch.request_id)
                stored, d_buf = data_event.value
                if self.admission is not None:
                    self.admission.record_server_success(address)
                if attempt_span is not None:
                    attempt_span.finish("ok", nbytes=stored.payload_size, path="split")
            elif ctl_event.triggered:
                reply_matcher.forget(fetch.request_id)
                ctl: Message = ctl_event.value
                if self.admission is not None:
                    self.admission.record_server_success(address)
                if ctl.kind == "storage_read_reply" and ctl.payload is not None:
                    stored = ctl  # degraded: payload is in host memory
                    if attempt_span is not None:
                        attempt_span.finish(
                            "degraded", nbytes=stored.payload_size, path="host"
                        )
                else:
                    if attempt_span is not None:
                        attempt_span.finish("failed")
                    self._release_admission(message)
                    if self._slo_monitors:
                        self._observe_completion(
                            message, "not_found", latency=self.sim.now - started
                        )
                    yield qp.send(message.reply("read_reply", status="not_found"))
                    return
            else:
                # Attempt timed out: release interest on both matchers
                # and rotate to the next replica (§2.2.3 fail-over).
                reply_matcher.forget(fetch.request_id)
                control_matcher.forget(fetch.request_id)
                if self.admission is not None:
                    self.admission.record_server_failure(address)
                self.read_failovers.add()
                if attempt_span is not None:
                    attempt_span.finish(
                        "retried", timeout=policy.timeout_for(attempts, self.sim.now - start)
                    )

        payload = stored.payload
        if self.cache is not None and fill_token is not None:
            # Admission decision on the fetched (still compressed) block.
            admitted = self.cache.offer(key, payload, fill_token)
            if parent is not None:
                parent.event("cache.fill", admitted=admitted)
        if d_buf is None:
            # Host-path reply: decompress in software from host DRAM.
            self.reads_degraded.add()
            host_span = None
            if parent is not None:
                host_span = parent.child("read.host-path", reason="no-split-descriptor")
            if payload.is_compressed:
                yield self.memory.read(payload.size)
                payload = decompress_payload(payload)
            response = message.reply("read_reply", status="ok")
            response.payload = payload
            response.span = host_span
            yield qp.send(response)
            if host_span is not None:
                host_span.finish("degraded", nbytes=payload.size)
            self._complete(message, nbytes=payload.size)
            if self.cache is not None:
                self.cache_miss_latency.record(self.sim.now - started)
            return
        d_out = yield from api.dev_alloc_within(
            self._buffer_bytes, self.platform.recovery.degraded_alloc_wait
        )
        try:
            if payload.is_compressed:
                if d_out is None:
                    # No HBM for the decompressed output: software path.
                    self.reads_degraded.add()
                    sw_span = None if parent is None else parent.child("decompress.sw")
                    yield self.memory.read(payload.size)
                    payload = decompress_payload(payload)
                    if sw_span is not None:
                        sw_span.finish("degraded", nbytes=payload.size)
                else:
                    # Same engine, decompression microprogram (the paper's
                    # engines are symmetric for LZ4).
                    engine = self.device.instance(port_index).engine
                    eng_span = None if parent is None else parent.child("engine.decompress")
                    payload = yield engine.run(
                        d_buf, payload.size, d_out, operation=lz4_decompress_op
                    )
                    if eng_span is not None:
                        eng_span.finish(nbytes=payload.size)
            response = message.reply("read_reply", status="ok")
            response.payload = payload
            response.span = parent
            yield qp.send(response)
            self._complete(message, nbytes=payload.size)
            if self.cache is not None:
                self.cache_miss_latency.record(self.sim.now - started)
        finally:
            reply_matcher.release(d_buf)
            if d_out is not None:
                api.dev_free(d_out)


class _SplitReplyMatcher:
    """Routes split-consumed storage replies to waiting readers.

    Keeps a window of mixed-recv descriptors posted on one storage QP;
    completions are matched to waiters by ``in_reply_to`` (descriptors
    are interchangeable, so FIFO hardware matching composes with
    software request matching). Unclaimed replies are dropped and their
    buffers recycled.
    """

    WINDOW = 8

    def __init__(self, tier: SmartDsMiddleTier, qp: QueuePair) -> None:
        self.tier = tier
        self.qp = qp
        self.sim = tier.sim
        self._waiting: dict[int, typing.Any] = {}
        for _ in range(self.WINDOW):
            self._post()

    def expect(self, request_id: int) -> typing.Any:
        """Event firing with ``(reply_message, device_buffer)``."""
        event = self.sim.event(name=f"split-reply:{request_id}")
        self._waiting[request_id] = event
        return event

    def forget(self, request_id: int) -> None:
        """Drop interest in a reply (the miss path won the race)."""
        self._waiting.pop(request_id, None)

    def release(self, d_buf: typing.Any) -> None:
        """Return a delivered reply's device buffer to the allocator."""
        self.tier.api.dev_free(d_buf)

    def _post(self) -> None:
        api = self.tier.api
        d_buf = api.dev_try_alloc(self.tier._buffer_bytes)
        if d_buf is None:
            # Window slot lost to memory pressure: degrade this QP to
            # host-path ingress and restore the slot once HBM drains.
            instance = api._instance_of(self.qp)
            instance.split.mark_starved(self.qp)
            self.sim.process(
                self._deferred_post(instance), name="split-reply-repost", daemon=True
            )
            return
        h_buf = api.host_alloc(self.tier.platform.workload.header_size)
        completion = api.dev_mixed_recv(
            self.qp, h_buf, h_buf.size, d_buf, self.tier._buffer_bytes
        )
        self.sim.process(
            self._on_complete(completion, d_buf), name="split-reply-matcher", daemon=True
        )

    def _deferred_post(self, instance: typing.Any) -> typing.Generator:
        yield self.tier.device.allocator.headroom_event(self.tier._buffer_bytes)
        instance.split.clear_starved(self.qp)
        self._post()

    def _on_complete(self, completion: typing.Any, d_buf: typing.Any) -> typing.Generator:
        yield from self.tier.api.poll(completion)
        message = completion.message
        self._post()  # keep the descriptor window full
        event = self._waiting.pop(message.header.get("in_reply_to"), None)
        if event is None:
            self.tier.api.dev_free(d_buf)  # unclaimed; recycle
        else:
            event.succeed((message, d_buf))

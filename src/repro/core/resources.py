"""FPGA resource model (Table 3).

The paper reports post-implementation resource consumption on the
VCU128 for the accelerator baseline and for SmartDS with 1/2/4/6 ports.
Each additional port replicates the extended RoCE instance and its
compression engine, so consumption is linear in the port count; this
module reproduces the published rows exactly and interpolates the port
counts the paper does not list.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class FpgaResources:
    """LUTs/registers in thousands, BRAM blocks."""

    luts_k: float
    regs_k: float
    brams: int

    def __add__(self, other: "FpgaResources") -> "FpgaResources":
        return FpgaResources(
            self.luts_k + other.luts_k, self.regs_k + other.regs_k, self.brams + other.brams
        )

    def scaled(self, factor: float) -> "FpgaResources":
        """Multiply all quantities by `factor` (rounded sensibly)."""
        return FpgaResources(
            round(self.luts_k * factor), round(self.regs_k * factor), round(self.brams * factor)
        )


#: Total resources of the VCU128 part, derived from Table 3's percentages
#: (e.g. SmartDS-1 uses 157 kLUT = 12.0 %).
VCU128_TOTALS = FpgaResources(luts_k=1304, regs_k=2607, brams=2016)

#: Table 3, "Acc": the standalone accelerator design on the U280/VCU128.
ACC_RESOURCES = FpgaResources(luts_k=112, regs_k=109, brams=172)

#: Table 3, SmartDS rows as published.
_SMARTDS_ROWS: dict[int, FpgaResources] = {
    1: FpgaResources(157, 143, 292),
    2: FpgaResources(313, 285, 584),
    4: FpgaResources(627, 571, 1168),
    6: FpgaResources(941, 857, 1752),
}


def design_resources(name: str, n_ports: int = 1) -> FpgaResources:
    """Resource consumption of a design, per Table 3.

    `name` is ``"acc"`` or ``"smartds"``; for SmartDS, port counts the
    paper does not list are linearly interpolated from the published
    rows (consumption is one instance per port).
    """
    key = name.lower()
    if key == "acc":
        return ACC_RESOURCES
    if key != "smartds":
        raise ValueError(f"unknown design {name!r}; expected 'acc' or 'smartds'")
    if not 1 <= n_ports <= 6:
        raise ValueError(f"SmartDS port count must be 1..6, got {n_ports}")
    if n_ports in _SMARTDS_ROWS:
        return _SMARTDS_ROWS[n_ports]
    # Interpolate between the published neighbours.
    below = max(p for p in _SMARTDS_ROWS if p < n_ports)
    above = min(p for p in _SMARTDS_ROWS if p > n_ports)
    weight = (n_ports - below) / (above - below)
    low, high = _SMARTDS_ROWS[below], _SMARTDS_ROWS[above]
    return FpgaResources(
        luts_k=round(low.luts_k + (high.luts_k - low.luts_k) * weight),
        regs_k=round(low.regs_k + (high.regs_k - low.regs_k) * weight),
        brams=round(low.brams + (high.brams - low.brams) * weight),
    )


def utilization(resources: FpgaResources) -> dict[str, float]:
    """Fractions of the VCU128 consumed (Table 3's percentages)."""
    return {
        "luts": resources.luts_k / VCU128_TOTALS.luts_k,
        "regs": resources.regs_k / VCU128_TOTALS.regs_k,
        "brams": resources.brams / VCU128_TOTALS.brams,
    }


def fits_on_vcu128(resources: FpgaResources) -> bool:
    """Whether a configuration fits on the part at all."""
    return (
        resources.luts_k <= VCU128_TOTALS.luts_k
        and resources.regs_k <= VCU128_TOTALS.regs_k
        and resources.brams <= VCU128_TOTALS.brams
    )

"""The SmartDS device: an HBM-enhanced FPGA SmartNIC (Figs. 5 and 6).

One card holds:

- up to 6 networking ports, each with its own *extended RoCE instance*
  (RoCE stack + Split module + Assemble module) and its own hardware
  compression engine;
- 8 GB of HBM at up to 3.4 Tb/s (16 channels) holding message payloads;
- one PCIe 3.0 x16 link to the host, which carries only message
  headers, descriptors, and completions — the design's whole point.

Host-side header traffic is tiny and cycles in a small ring, so it hits
the DDIO LLC ways and leaves host DRAM untouched; the device exposes
``charge_host_header_*`` helpers that implement exactly that test.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.aams import AamsDatapath, AssembleModule, SplitModule
from repro.core.engines import HardwareEngine
from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.memory import MemorySubsystem
from repro.hostmodel.pcie import PcieLink
from repro.net.link import NetworkPort
from repro.net.roce import RoceEndpoint
from repro.params import PlatformSpec
from repro.telemetry.metrics import Counter, Gauge
from repro.telemetry.registry import registry_for
from repro.units import gib, kib, mib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


@dataclasses.dataclass
class HostBuffer:
    """Host memory allocated via ``host_alloc`` (headers, send headers)."""

    size: int
    content: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class DeviceBuffer:
    """SmartDS device memory allocated via ``dev_alloc`` (payloads)."""

    size: int
    payload: typing.Any = None  # a repro.net.message.Payload or None
    freed: bool = False  # set by the allocator; guards double frees


class DeviceMemoryAllocator:
    """Tracks HBM buffer allocations against the 8 GB capacity.

    Two admission levels (see ``docs/robustness.md``):

    - :meth:`alloc` is the hard path: it succeeds up to the full
      capacity and raises :class:`MemoryError` beyond it;
    - :meth:`try_alloc` / :meth:`alloc_within` are the *gated* path the
      middle tier uses: admissions stop at ``high_watermark * capacity``
      and callers either degrade immediately or wait (bounded) for the
      :meth:`headroom_event` that fires once usage drains below
      ``low_watermark * capacity``.

    Low-priority consumers (the hot-block read cache of
    :mod:`repro.cache`) register *reclaimers* via
    :meth:`register_reclaimer`: before a gated allocation is refused or
    a waiter parks for headroom, the allocator asks the reclaimers to
    shed bytes, so elastic consumers shrink to zero before any request
    is degraded to the host path. Headroom waiters are woken in strict
    FIFO order so no waiter starves behind later, smaller requests.

    Watermark gating and waiting need a simulator; constructing without
    one keeps the plain alloc/free behaviour for unit harnesses.
    """

    def __init__(
        self,
        capacity: int,
        sim: "Simulator | None" = None,
        high_watermark: float = 1.0,
        low_watermark: float | None = None,
    ) -> None:
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(f"high watermark must be in (0, 1], got {high_watermark!r}")
        low = high_watermark if low_watermark is None else low_watermark
        if not 0.0 < low <= high_watermark:
            raise ValueError(
                f"low watermark must be in (0, high], got {low!r} (high={high_watermark!r})"
            )
        self.capacity = capacity
        self.sim = sim
        self.high_watermark = high_watermark
        self.low_watermark = low
        self.allocated = 0
        self.peak = 0
        self.occupancy = Gauge("hbm.occupancy")
        self.alloc_deferred = Counter("hbm.alloc-deferred")
        self.alloc_rejected = Counter("hbm.alloc-rejected")
        self.bytes_reclaimed = Counter("hbm.bytes-reclaimed")
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="hbm")
            registry.register_instance(self.occupancy, "hbm.occupancy", **labels)
            registry.register_instance(self.alloc_deferred, "hbm.alloc_deferred", **labels)
            registry.register_instance(self.alloc_rejected, "hbm.alloc_rejected", **labels)
            registry.register_instance(self.bytes_reclaimed, "hbm.bytes_reclaimed", **labels)
        self._waiters: list[tuple[int, "typing.Any"]] = []  # (size, Event), FIFO
        self._reclaimers: list[typing.Callable[[int], int]] = []
        self._reclaiming = False

    @property
    def admission_limit(self) -> float:
        """Bytes the gated path may occupy (high watermark)."""
        return self.high_watermark * self.capacity

    @property
    def drain_target(self) -> float:
        """Occupancy below which headroom waiters resume (low watermark)."""
        return self.low_watermark * self.capacity

    def would_reject(self, size: int) -> bool:
        """Whether a gated allocation of `size` would be refused right now."""
        return self.allocated + size > self.admission_limit

    @property
    def waiters(self) -> int:
        """Headroom waiters currently parked (FIFO queue length)."""
        return len(self._waiters)

    def elastic_headroom(self, size: int) -> bool:
        """Whether a *low-priority* allocation of `size` is welcome.

        Stricter than the admission gate: elastic consumers stay below
        the drain target and never allocate while headroom waiters are
        parked — otherwise their fills would keep occupancy inside the
        watermark band and starve the waiters they are meant to yield to.
        """
        return not self._waiters and self.allocated + size <= self.drain_target

    # -- elastic low-priority consumers -------------------------------------

    def register_reclaimer(self, reclaimer: typing.Callable[[int], int]) -> None:
        """Register a shed callback: ``reclaimer(nbytes) -> bytes freed``.

        Reclaimers are consulted (in registration order) before a gated
        allocation is refused and before a headroom waiter parks, so an
        elastic consumer's occupancy never turns a request away.
        """
        self._reclaimers.append(reclaimer)

    def reclaim(self, nbytes: int) -> int:
        """Ask the registered reclaimers to free at least `nbytes`.

        Returns the bytes actually freed (possibly 0). Re-entrant calls
        (a reclaimer freeing memory wakes a waiter that allocates) are
        no-ops rather than infinite recursion.
        """
        if self._reclaiming or not self._reclaimers or nbytes <= 0:
            return 0
        self._reclaiming = True
        freed = 0
        try:
            for reclaimer in self._reclaimers:
                if freed >= nbytes:
                    break
                freed += reclaimer(nbytes - freed)
        finally:
            self._reclaiming = False
        if freed:
            self.bytes_reclaimed.add(freed)
        return freed

    def alloc(self, size: int) -> DeviceBuffer:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.allocated + size > self.capacity:
            raise MemoryError(
                f"device memory exhausted: {self.allocated} + {size} > {self.capacity}"
            )
        self.allocated += size
        self.peak = max(self.peak, self.allocated)
        self.occupancy.set(self.allocated)
        return DeviceBuffer(size=size)

    def try_alloc(self, size: int, reclaim: bool = True) -> DeviceBuffer | None:
        """Gated allocation: ``None`` instead of raising above the high watermark.

        With `reclaim` (the default), a refusal first asks the
        registered reclaimers to shed down to the *drain target* (not
        merely enough to fit this request): shedding the minimum would
        keep occupancy glued to the admission gate while elastic bytes
        remain, starving headroom waiters that need the low watermark.
        Elastic consumers pass ``reclaim=False`` so they never shed
        their own entries to admit more of themselves.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.would_reject(size):
            if not reclaim:
                return None
            self.reclaim(int(self.allocated + size - self.drain_target))
            if self.would_reject(size):
                return None
        return self.alloc(size)

    def headroom_event(self, size: int) -> "typing.Any":
        """Event firing once a gated alloc of `size` fits below the low watermark.

        The event may race with other waiters — re-check with
        :meth:`try_alloc` after it fires. Parking a waiter first asks
        the reclaimers to shed down to the drain target, so elastic
        consumers cannot keep a waiter parked.
        """
        if self.sim is None:
            raise RuntimeError("headroom waiting needs an allocator constructed with a sim")
        event = self.sim.event(name="hbm-headroom")
        if self.allocated + size <= self.drain_target:
            event.succeed()
            return event
        self._waiters.append((size, event))
        # Shedding frees buffers, and each free() wakes FIFO waiters —
        # including, possibly, the one just parked.
        self.reclaim(int(self.allocated + size - self.drain_target))
        return event

    def cancel_headroom(self, event: "typing.Any") -> None:
        """Withdraw a headroom waiter (its bounded wait expired).

        Keeps the FIFO wake-up queue free of dead entries, so a stale
        head waiter cannot block live waiters behind it.
        """
        self._waiters = [(size, ev) for size, ev in self._waiters if ev is not event]

    def alloc_within(self, size: int, max_wait: float) -> typing.Generator:
        """Process body: gated alloc, waiting up to `max_wait` for headroom.

        Returns the buffer, or ``None`` once the bounded wait expires —
        the caller then degrades (host-path handling) instead of
        crashing with :class:`MemoryError`. Counted in
        :attr:`alloc_deferred` (had to wait) / :attr:`alloc_rejected`
        (wait expired).
        """
        buffer = self.try_alloc(size)
        if buffer is not None:
            return buffer
        self.alloc_deferred.add()
        if self.sim is None or max_wait <= 0:
            self.alloc_rejected.add()
            return None
        deadline = self.sim.timeout(max_wait)
        while True:
            headroom = self.headroom_event(size)
            yield self.sim.any_of([headroom, deadline])
            buffer = self.try_alloc(size)
            if buffer is not None:
                self.cancel_headroom(headroom)
                return buffer
            if deadline.triggered:
                self.cancel_headroom(headroom)
                self.alloc_rejected.add()
                return None

    def free(self, buffer: DeviceBuffer) -> None:
        if buffer.freed:
            raise ValueError(
                f"double free of a {buffer.size}-byte device buffer (already returned)"
            )
        if buffer.size > self.allocated:
            raise ValueError("freeing more device memory than is allocated")
        buffer.freed = True
        self.allocated -= buffer.size
        self.occupancy.set(self.allocated)
        buffer.payload = None
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        # Strict FIFO: wake from the head and stop at the first waiter
        # that does not fit. Skipping ahead would let a stream of small
        # requests starve a large one parked at the front of the queue.
        if self.allocated > self.drain_target:
            return
        while self._waiters:
            size, event = self._waiters[0]
            if self.allocated + size > self.drain_target:
                break
            self._waiters.pop(0)
            if not event.triggered:
                event.succeed()


class RoceInstance:
    """One networking port's extended RoCE stack (Fig. 6)."""

    def __init__(self, device: "SmartDsDevice", index: int) -> None:
        self.device = device
        self.index = index
        network = device.platform.network
        self.port = NetworkPort(
            device.sim, rate=network.port_rate, name=f"{device.name}.port{index}"
        )
        self.split = SplitModule(device)
        self.assemble = AssembleModule(device)
        self.datapath = AamsDatapath(device, self.split)
        self.endpoint = RoceEndpoint(
            device.sim,
            self.port,
            f"{device.name}.roce{index}",
            datapath=self.datapath,
            spec=network,
            fault_plan=device.fault_plan,
        )
        self.engine = HardwareEngine(device, index, fault_plan=device.fault_plan)


class SmartDsDevice:
    """One SmartDS card plugged into a host."""

    def __init__(
        self,
        sim: "Simulator",
        platform: PlatformSpec | None = None,
        n_ports: int = 1,
        name: str = "smartds",
        host_memory: MemorySubsystem | None = None,
        host_llc: DdioLlc | None = None,
        hbm_capacity: int = gib(8),
        header_ring_bytes: int = mib(1),
        fault_plan: typing.Any = None,
    ) -> None:
        self.platform = platform or PlatformSpec()
        self.spec = self.platform.smartds
        if not 1 <= n_ports <= self.spec.max_ports:
            raise ValueError(
                f"SmartDS supports 1..{self.spec.max_ports} ports, got {n_ports}"
            )
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.hbm = MemorySubsystem(
            sim,
            rate=self.spec.hbm_rate,
            lanes=self.spec.hbm_lanes,
            chunk=kib(64),
            name=f"{name}.hbm",
        )
        recovery = self.platform.recovery
        self.allocator = DeviceMemoryAllocator(
            hbm_capacity,
            sim=sim,
            high_watermark=recovery.hbm_high_watermark,
            low_watermark=recovery.hbm_low_watermark,
        )
        #: Requests the card handled without the Split module (full frame
        #: over PCIe) because device memory was above the high watermark.
        self.host_path_fallbacks = Counter(f"{name}.host-path-fallbacks")
        registry = registry_for(sim)
        if registry is not None:
            registry.register_instance(
                self.host_path_fallbacks,
                "device.host_path_fallbacks",
                component="device",
                device=name,
            )
        #: One deterministic fault schedule for the whole card: its loss
        #: bursts hit the RoCE instances, its stall windows the PCIe
        #: link, its slowdown windows the hardware engines.
        self.fault_plan = fault_plan
        self.pcie = PcieLink(sim, self.platform.host, name=f"{name}.pcie", fault_plan=fault_plan)
        self.host_memory = host_memory
        self.host_llc = host_llc or DdioLlc(self.platform.host)
        self.header_ring_bytes = header_ring_bytes
        self.instances = [RoceInstance(self, i) for i in range(n_ports)]

    def instance(self, index: int) -> RoceInstance:
        """The extended RoCE instance of port `index`."""
        if not 0 <= index < self.n_ports:
            raise ValueError(f"port index {index} outside 0..{self.n_ports - 1}")
        return self.instances[index]

    # -- host-side header traffic ------------------------------------------

    def charge_host_header_write(self, nbytes: int) -> typing.Generator:
        """DRAM cost of landing header bytes in the host header ring.

        The ring is ~1 MB: it fits in the DDIO LLC ways, so normally no
        DRAM transfer happens at all.
        """
        if self.host_memory is None:
            return
        traffic = self.host_llc.dma_write(nbytes, self.header_ring_bytes)
        if traffic.dram_write:
            yield self.host_memory.write(traffic.dram_write)

    def charge_host_header_read(self, nbytes: int) -> typing.Generator:
        """DRAM cost of the Assemble module fetching a send header."""
        if self.host_memory is None:
            return
        traffic = self.host_llc.dma_read(nbytes, self.header_ring_bytes)
        if traffic.dram_read:
            yield self.host_memory.read(traffic.dram_read)

"""The SmartDS device: an HBM-enhanced FPGA SmartNIC (Figs. 5 and 6).

One card holds:

- up to 6 networking ports, each with its own *extended RoCE instance*
  (RoCE stack + Split module + Assemble module) and its own hardware
  compression engine;
- 8 GB of HBM at up to 3.4 Tb/s (16 channels) holding message payloads;
- one PCIe 3.0 x16 link to the host, which carries only message
  headers, descriptors, and completions — the design's whole point.

Host-side header traffic is tiny and cycles in a small ring, so it hits
the DDIO LLC ways and leaves host DRAM untouched; the device exposes
``charge_host_header_*`` helpers that implement exactly that test.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.aams import AamsDatapath, AssembleModule, SplitModule
from repro.core.engines import HardwareEngine
from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.memory import MemorySubsystem
from repro.hostmodel.pcie import PcieLink
from repro.net.link import NetworkPort
from repro.net.roce import RoceEndpoint
from repro.params import PlatformSpec
from repro.units import gib, kib, mib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


@dataclasses.dataclass
class HostBuffer:
    """Host memory allocated via ``host_alloc`` (headers, send headers)."""

    size: int
    content: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class DeviceBuffer:
    """SmartDS device memory allocated via ``dev_alloc`` (payloads)."""

    size: int
    payload: typing.Any = None  # a repro.net.message.Payload or None


class DeviceMemoryAllocator:
    """Tracks HBM buffer allocations against the 8 GB capacity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.allocated = 0
        self.peak = 0

    def alloc(self, size: int) -> DeviceBuffer:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.allocated + size > self.capacity:
            raise MemoryError(
                f"device memory exhausted: {self.allocated} + {size} > {self.capacity}"
            )
        self.allocated += size
        self.peak = max(self.peak, self.allocated)
        return DeviceBuffer(size=size)

    def free(self, buffer: DeviceBuffer) -> None:
        if buffer.size > self.allocated:
            raise ValueError("freeing more device memory than is allocated")
        self.allocated -= buffer.size
        buffer.payload = None


class RoceInstance:
    """One networking port's extended RoCE stack (Fig. 6)."""

    def __init__(self, device: "SmartDsDevice", index: int) -> None:
        self.device = device
        self.index = index
        network = device.platform.network
        self.port = NetworkPort(
            device.sim, rate=network.port_rate, name=f"{device.name}.port{index}"
        )
        self.split = SplitModule(device)
        self.assemble = AssembleModule(device)
        self.datapath = AamsDatapath(device, self.split)
        self.endpoint = RoceEndpoint(
            device.sim,
            self.port,
            f"{device.name}.roce{index}",
            datapath=self.datapath,
            spec=network,
            fault_plan=device.fault_plan,
        )
        self.engine = HardwareEngine(device, index, fault_plan=device.fault_plan)


class SmartDsDevice:
    """One SmartDS card plugged into a host."""

    def __init__(
        self,
        sim: "Simulator",
        platform: PlatformSpec | None = None,
        n_ports: int = 1,
        name: str = "smartds",
        host_memory: MemorySubsystem | None = None,
        host_llc: DdioLlc | None = None,
        hbm_capacity: int = gib(8),
        header_ring_bytes: int = mib(1),
        fault_plan: typing.Any = None,
    ) -> None:
        self.platform = platform or PlatformSpec()
        self.spec = self.platform.smartds
        if not 1 <= n_ports <= self.spec.max_ports:
            raise ValueError(
                f"SmartDS supports 1..{self.spec.max_ports} ports, got {n_ports}"
            )
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.hbm = MemorySubsystem(
            sim,
            rate=self.spec.hbm_rate,
            lanes=self.spec.hbm_lanes,
            chunk=kib(64),
            name=f"{name}.hbm",
        )
        self.allocator = DeviceMemoryAllocator(hbm_capacity)
        #: One deterministic fault schedule for the whole card: its loss
        #: bursts hit the RoCE instances, its stall windows the PCIe
        #: link, its slowdown windows the hardware engines.
        self.fault_plan = fault_plan
        self.pcie = PcieLink(sim, self.platform.host, name=f"{name}.pcie", fault_plan=fault_plan)
        self.host_memory = host_memory
        self.host_llc = host_llc or DdioLlc(self.platform.host)
        self.header_ring_bytes = header_ring_bytes
        self.instances = [RoceInstance(self, i) for i in range(n_ports)]

    def instance(self, index: int) -> RoceInstance:
        """The extended RoCE instance of port `index`."""
        if not 0 <= index < self.n_ports:
            raise ValueError(f"port index {index} outside 0..{self.n_ports - 1}")
        return self.instances[index]

    # -- host-side header traffic ------------------------------------------

    def charge_host_header_write(self, nbytes: int) -> typing.Generator:
        """DRAM cost of landing header bytes in the host header ring.

        The ring is ~1 MB: it fits in the DDIO LLC ways, so normally no
        DRAM transfer happens at all.
        """
        if self.host_memory is None:
            return
        traffic = self.host_llc.dma_write(nbytes, self.header_ring_bytes)
        if traffic.dram_write:
            yield self.host_memory.write(traffic.dram_write)

    def charge_host_header_read(self, nbytes: int) -> typing.Generator:
        """DRAM cost of the Assemble module fetching a send header."""
        if self.host_memory is None:
            return
        traffic = self.host_llc.dma_read(nbytes, self.header_ring_bytes)
        if traffic.dram_read:
            yield self.host_memory.read(traffic.dram_read)

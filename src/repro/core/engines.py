"""Offloaded hardware engines (§4.1, "Offloaded hardware engine").

An engine follows the paper's simple I/O mechanism: it fetches data
from device memory, processes it, and writes the result back to device
memory. SmartDS instantiates one LZ4 compression engine per networking
port, each able to consume 4 KB blocks at 100 Gb/s; the same class can
host other computations (the paper's "simple interface to deploy
different hardware engines").
"""

from __future__ import annotations

import typing

from repro.compression.model import FPGA_ENGINE, CompressorProfile
from repro.net.message import Payload, compress_payload, decompress_payload
from repro.sim.resources import Resource
from repro.telemetry.metrics import Counter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.device import DeviceBuffer, SmartDsDevice
    from repro.sim.debug import FaultPlan
    from repro.sim.process import Process


def lz4_compress_op(payload: Payload) -> Payload:
    """The default engine operation: LZ4 block compression."""
    return compress_payload(payload)


def lz4_decompress_op(payload: Payload) -> Payload:
    """Inverse engine operation, used on the read path."""
    return decompress_payload(payload)


def checksum_op(payload: Payload) -> Payload:
    """A non-compressing engine: append a CRC32 trailer to the block.

    Demonstrates the paper's claim that SmartDS "provides a simple
    interface to deploy different hardware engines according to the
    application scenario" — here an integrity engine instead of LZ4.
    """
    import zlib

    if payload.data is not None:
        crc = zlib.crc32(payload.data)
        data = payload.data + crc.to_bytes(4, "little")
        return Payload(size=len(data), ratio=payload.ratio, data=data)
    return Payload(size=payload.size + 4, ratio=payload.ratio)


def verify_checksum_op(payload: Payload) -> Payload:
    """Inverse of :func:`checksum_op`: strip and verify the trailer."""
    import zlib

    if payload.size < 4:
        raise ValueError("payload too small to carry a CRC32 trailer")
    if payload.data is not None:
        body, trailer = payload.data[:-4], payload.data[-4:]
        if zlib.crc32(body) != int.from_bytes(trailer, "little"):
            raise ValueError("checksum mismatch: block corrupted in flight")
        return Payload(size=len(body), ratio=payload.ratio, data=body)
    return Payload(size=payload.size - 4, ratio=payload.ratio)


def encrypt_op(payload: Payload) -> Payload:
    """An at-rest-encryption engine (XTS stand-in: keyed byte rotation).

    Size-preserving, invertible via :func:`decrypt_op`. Real silicon
    would run AES-XTS at line rate with the same simulation profile; the
    transformation here just has to be a real bijection so functional
    tests can verify the datapath end to end.
    """
    if payload.data is not None:
        data = bytes((b + 0x5A + (i & 0x7F)) & 0xFF for i, b in enumerate(payload.data))
        return Payload(size=len(data), ratio=payload.ratio, data=data)
    return Payload(size=payload.size, ratio=payload.ratio)


def decrypt_op(payload: Payload) -> Payload:
    """Inverse of :func:`encrypt_op`."""
    if payload.data is not None:
        data = bytes((b - 0x5A - (i & 0x7F)) & 0xFF for i, b in enumerate(payload.data))
        return Payload(size=len(data), ratio=payload.ratio, data=data)
    return Payload(size=payload.size, ratio=payload.ratio)


class HardwareEngine:
    """One engine instance attached to a SmartDS device."""

    def __init__(
        self,
        device: "SmartDsDevice",
        index: int,
        profile: CompressorProfile = FPGA_ENGINE,
        operation: typing.Callable[[Payload], Payload] = lz4_compress_op,
        name: str | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.device = device
        self.sim = device.sim
        self.index = index
        self.profile = profile
        self.operation = operation
        self.name = name or f"{device.name}.engine{index}"
        self._unit = Resource(self.sim, capacity=1, name=self.name)
        #: Deterministic fault schedule; slowdown windows stretch occupancy.
        self.fault_plan = fault_plan
        self.blocks_processed = Counter(f"{self.name}.blocks")
        self.bytes_in = Counter(f"{self.name}.bytes-in")
        self.bytes_out = Counter(f"{self.name}.bytes-out")

    def run(
        self,
        src: "DeviceBuffer",
        src_size: int,
        dest: "DeviceBuffer",
        operation: typing.Callable[[Payload], Payload] | None = None,
        flow: str | None = None,
    ) -> "Process":
        """Process `src_size` bytes from `src` into `dest`.

        `operation` overrides the engine's default computation for this
        invocation (e.g. decompression on the read path). The returned
        process fires with the output :class:`Payload` after the result
        is back in device memory and the host has been notified over
        PCIe.
        """
        return self.sim.process(self._run(src, src_size, dest, operation, flow), name=self.name)

    def _run(
        self,
        src: "DeviceBuffer",
        src_size: int,
        dest: "DeviceBuffer",
        operation: typing.Callable[[Payload], Payload] | None,
        flow: str | None = None,
    ) -> typing.Generator:
        payload = src.payload
        if payload is None:
            raise ValueError(f"{self.name}: source buffer holds no payload")
        if src_size > src.size:
            raise ValueError(f"{self.name}: src_size {src_size} exceeds buffer {src.size}")
        # Fetch input from device memory.
        yield self.device.hbm.read(src_size, flow=flow)
        # Stream through the engine; setup latency pipelines (it delays
        # this block without stalling the next one).
        slot = self._unit.request()
        yield slot
        try:
            occupancy = self.profile.occupancy_time(src_size)
            if self.fault_plan is not None:
                occupancy *= self.fault_plan.slowdown(self.sim.now)
            yield self.sim.timeout(occupancy)
        finally:
            self._unit.release(slot)
        if self.profile.setup_time:
            yield self.sim.timeout(self.profile.setup_time)
        result = (operation or self.operation)(payload)
        if result.size > dest.size:
            raise ValueError(
                f"{self.name}: result ({result.size} B) exceeds dest buffer ({dest.size} B)"
            )
        # Write the result back to device memory and notify the host.
        yield self.device.hbm.write(result.size, flow=flow)
        dest.payload = result
        yield self.device.pcie.dma_write(self.device.spec.notify_bytes)
        self.blocks_processed.add()
        self.bytes_in.add(src_size)
        self.bytes_out.add(result.size)
        return result

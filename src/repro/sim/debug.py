"""Simulation debugging: invariant audits and deterministic fault injection.

The discrete-event substrate and the AAMS datapath carry three implicit
promises — bytes are conserved end to end, messages complete in PSN
order, and no resource slot / store waiter / process is leaked — but a
promise nobody checks is a bug waiting for a figure to look wrong. This
module makes the checks explicit:

- :class:`DrainAuditor` inspects a drained simulator and reports leaked
  :class:`~repro.sim.resources.Resource` slots, getters/putters stranded
  on a :class:`~repro.sim.resources.Store`, and non-daemon
  :class:`~repro.sim.process.Process` objects still suspended (with the
  event each one is parked on);
- :class:`FlowLedger` accumulates flow-tagged byte counts from
  :class:`~repro.sim.bandwidth.BandwidthServer` transfers so that
  ``bytes in == bytes out`` can be asserted across Split/Assemble,
  compression, and replication fan-out;
- :class:`FaultPlan` is a seeded, replayable schedule of loss bursts,
  PCIe stall windows, and engine slowdowns, injected into
  :mod:`repro.net.roce`, :mod:`repro.hostmodel.pcie`, and
  :mod:`repro.core.engines`.

See ``docs/debugging.md`` for usage and for reproducing a failure from
a seed.
"""

from __future__ import annotations

import bisect
import dataclasses
import random
import typing

from repro.sim.events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class InvariantViolation(SimulationError):
    """A checked simulation invariant does not hold."""


# ---------------------------------------------------------------------------
# Drain auditing
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AuditFinding:
    """One invariant violation found by the auditor."""

    kind: str  # leaked-slot | stranded-request | stranded-getter |
    #            stranded-putter | stuck-process | flow-imbalance
    subject: str  # name of the offending object
    detail: str  # human-readable specifics

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclasses.dataclass
class AuditReport:
    """The auditor's verdict over one simulator."""

    findings: list[AuditFinding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant violation was found."""
        return not self.findings

    def by_kind(self, kind: str) -> list[AuditFinding]:
        """Findings of one kind (e.g. ``"leaked-slot"``)."""
        return [f for f in self.findings if f.kind == kind]

    def raise_if_dirty(self) -> None:
        """Raise :class:`InvariantViolation` listing every finding."""
        if self.findings:
            lines = "\n".join(f"  - {finding}" for finding in self.findings)
            raise InvariantViolation(
                f"drain audit found {len(self.findings)} invariant violation(s):\n{lines}"
            )

    def __str__(self) -> str:
        if self.ok:
            return "<AuditReport clean>"
        return "\n".join(str(finding) for finding in self.findings)


def _waiting_processes(event: Event) -> list["Process"]:
    """Processes parked on `event` (via their bound ``_resume`` callback)."""
    from repro.sim.process import Process

    owners = []
    for callback in event.callbacks or ():
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            owners.append(owner)
    return owners


def _only_daemons(event: Event) -> bool:
    """True when every process parked on `event` is a daemon service loop."""
    waiters = _waiting_processes(event)
    return bool(waiters) and all(process.daemon for process in waiters)


class DrainAuditor:
    """Checks a simulator's resource/store/process invariants at drain.

    Meaningful once the event queue has drained (``sim.peek() == inf``):
    at that point every still-granted resource slot is leaked, every
    queued request or store waiter is stranded forever, and every alive
    non-daemon process is stuck. Attached :class:`FlowLedger` expectations
    are verified as well.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def audit(self) -> AuditReport:
        """Inspect the simulator and return an :class:`AuditReport`."""
        report = AuditReport()
        if self.sim._queue:
            report.findings.append(
                AuditFinding(
                    kind="not-drained",
                    subject=repr(self.sim),
                    detail=f"{len(self.sim._queue)} event(s) still queued; audit is partial",
                )
            )
        self._audit_resources(report)
        self._audit_stores(report)
        self._audit_processes(report)
        self._audit_ledgers(report)
        return report

    def check(self) -> None:
        """Audit and raise :class:`InvariantViolation` on any finding."""
        self.audit().raise_if_dirty()

    # -- per-category sweeps ----------------------------------------------

    def _audit_resources(self, report: AuditReport) -> None:
        for resource in self.sim.tracked("resource"):
            if resource.in_use > 0:
                report.findings.append(
                    AuditFinding(
                        kind="leaked-slot",
                        subject=resource.name,
                        detail=f"{resource.in_use}/{resource.capacity} slot(s) still granted",
                    )
                )
            for request in resource.waiting_requests():
                if _only_daemons(request):
                    continue
                report.findings.append(
                    AuditFinding(
                        kind="stranded-request",
                        subject=resource.name,
                        detail=f"queued request (priority={request.priority}) will never be granted",
                    )
                )

    def _audit_stores(self, report: AuditReport) -> None:
        for store in self.sim.tracked("store"):
            for getter in store._getters:
                if _only_daemons(getter):
                    continue
                report.findings.append(
                    AuditFinding(
                        kind="stranded-getter",
                        subject=store.name,
                        detail=self._waiter_detail(getter),
                    )
                )
            for putter, item in store._putters:
                if _only_daemons(putter):
                    continue
                report.findings.append(
                    AuditFinding(
                        kind="stranded-putter",
                        subject=store.name,
                        detail=f"blocked putting {item!r}; {self._waiter_detail(putter)}",
                    )
                )

    def _audit_processes(self, report: AuditReport) -> None:
        for process in self.sim.tracked("process"):
            if not process.is_alive or process.daemon:
                continue
            parked_on = process._waiting_on
            report.findings.append(
                AuditFinding(
                    kind="stuck-process",
                    subject=process.name,
                    detail=f"suspended forever on {parked_on!r}",
                )
            )

    def _audit_ledgers(self, report: AuditReport) -> None:
        for ledger in self.sim.tracked("ledger"):
            for detail in ledger.imbalances():
                report.findings.append(
                    AuditFinding(kind="flow-imbalance", subject=ledger.name, detail=detail)
                )

    @staticmethod
    def _waiter_detail(event: Event) -> str:
        waiters = _waiting_processes(event)
        if not waiters:
            return "no process attached (event created and abandoned)"
        names = ", ".join(process.name for process in waiters)
        return f"waited on forever by: {names}"


# ---------------------------------------------------------------------------
# Byte-conservation accounting
# ---------------------------------------------------------------------------


class FlowLedger:
    """Per-flow byte accounting across named measurement points.

    Bandwidth servers (and everything built on them: PCIe directions,
    HBM ports, NIC tx/rx) record ``(point, flow, nbytes)`` triples here
    for flow-tagged transfers. A test then asserts conservation, e.g.
    that the payload bytes written to HBM by Split equal the payload
    bytes read back by Assemble times the replication factor.
    """

    def __init__(self, sim: "Simulator | None" = None, name: str = "ledger") -> None:
        self.name = name
        self._cells: dict[str, dict[str, int]] = {}
        self._expectations: list[tuple[str, tuple[str, ...], tuple[str, ...], float]] = []
        self._probes: list[typing.Callable[["FlowLedger"], None]] = []
        if sim is not None:
            track = getattr(sim, "_track", None)
            if track is not None:
                track("ledger", self)

    def record(self, point: str, flow: str, nbytes: int) -> None:
        """Account `nbytes` of `flow` observed at measurement `point`."""
        if nbytes < 0:
            raise SimulationError(f"negative byte count {nbytes} for flow {flow!r}")
        self._cells.setdefault(flow, {})[point] = (
            self._cells.get(flow, {}).get(point, 0) + nbytes
        )

    def set_level(self, point: str, flow: str, nbytes: int) -> None:
        """Set `flow`'s cell at `point` to an absolute level.

        For *stock* measurement points — bytes currently held somewhere
        (a cache, a queue) rather than bytes that moved through a wire.
        Stocks make conservation closable: ``fills == drains + held``.
        """
        if nbytes < 0:
            raise SimulationError(f"negative byte level {nbytes} for flow {flow!r}")
        self._cells.setdefault(flow, {})[point] = nbytes

    def add_probe(self, probe: typing.Callable[["FlowLedger"], None]) -> None:
        """Register a callback refreshing stock levels before each audit.

        Probes run at the top of :meth:`imbalances`, typically calling
        :meth:`set_level` with a live occupancy figure, so standing
        expectations see current — not last-recorded — stock.
        """
        self._probes.append(probe)

    def total(self, flow: str, *points: str) -> int:
        """Bytes of `flow` summed over `points` (0 when never seen)."""
        cells = self._cells.get(flow, {})
        return sum(cells.get(point, 0) for point in points)

    def flows(self) -> tuple[str, ...]:
        """All flow ids seen so far."""
        return tuple(self._cells)

    def points(self, flow: str) -> dict[str, int]:
        """Per-point byte totals of one flow."""
        return dict(self._cells.get(flow, {}))

    def expect_balanced(
        self,
        flow: str,
        inputs: typing.Sequence[str],
        outputs: typing.Sequence[str],
        scale: float = 1.0,
    ) -> None:
        """Declare ``sum(inputs) * scale == sum(outputs)`` for `flow`.

        `scale` expresses deliberate amplification — e.g. ``3.0`` for a
        3-replica fan-out of the same bytes. Checked by
        :meth:`imbalances` (and therefore by the drain auditor).
        """
        self._expectations.append((flow, tuple(inputs), tuple(outputs), scale))

    def imbalances(self) -> list[str]:
        """Descriptions of every declared expectation that does not hold."""
        for probe in self._probes:
            probe(self)
        problems = []
        for flow, inputs, outputs, scale in self._expectations:
            expected = self.total(flow, *inputs) * scale
            observed = self.total(flow, *outputs)
            if abs(expected - observed) > 1e-9:
                problems.append(
                    f"flow {flow!r}: {'+'.join(inputs)} * {scale:g} = {expected:g} B "
                    f"but {'+'.join(outputs)} = {observed} B"
                )
        return problems

    def assert_balanced(
        self,
        flow: str,
        inputs: typing.Sequence[str],
        outputs: typing.Sequence[str],
        scale: float = 1.0,
    ) -> None:
        """One-shot conservation check; raises :class:`InvariantViolation`."""
        self.expect_balanced(flow, inputs, outputs, scale)
        problems = self.imbalances()
        self._expectations.pop()
        if problems:
            raise InvariantViolation(problems[-1])

    def attach(self, *servers: typing.Any) -> "FlowLedger":
        """Attach this ledger to bandwidth servers (or objects exposing them).

        Accepts :class:`~repro.sim.bandwidth.BandwidthServer` instances
        directly, or composites with an ``attach_ledger`` of their own
        (e.g. :class:`~repro.hostmodel.pcie.PcieLink`,
        :class:`~repro.hostmodel.memory.MemorySubsystem`,
        :class:`~repro.net.link.NetworkPort`).
        """
        for server in servers:
            server.attach_ledger(self)
        return self

    def __repr__(self) -> str:
        return f"<FlowLedger {self.name!r} flows={len(self._cells)}>"


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """One [start, end) window of simulated time with a magnitude."""

    start: float
    end: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(f"empty fault window [{self.start}, {self.end})")

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    The plan is pure data plus one seeded RNG: running the same plan
    against the same (deterministic) simulation replays the exact same
    fault sequence, so a failure found under injection reproduces from
    ``FaultPlan(seed=...)`` and the window list alone. This replaces the
    ad-hoc ``loss_rate`` coin-flip as the only way to shake the stack.

    Components consume the plan where faults physically land:

    - :class:`~repro.net.roce.RoceEndpoint` asks :meth:`frame_lost` per
      transmission attempt (loss bursts);
    - :class:`~repro.hostmodel.pcie.PcieLink` asks :meth:`stall_delay`
      before each DMA leg (stall windows per direction);
    - :class:`~repro.core.engines.HardwareEngine` scales occupancy by
      :meth:`slowdown` (engine slowdown windows).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._loss: list[FaultWindow] = []
        self._stalls: dict[str, list[FaultWindow]] = {"h2d": [], "d2h": []}
        self._slow: list[FaultWindow] = []

    # -- schedule construction --------------------------------------------

    def add_loss_burst(self, start: float, duration: float, probability: float = 1.0) -> "FaultPlan":
        """Drop frames in [start, start+duration) with `probability`."""
        if not 0.0 < probability <= 1.0:
            raise SimulationError(f"loss probability must be in (0, 1], got {probability!r}")
        self._insert(self._loss, FaultWindow(start, start + duration, probability))
        return self

    def add_pcie_stall(self, start: float, duration: float, direction: str = "both") -> "FaultPlan":
        """Stall PCIe DMA legs starting in [start, start+duration).

        A transfer arriving inside the window waits until the window
        closes before occupying the link (credit exhaustion / completion
        backlog on a real slot).
        """
        if direction not in ("h2d", "d2h", "both"):
            raise SimulationError(f"unknown PCIe direction {direction!r}")
        window = FaultWindow(start, start + duration)
        for key in ("h2d", "d2h") if direction == "both" else (direction,):
            self._insert(self._stalls[key], window)
        return self

    def add_engine_slowdown(self, start: float, duration: float, factor: float) -> "FaultPlan":
        """Multiply engine occupancy time by `factor` inside the window."""
        if factor < 1.0:
            raise SimulationError(f"slowdown factor must be >= 1, got {factor!r}")
        self._insert(self._slow, FaultWindow(start, start + duration, factor))
        return self

    @staticmethod
    def _insert(windows: list[FaultWindow], window: FaultWindow) -> None:
        bisect.insort(windows, window, key=lambda w: w.start)

    # -- queries from instrumented components ------------------------------

    def frame_lost(self, now: float) -> bool:
        """Whether a transmission attempt at `now` is dropped."""
        for window in self._loss:
            if window.covers(now):
                return window.magnitude >= 1.0 or self._rng.random() < window.magnitude
        return False

    def stall_delay(self, now: float, direction: str) -> float:
        """Seconds a PCIe leg in `direction` must wait before starting."""
        delay = 0.0
        when = now
        # Consecutive windows chain: leaving one stall may land in the next.
        for window in self._stalls.get(direction, ()):
            if window.covers(when):
                delay += window.end - when
                when = window.end
        return delay

    def slowdown(self, now: float) -> float:
        """Engine occupancy multiplier at `now` (1.0 outside windows)."""
        for window in self._slow:
            if window.covers(now):
                return window.magnitude
        return 1.0

    def describe(self) -> str:
        """Replay recipe: seed plus every scheduled window."""
        parts = [f"FaultPlan(seed={self.seed})"]
        for window in self._loss:
            parts.append(
                f"  loss  [{window.start:g}, {window.end:g}) p={window.magnitude:g}"
            )
        for direction in ("h2d", "d2h"):
            for window in self._stalls[direction]:
                parts.append(f"  stall {direction} [{window.start:g}, {window.end:g})")
        for window in self._slow:
            parts.append(
                f"  slow  [{window.start:g}, {window.end:g}) x{window.magnitude:g}"
            )
        return "\n".join(parts)

    def __repr__(self) -> str:
        n_faults = len(self._loss) + len(self._slow) + sum(map(len, self._stalls.values()))
        return f"<FaultPlan seed={self.seed} windows={n_faults}>"

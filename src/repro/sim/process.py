"""Generator-backed simulation processes.

A :class:`Process` drives a Python generator: every value the generator
``yield``s must be an :class:`~repro.sim.events.Event`; the process
sleeps until that event fires and is resumed with the event's value
(or has the event's exception thrown into it on failure). A process is
itself an event that fires with the generator's return value, so
processes can wait on each other.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> typing.Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """An event representing a running generator; fires when it returns."""

    __slots__ = ("_generator", "_waiting_on", "daemon", "_poke_name")

    def __init__(
        self,
        sim: "Simulator",
        generator: typing.Generator,
        name: str = "",
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Poke events are created on every resume from an already-fired
        # event; render the name once instead of per resume.
        self._poke_name = "poke:" + self.name
        #: Daemon processes are service loops expected to outlive the
        #: workload; the drain auditor does not report them as stuck.
        self.daemon = daemon
        track = getattr(sim, "_track", None)
        if track is not None:
            track("process", self)
        # Kick the process off via an immediately-succeeding event so that
        # creation order equals start order and creation itself cannot raise
        # model exceptions.
        start = Event(sim, name="start:" + self.name)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is None:
            raise SimulationError(f"cannot interrupt {self!r} while it is being resumed")
        # Detach from the event we were waiting on; it may still fire but
        # must not resume us twice.
        waited = self._waiting_on
        if not waited.processed and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        if not waited.ok and waited.triggered:
            waited.defuse()
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(typing.cast(BaseException, event._value))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - model errors must surface
            if self.callbacks:
                self.fail(exc)
            else:
                # Nobody is waiting on this process; report to the kernel so
                # the failure is not silently dropped.
                self.sim._report_unhandled(exc)
                self.fail(exc)
                self.defuse()
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may only yield events"
            )
        if target.callbacks is None:  # processed
            # Already-fired event: resume on the next kernel step.
            poke = Event(self.sim, name=self._poke_name)
            poke.callbacks.append(self._resume)
            if target._ok:
                poke.succeed(target._value)
            else:
                poke.fail(typing.cast(BaseException, target._value))
            self._waiting_on = poke
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

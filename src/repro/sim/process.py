"""Generator-backed simulation processes.

A :class:`Process` drives a Python generator: every value the generator
``yield``s must be an :class:`~repro.sim.events.Event`; the process
sleeps until that event fires and is resumed with the event's value
(or has the event's exception thrown into it on failure). A process is
itself an event that fires with the generator's return value, so
processes can wait on each other.
"""

from __future__ import annotations

import typing
from heapq import heappush
from types import GeneratorType
from weakref import ref

from repro.sim.events import _PENDING, Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> typing.Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """An event representing a running generator; fires when it returns."""

    __slots__ = ("_generator", "_waiting_on", "daemon", "_poke_name")

    def __init__(
        self,
        sim: "Simulator",
        generator: typing.Generator,
        name: str = "",
        daemon: bool = False,
    ) -> None:
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        # Inlined Event.__init__: processes are created on every request /
        # transfer / fan-out arm, so constructor cost is macro-visible.
        self.sim = sim
        self._name = name or getattr(generator, "__name__", "process")
        self.callbacks: list[typing.Callable[[Event], None]] = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self._waiting_on: Event | None = None
        # Poke events are created on resume from an already-fired event;
        # the name is rendered once, lazily, on the first poke.
        self._poke_name: str | None = None
        #: Daemon processes are service loops expected to outlive the
        #: workload; the drain auditor does not report them as stuck.
        self.daemon = daemon
        refs = getattr(sim, "_process_refs", None)
        if refs is not None:
            refs.append(ref(self))
            # Amortized compaction bound for very long-running sims; the
            # auditor-side read (Simulator.tracked) also compacts.
            if len(refs) > 1_000_000:
                sim._process_refs = [r for r in refs if r() is not None]
        # Kick the process off via an immediately-succeeding event so that
        # creation order equals start order and creation itself cannot raise
        # model exceptions. Built field-by-field: this start event and its
        # zero-delay schedule are pure kernel overhead otherwise.
        start = Event.__new__(Event)
        start.sim = sim
        start._name = "start"
        start.callbacks = [self._resume]
        start._value = None
        start._ok = True
        start._defused = False
        heappush(sim._queue, (sim._now, next(sim._sequence), start))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is None:
            raise SimulationError(f"cannot interrupt {self!r} while it is being resumed")
        # Detach from the event we were waiting on; it may still fire but
        # must not resume us twice.
        waited = self._waiting_on
        if not waited.processed and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        if not waited.ok and waited.triggered:
            waited.defuse()
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(typing.cast(BaseException, event._value))
        except StopIteration as stop:
            # Inlined self.succeed(stop.value): the generator just
            # returned, so the process cannot already be triggered and
            # _ok is still True.
            self._value = stop.value
            sim = self.sim
            heappush(sim._queue, (sim._now, next(sim._sequence), self))
            return
        except BaseException as exc:  # noqa: BLE001 - model errors must surface
            if self.callbacks:
                self.fail(exc)
            else:
                # Nobody is waiting on this process; report to the kernel so
                # the failure is not silently dropped.
                self.sim._report_unhandled(exc)
                self.fail(exc)
                self.defuse()
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may only yield events"
            )
        if target.callbacks is None:  # processed
            # Already-fired event: resume on the next kernel step via a
            # poke event carrying the target's outcome (built inline —
            # this sits on the resume hot path).
            poke = Event.__new__(Event)
            sim = self.sim
            poke.sim = sim
            name = self._poke_name
            if name is None:
                name = self._poke_name = "poke:" + self._name
            poke._name = name
            poke.callbacks = [self._resume]
            poke._value = target._value
            poke._ok = target._ok
            poke._defused = False
            heappush(sim._queue, (sim._now, next(sim._sequence), poke))
            self._waiting_on = poke
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

"""Weighted water-filling (max-min fair) bandwidth allocation.

Used by the analytic scale-up estimator (paper §5.5) and as the fluid
counterpart of :class:`~repro.sim.bandwidth.BandwidthServer` in tests:
given a shared capacity and per-flow demands, each flow receives at most
its demand, capacity is never exceeded, and leftover capacity is
redistributed in proportion to weights.
"""

from __future__ import annotations

import typing


def water_fill(
    capacity: float,
    demands: typing.Sequence[float],
    weights: typing.Sequence[float] | None = None,
) -> list[float]:
    """Allocate `capacity` across flows max-min fairly.

    Returns one allocation per demand. Invariants (property-tested):

    - ``0 <= allocation[i] <= demands[i]``
    - ``sum(allocations) <= capacity`` (equal when total demand >= capacity)
    - a flow is capped below its demand only if every other uncapped flow
      got at least its weighted fair share.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity!r}")
    if any(d < 0 for d in demands):
        raise ValueError("demands must be non-negative")
    if weights is None:
        weights = [1.0] * len(demands)
    if len(weights) != len(demands):
        raise ValueError("weights and demands must have the same length")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")

    allocations = [0.0] * len(demands)
    remaining_capacity = capacity
    active = [i for i in range(len(demands)) if demands[i] > 0]

    # Iteratively saturate the flows whose demand sits below their weighted
    # fair share; each round removes at least one flow, so this terminates
    # in at most len(demands) rounds.
    while active and remaining_capacity > 0:
        weight_sum = sum(weights[i] for i in active)
        share_per_weight = remaining_capacity / weight_sum
        saturated = [i for i in active if demands[i] <= weights[i] * share_per_weight]
        if not saturated:
            # Everyone is bottlenecked by the link: split what remains.
            for i in active:
                allocations[i] = weights[i] * share_per_weight
            return allocations
        for i in saturated:
            allocations[i] = demands[i]
            remaining_capacity -= demands[i]
            active.remove(i)

    return allocations

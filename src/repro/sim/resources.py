"""Queueing resources: counted resources and item stores.

:class:`Resource` models `capacity` identical service slots (CPU cores,
DMA lanes, compression engines): processes ``yield resource.request()``,
hold the slot, then ``resource.release(req)``. Requests are granted in
FIFO order with optional integer priorities.

:class:`Store` is an unbounded (or bounded) FIFO of items used for
message queues: ``yield store.get()`` blocks until an item is available.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heapify, heappop, heappush

from repro.sim.events import _PENDING, Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "priority", "_entry")

    def __init__(self, resource: "Resource", priority: int) -> None:
        # Inlined Event.__init__: a request is created per resource
        # acquisition, which is macro-visible on the kernel hot path.
        self.sim = resource.sim
        self._name = resource._request_name
        self.callbacks: list[typing.Callable[[Event], None]] = []
        self._value: typing.Any = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.priority = priority
        # The waiter-heap entry carrying this request, or None while the
        # request is granted / cancelled / never queued.
        self._entry: list | None = None


class Resource:
    """`capacity` identical slots granted FIFO (ties broken by priority).

    Lower `priority` values are served first; equal priorities keep
    arrival order.

    The waiter queue is a binary heap keyed ``(priority, seq)`` — `seq`
    is a monotonically increasing arrival stamp, so equal priorities pop
    in FIFO order and every enqueue/grant is O(log n) at any depth
    (the previous sorted-list implementation paid O(n) per operation,
    quadratic exactly in the deep-queue overload regimes). Cancelling a
    queued request marks its heap entry dead in O(1); dead entries are
    skipped on pop and compacted when they outnumber live waiters.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self._request_name = "request:" + name
        self.capacity = capacity
        self._in_use = 0
        # Heap of [priority, seq, request]; request is None for entries
        # whose waiter cancelled (lazy deletion).
        self._waiting: list[list] = []
        self._n_waiting = 0
        self._seq = 0
        track = getattr(sim, "_track", None)
        if track is not None:
            track("resource", self)

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return self._n_waiting

    def waiting_requests(self) -> tuple[Request, ...]:
        """Live queued requests in grant order (cancelled entries skipped)."""
        live = [entry for entry in self._waiting if entry[2] is not None]
        live.sort(key=lambda entry: (entry[0], entry[1]))
        return tuple(entry[2] for entry in live)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self, priority)
        if self._in_use < self.capacity and not self._n_waiting:
            self._in_use += 1
            # Inlined req.succeed(req): freshly created, so it cannot
            # already be triggered and _ok is True by construction.
            req._value = req
            sim = self.sim
            heappush(sim._queue, (sim._now, next(sim._sequence), req))
        else:
            entry = [priority, self._seq, req]
            self._seq += 1
            req._entry = entry
            heappush(self._waiting, entry)
            self._n_waiting += 1
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot; the next waiter (if any) is granted."""
        if request.resource is not self:
            raise SimulationError(f"{request!r} does not belong to {self.name!r}")
        if not request.triggered:
            # Cancelling a queued request: mark its heap entry dead.
            entry = request._entry
            if entry is None or entry[2] is not request:
                raise SimulationError(
                    f"{request!r} is not queued on {self.name!r} (already cancelled?)"
                )
            entry[2] = None
            request._entry = None
            self._n_waiting -= 1
            if self._n_waiting == 0:
                self._waiting.clear()
            elif len(self._waiting) > 2 * self._n_waiting + 16:
                self._waiting = [e for e in self._waiting if e[2] is not None]
                heapify(self._waiting)
            return
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._n_waiting:
            waiting = self._waiting
            while True:
                nxt = heappop(waiting)[2]
                if nxt is not None:
                    break
            nxt._entry = None
            self._n_waiting -= 1
            self._in_use += 1
            # Inlined nxt.succeed(nxt): queued requests are untriggered
            # (the triggered branch above handles granted ones).
            nxt._value = nxt
            sim = self.sim
            heappush(sim._queue, (sim._now, next(sim._sequence), nxt))
        elif self._waiting:
            self._waiting.clear()  # only dead entries remained

    def use(self, hold_time: float, priority: int = 0) -> typing.Generator:
        """Process body: acquire a slot, hold it `hold_time`, release it."""
        req = self.request(priority)
        yield req
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release(req)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy,"
            f" {self._n_waiting} waiting>"
        )


class Store:
    """FIFO buffer of items with blocking get and (optionally) bounded put."""

    def __init__(
        self, sim: "Simulator", capacity: float = float("inf"), name: str = "store"
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self._put_name = "put:" + name
        self._get_name = "get:" + name
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, typing.Any]] = deque()
        track = getattr(sim, "_track", None)
        if track is not None:
            track("store", self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: typing.Any) -> Event:
        """Add `item`; fires immediately unless the store is full."""
        event = Event(self.sim, name=self._put_name)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove and return the oldest item; blocks while empty."""
        event = Event(self.sim, name=self._get_name)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, put_item = self._putters.popleft()
                self._items.append(put_item)
                put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

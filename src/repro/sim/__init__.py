"""Discrete-event simulation kernel.

A small, self-contained DES engine in the style of SimPy: a
:class:`~repro.sim.kernel.Simulator` drives a binary-heap event queue;
model behaviour is written as Python generators wrapped in
:class:`~repro.sim.process.Process` objects that ``yield`` events.

Shared hardware (memory buses, PCIe links, network ports, compression
engines) is modeled with :class:`~repro.sim.resources.Resource` and
:class:`~repro.sim.bandwidth.BandwidthServer`; the fluid counterpart used
by analytic estimators lives in :mod:`repro.sim.waterfill`.
"""

from repro.sim.bandwidth import BandwidthServer
from repro.sim.debug import (
    AuditFinding,
    AuditReport,
    DrainAuditor,
    FaultPlan,
    FaultWindow,
    FlowLedger,
    InvariantViolation,
)
from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.kernel import Simulator, add_sim_hook, live_simulators, remove_sim_hook
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.trace import Tracer
from repro.sim.waterfill import water_fill

__all__ = [
    "AllOf",
    "AnyOf",
    "AuditFinding",
    "AuditReport",
    "BandwidthServer",
    "DrainAuditor",
    "Event",
    "FaultPlan",
    "FaultWindow",
    "FlowLedger",
    "InvariantViolation",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "Tracer",
    "add_sim_hook",
    "live_simulators",
    "remove_sim_hook",
    "water_fill",
]

"""Shared-bandwidth servers.

A :class:`BandwidthServer` models a rate-limited pipe — a memory bus, a
PCIe link direction, a NIC port direction, an HBM stack. A transfer of
``n`` bytes occupies one of the server's `lanes` for ``n / lane_rate``
seconds (plus a fixed per-transfer overhead), so queueing delay and
interference between competing traffic emerge from the FIFO discipline,
exactly as the paper's microbenchmarks (Table 1, Fig. 4) probe them on
real hardware.

Rates are bytes/second; see :mod:`repro.units` for conversions.
"""

from __future__ import annotations

import os
import typing

from heapq import heappush

from repro.sim.events import Event, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.debug import FlowLedger
    from repro.sim.kernel import Simulator
    from repro.telemetry.metrics import BandwidthMeter


class BandwidthServer:
    """A FIFO pipe of `rate` bytes/second split across `lanes` equal lanes.

    With ``lanes == 1`` the pipe is a classic single FIFO server; with
    more lanes (e.g. 8 memory channels) transfers proceed in parallel at
    ``rate / lanes`` each, which keeps aggregate bandwidth at `rate`
    while letting small transfers overtake large ones on other lanes.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        name: str = "pipe",
        lanes: int = 1,
        per_transfer_overhead: float = 0.0,
        fast_path: bool | None = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"bandwidth rate must be positive, got {rate!r}")
        if lanes < 1:
            raise SimulationError(f"lane count must be >= 1, got {lanes}")
        self.sim = sim
        self.name = name
        self.rate = rate
        self.lanes = lanes
        self.per_transfer_overhead = per_transfer_overhead
        self._slots = Resource(sim, lanes, name=f"{name}.lanes")
        self._meters: list["BandwidthMeter"] = []
        self._ledgers: list["FlowLedger"] = []
        self.bytes_served = 0
        if fast_path is None:
            fast_path = os.environ.get("REPRO_BW_FAST_PATH", "1") != "0"
        #: Whether uncontended transfers take the slot-free fast path
        #: (analytic completion, one event). ``REPRO_BW_FAST_PATH=0``
        #: turns it off globally for A/B equivalence runs.
        self.fast_path = fast_path
        # Lane-occupancy end times of in-flight fast-path transfers,
        # reaped lazily at each decision point. Invariant: non-empty only
        # while the slot queue is empty and in_use + len(...) <= lanes.
        self._fast_busy: list[float] = []
        self._xfer_name = f"xfer:{name}"
        #: Fast-path / slow-path admission counters (diagnostics and the
        #: perf harness's event-count micro-benchmark).
        self.fast_transfers = 0
        self.slow_transfers = 0

    @property
    def lane_rate(self) -> float:
        """Service rate of a single lane in bytes/second."""
        return self.rate / self.lanes

    @property
    def queue_length(self) -> int:
        """Transfers waiting for a lane right now."""
        return self._slots.queue_length

    @property
    def busy_lanes(self) -> int:
        """Lanes currently serving a transfer (slot-holding or fast-path)."""
        self._reap()
        return self._slots.in_use + len(self._fast_busy)

    def _reap(self) -> None:
        """Drop fast-path lane holds whose service already ended."""
        busy = self._fast_busy
        if busy:
            now = self.sim._now
            keep = [end for end in busy if end > now]
            if len(keep) != len(busy):
                busy[:] = keep

    def _materialize(self) -> None:
        """Convert fast-path lane holds into granted slot requests.

        Called the moment a transfer needs the slow path: every in-flight
        fast transfer claims a real slot (granted immediately — the fast
        path only admits while lanes are free) and schedules its release
        at its analytically known service end, so FIFO queueing behind it
        is exactly what the all-slow-path discipline would produce.
        """
        sim = self.sim
        now = sim._now
        slots = self._slots
        for end in self._fast_busy:
            req = slots.request()
            release = Timeout(sim, end - now)
            release.callbacks.append(
                lambda _event, _req=req: slots.release(_req)
            )
        self._fast_busy.clear()

    def attach_meter(self, meter: "BandwidthMeter") -> None:
        """Record every served byte into `meter` as well."""
        self._meters.append(meter)

    def attach_ledger(self, ledger: "FlowLedger") -> None:
        """Record every flow-tagged transfer into `ledger` (byte-conservation audit)."""
        self._ledgers.append(ledger)

    def account(self, suffix: str, flow: str, nbytes: int) -> None:
        """Book `nbytes` of `flow` at sub-point ``"{name}.{suffix}"``.

        Out-of-band accounting (no pipe time) for bytes that occupied
        the pipe but never reached the consumer — e.g. frames the fabric
        dropped — so exact conservation can be asserted:
        ``tx == rx + tx.dropped``.
        """
        for ledger in self._ledgers:
            ledger.record(f"{self.name}.{suffix}", flow, nbytes)

    def service_time(self, nbytes: int) -> float:
        """Time one lane is *occupied* pushing `nbytes` (without queueing).

        The per-transfer overhead is propagation latency: it delays the
        transfer's completion but does not occupy the lane (the pipe
        keeps serving others while earlier bits are in flight).
        """
        # Same expression as both transfer paths, so the estimate is
        # bit-identical to the simulated occupancy.
        return nbytes * self.lanes / self.rate

    def transfer(
        self,
        nbytes: int,
        priority: int = 0,
        meter: "BandwidthMeter | None" = None,
        flow: str | None = None,
    ) -> Event:
        """Start a transfer; the returned event fires when the last byte lands.

        `flow` optionally tags the transfer with a flow id so attached
        :class:`~repro.sim.debug.FlowLedger` instances can account the
        bytes for end-to-end conservation checks.

        Uncontended transfers (a lane free, nothing queued) take the
        slot-free fast path: completion time is computed analytically and
        a single event carries the service time, the per-transfer
        overhead, and the byte accounting — no slot request/release, no
        generator process. Contended transfers fall back to the exact
        FIFO slow path; any fast-path transfers still in flight first
        claim real slots (:meth:`_materialize`) so queueing order is
        identical to an all-slow-path run. Both paths fire with the
        transfer's byte count at the same simulated times and book the
        same meter/ledger records.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer {nbytes} bytes")
        self._reap()
        slots = self._slots
        if (
            self.fast_path
            and not slots._n_waiting
            and slots._in_use + len(self._fast_busy) < self.lanes
        ):
            self.fast_transfers += 1
            sim = self.sim
            service = nbytes * self.lanes / self.rate
            end = sim._now + service
            self._fast_busy.append(end)
            # Built field-by-field and pushed at an *absolute* time: the
            # slow path fires its service timeout at ``now + service``
            # and only then adds the overhead, so the completion instant
            # is ``(now + service) + overhead`` — the same association
            # must be used here or completion times differ in the last
            # ulp and the fast/slow equivalence property breaks.
            done = Timeout.__new__(Timeout)
            done.sim = sim
            done._name = self._xfer_name
            done.callbacks = []
            done._value = nbytes
            done._ok = True
            done._defused = False
            done.delay = service + self.per_transfer_overhead
            heappush(
                sim._queue,
                (end + self.per_transfer_overhead, next(sim._sequence), done),
            )
            # Booking runs before any waiter: the callback was appended
            # before the caller could yield this event.
            done.callbacks.append(
                lambda _event: self._book(nbytes, meter, flow)
            )
            return done
        if self._fast_busy:
            self._materialize()
        self.slow_transfers += 1
        return Process(
            self.sim, self._transfer(nbytes, priority, meter, flow), name=self._xfer_name
        )

    def _book(
        self, nbytes: int, meter: "BandwidthMeter | None", flow: str | None
    ) -> None:
        """Account a completed transfer (both paths, at completion time)."""
        self.bytes_served += nbytes
        now = self.sim.now
        for attached in self._meters:
            attached.record(now, nbytes)
        if meter is not None:
            meter.record(now, nbytes)
        if flow is not None:
            for ledger in self._ledgers:
                ledger.record(self.name, flow, nbytes)

    def _transfer(
        self, nbytes: int, priority: int, meter: "BandwidthMeter | None", flow: str | None
    ) -> typing.Generator:
        req = self._slots.request(priority)
        yield req
        try:
            yield Timeout(self.sim, nbytes * self.lanes / self.rate)
        finally:
            self._slots.release(req)
        if self.per_transfer_overhead > 0:
            yield Timeout(self.sim, self.per_transfer_overhead)
        self._book(nbytes, meter, flow)
        return nbytes

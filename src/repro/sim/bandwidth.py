"""Shared-bandwidth servers.

A :class:`BandwidthServer` models a rate-limited pipe — a memory bus, a
PCIe link direction, a NIC port direction, an HBM stack. A transfer of
``n`` bytes occupies one of the server's `lanes` for ``n / lane_rate``
seconds (plus a fixed per-transfer overhead), so queueing delay and
interference between competing traffic emerge from the FIFO discipline,
exactly as the paper's microbenchmarks (Table 1, Fig. 4) probe them on
real hardware.

Rates are bytes/second; see :mod:`repro.units` for conversions.
"""

from __future__ import annotations

import typing

from repro.sim.events import SimulationError
from repro.sim.process import Process
from repro.sim.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.debug import FlowLedger
    from repro.sim.kernel import Simulator
    from repro.telemetry.metrics import BandwidthMeter


class BandwidthServer:
    """A FIFO pipe of `rate` bytes/second split across `lanes` equal lanes.

    With ``lanes == 1`` the pipe is a classic single FIFO server; with
    more lanes (e.g. 8 memory channels) transfers proceed in parallel at
    ``rate / lanes`` each, which keeps aggregate bandwidth at `rate`
    while letting small transfers overtake large ones on other lanes.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        name: str = "pipe",
        lanes: int = 1,
        per_transfer_overhead: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"bandwidth rate must be positive, got {rate!r}")
        if lanes < 1:
            raise SimulationError(f"lane count must be >= 1, got {lanes}")
        self.sim = sim
        self.name = name
        self.rate = rate
        self.lanes = lanes
        self.per_transfer_overhead = per_transfer_overhead
        self._slots = Resource(sim, lanes, name=f"{name}.lanes")
        self._meters: list["BandwidthMeter"] = []
        self._ledgers: list["FlowLedger"] = []
        self.bytes_served = 0

    @property
    def lane_rate(self) -> float:
        """Service rate of a single lane in bytes/second."""
        return self.rate / self.lanes

    @property
    def queue_length(self) -> int:
        """Transfers waiting for a lane right now."""
        return self._slots.queue_length

    @property
    def busy_lanes(self) -> int:
        """Lanes currently serving a transfer."""
        return self._slots.in_use

    def attach_meter(self, meter: "BandwidthMeter") -> None:
        """Record every served byte into `meter` as well."""
        self._meters.append(meter)

    def attach_ledger(self, ledger: "FlowLedger") -> None:
        """Record every flow-tagged transfer into `ledger` (byte-conservation audit)."""
        self._ledgers.append(ledger)

    def account(self, suffix: str, flow: str, nbytes: int) -> None:
        """Book `nbytes` of `flow` at sub-point ``"{name}.{suffix}"``.

        Out-of-band accounting (no pipe time) for bytes that occupied
        the pipe but never reached the consumer — e.g. frames the fabric
        dropped — so exact conservation can be asserted:
        ``tx == rx + tx.dropped``.
        """
        for ledger in self._ledgers:
            ledger.record(f"{self.name}.{suffix}", flow, nbytes)

    def service_time(self, nbytes: int) -> float:
        """Time one lane is *occupied* pushing `nbytes` (without queueing).

        The per-transfer overhead is propagation latency: it delays the
        transfer's completion but does not occupy the lane (the pipe
        keeps serving others while earlier bits are in flight).
        """
        return nbytes / self.lane_rate

    def transfer(
        self,
        nbytes: int,
        priority: int = 0,
        meter: "BandwidthMeter | None" = None,
        flow: str | None = None,
    ) -> Process:
        """Start a transfer; the returned process fires when the last byte lands.

        `flow` optionally tags the transfer with a flow id so attached
        :class:`~repro.sim.debug.FlowLedger` instances can account the
        bytes for end-to-end conservation checks.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer {nbytes} bytes")
        return self.sim.process(
            self._transfer(nbytes, priority, meter, flow), name=f"xfer:{self.name}"
        )

    def _transfer(
        self, nbytes: int, priority: int, meter: "BandwidthMeter | None", flow: str | None
    ) -> typing.Generator:
        req = self._slots.request(priority)
        yield req
        try:
            yield self.sim.timeout(self.service_time(nbytes))
        finally:
            self._slots.release(req)
        if self.per_transfer_overhead > 0:
            yield self.sim.timeout(self.per_transfer_overhead)
        self.bytes_served += nbytes
        for attached in self._meters:
            attached.record(self.sim.now, nbytes)
        if meter is not None:
            meter.record(self.sim.now, nbytes)
        if flow is not None:
            for ledger in self._ledgers:
                ledger.record(self.name, flow, nbytes)
        return nbytes

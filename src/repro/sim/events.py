"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes wait on events by ``yield``-ing them; the kernel resumes the
process when the event fires. Events either *succeed* with a value or
*fail* with an exception (which is re-raised inside every waiting
process).

Events are hot-path objects — a run creates one per timeout, queue
operation, and resource grant — so the class is slotted and display
names are computed lazily: constructors store raw parts and the
:attr:`Event.name` property renders them only when diagnostics
(tracers, the drain auditor, ``repr``) actually read the name.
"""

from __future__ import annotations

import typing
from heapq import heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: Sentinel for "event has not fired yet".
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, negative delay, ...)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (created), *triggered*
    (scheduled on the event queue with a value), and *processed* (the
    kernel has run its callbacks). ``yield``-ing a processed event
    resumes the process immediately on the next kernel step.
    """

    __slots__ = ("sim", "_name", "callbacks", "_value", "_ok", "_defused", "__weakref__")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self._name = name
        self.callbacks: list[typing.Callable[[Event], None]] = []
        self._value: typing.Any = _PENDING
        self._ok = True
        self._defused = False

    @property
    def name(self) -> str:
        """Display name; subclasses may render it lazily."""
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's result; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: typing.Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with `value` after `delay`."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        if delay:
            self.sim._schedule(self, delay)
        else:
            # Inlined zero-delay schedule — the overwhelmingly common
            # case (resource grants, process starts, queue handoffs).
            sim = self.sim
            heappush(sim._queue, (sim._now, next(sim._sequence), self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see `exception` raised."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: typing.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inline the Event constructor and the schedule: timeouts are the
        # single most frequent event, and the name is rendered lazily.
        self.sim = sim
        self._name = ""
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(sim._queue, (sim._now + delay, next(sim._sequence), self))

    @property
    def name(self) -> str:
        return self._name or f"timeout({self.delay:g})"

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self._events = list(events)
        self._done = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("all events of a condition must share a simulator")
        for event in self._events:
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event._value))
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> typing.Any:
        return {
            event: event._value
            for event in self._events
            if event.processed and event.ok
        }


class AllOf(_Condition):
    """Fires when every constituent event has been processed (fails fast on failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= len(self._events)


class AnyOf(_Condition):
    """Fires as soon as any constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1 or not self._events

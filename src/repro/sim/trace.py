"""Event tracing for simulation debugging.

Attach a :class:`Tracer` to a simulator and every processed event is
recorded as ``(time, event name)`` — the simulation's flight recorder.
Use it to answer "what was the model doing around t=X?" when a test
deadlocks or a latency number looks wrong:

    tracer = Tracer(sim, name_filter="split")
    sim.run(until=...)
    print(tracer.format(last=30))

Tracing costs nothing when no tracer is attached; an attached tracer
keeps at most `limit` records (oldest dropped).
"""

from __future__ import annotations

import collections
import typing

from repro.units import to_usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator


class Tracer:
    """Records processed events, optionally filtered by name substring."""

    def __init__(
        self,
        sim: "Simulator",
        limit: int = 10_000,
        name_filter: str | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError(f"trace limit must be >= 1, got {limit}")
        self.sim = sim
        self.limit = limit
        self.name_filter = name_filter
        self.records: collections.deque[tuple[float, str]] = collections.deque(maxlen=limit)
        self.events_seen = 0
        self._active = True
        sim._tracers.append(self)

    def _record(self, when: float, event: "Event") -> None:
        # _active is authoritative: even if a stopped tracer is somehow
        # still (or again) in sim._tracers, it records nothing until
        # start() re-arms it.
        if not self._active:
            return
        name = event.name or type(event).__name__
        if self.name_filter is not None and self.name_filter not in name:
            return
        self.events_seen += 1
        self.records.append((when, name))

    def stop(self) -> None:
        """Detach from the simulator; records stay readable. Idempotent."""
        self._active = False
        if self in self.sim._tracers:
            self.sim._tracers.remove(self)

    def start(self) -> None:
        """Re-attach after :meth:`stop` and resume recording. Idempotent.

        Existing records are kept — a stop/start cycle leaves a gap in
        the trace rather than clearing it.
        """
        self._active = True
        if self not in self.sim._tracers:
            self.sim._tracers.append(self)

    def between(self, start: float, end: float) -> list[tuple[float, str]]:
        """Records whose timestamp falls in [start, end]."""
        return [(when, name) for when, name in self.records if start <= when <= end]

    def format(self, last: int = 50) -> str:
        """The most recent `last` records, one per line, times in us."""
        tail = list(self.records)[-last:]
        if not tail:
            return "(no events recorded)"
        return "\n".join(f"{to_usec(when):12.3f} us  {name}" for when, name in tail)

"""The simulation kernel: a time-ordered event loop.

:class:`Simulator` owns the clock and the event heap. Model code creates
events through the factory helpers (:meth:`Simulator.timeout`,
:meth:`Simulator.event`, :meth:`Simulator.process`) and advances the
world with :meth:`Simulator.run`.
"""

from __future__ import annotations

import typing
import weakref
from heapq import heappop, heappush
from itertools import count

from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process

#: Every live simulator, weakly referenced. The drain auditor (and the
#: test harness) uses this to find simulators created during a test
#: without threading the instance through every call site.
_live_simulators: "weakref.WeakSet[Simulator]" = weakref.WeakSet()

#: Hooks invoked with each newly constructed Simulator. Installed by
#: observability sessions (repro.telemetry.spans.TraceSession) to attach
#: span collectors / metric registries to every simulator an experiment
#: creates, without threading a collector through every run() signature.
_sim_hooks: list[typing.Callable[["Simulator"], None]] = []


def live_simulators() -> tuple["Simulator", ...]:
    """Snapshot of all simulators currently alive in this interpreter."""
    return tuple(_live_simulators)


def add_sim_hook(hook: typing.Callable[["Simulator"], None]) -> None:
    """Call `hook(sim)` for every :class:`Simulator` constructed from now on."""
    if hook not in _sim_hooks:
        _sim_hooks.append(hook)


def remove_sim_hook(hook: typing.Callable[["Simulator"], None]) -> None:
    """Stop calling `hook` for new simulators (no-op if not installed)."""
    try:
        _sim_hooks.remove(hook)
    except ValueError:
        pass


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Time is a float in seconds starting at ``0.0``. Events scheduled for
    the same instant are processed in scheduling order (FIFO), which
    keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = count()
        self._steps = 0
        self._unhandled: list[BaseException] = []
        self._tracers: list[typing.Any] = []  # see repro.sim.trace
        # Weak registries of model objects, per category ("resource",
        # "store", "process", "ledger"). Consumed by repro.sim.debug's
        # DrainAuditor; model code never reads these.
        self._tracked: dict[str, weakref.WeakSet] = {}
        # Observability attach points (see repro.telemetry.spans and
        # .registry): None means untraced, the common case — every
        # instrumentation site guards on that before doing any work.
        self._span_collector: typing.Any = None
        self._metrics_registry: typing.Any = None
        _live_simulators.add(self)
        for hook in _sim_hooks:
            hook(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events processed so far (the perf harness reads this)."""
        return self._steps

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that fires `delay` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str = "", daemon: bool = False) -> Process:
        """Wrap a generator as a running process; it starts at the current time.

        `daemon` marks forever-loop service processes (receive loops,
        worker pools) that are *expected* to still be parked on an event
        when the simulation drains; the drain auditor skips them.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event that fires when all of `events` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event that fires when any of `events` has fired."""
        return AnyOf(self, events)

    # -- scheduling and the main loop ------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} in the past (delay={delay!r})")
        heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def _report_unhandled(self, exc: BaseException) -> None:
        self._unhandled.append(exc)

    def _track(self, category: str, obj: typing.Any) -> None:
        """Register `obj` in the weak registry for `category`."""
        registry = self._tracked.get(category)
        if registry is None:
            registry = self._tracked[category] = weakref.WeakSet()
        registry.add(obj)

    def tracked(self, category: str) -> tuple:
        """Live tracked objects of `category` ("resource", "store", ...)."""
        registry = self._tracked.get(category)
        return tuple(registry) if registry is not None else ()

    def step(self) -> None:
        """Process the single next event; raises if the queue is empty."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heappop(self._queue)
        self._now = when
        self._steps += 1
        if self._tracers:
            for tracer in self._tracers:
                tracer._record(when, event)
        callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            self._unhandled.append(typing.cast(BaseException, event._value))
        if self._unhandled:
            # Several processes may fail within one step (e.g. one event
            # resumes many waiters). Raise the first but keep the others
            # attached so no failure is silently lost.
            exc = self._unhandled[0]
            siblings = tuple(self._unhandled[1:])
            self._unhandled.clear()
            if hasattr(exc, "add_note"):  # PEP 678, Python 3.11+
                for other in siblings:
                    exc.add_note(f"also unhandled in the same step: {other!r}")
            if siblings:
                try:
                    exc.concurrent_failures = siblings  # type: ignore[attr-defined]
                except (AttributeError, TypeError):  # exceptions with __slots__
                    pass
            raise exc

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        `until` may be ``None`` (drain the queue), a float deadline in
        seconds, or an :class:`Event` whose value is returned.
        """
        stop_event: Event | None = None
        deadline: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"deadline {deadline!r} is in the past (now={self._now!r})")

        if stop_event is None and deadline is None:
            # Drain mode: no per-step termination checks needed.
            step = self.step
            while self._queue:
                step()
        else:
            while self._queue:
                if stop_event is not None and stop_event.callbacks is None:  # processed
                    break
                if deadline is not None and self._queue[0][0] > deadline:
                    self._now = deadline
                    return None
                self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(f"run() ended before {stop_event!r} fired")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event._value)
            return stop_event.value
        if deadline is not None:
            self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.9f} pending={len(self._queue)}>"

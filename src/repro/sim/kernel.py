"""The simulation kernel: a time-ordered event loop.

:class:`Simulator` owns the clock and the event heap. Model code creates
events through the factory helpers (:meth:`Simulator.timeout`,
:meth:`Simulator.event`, :meth:`Simulator.process`) and advances the
world with :meth:`Simulator.run`.
"""

from __future__ import annotations

import math
import typing
import weakref
from heapq import heapify, heappop, heappush
from itertools import count

from repro.sim.events import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process

#: Every live simulator, weakly referenced. The drain auditor (and the
#: test harness) uses this to find simulators created during a test
#: without threading the instance through every call site.
_live_simulators: "weakref.WeakSet[Simulator]" = weakref.WeakSet()

#: Hooks invoked with each newly constructed Simulator. Installed by
#: observability sessions (repro.telemetry.spans.TraceSession) to attach
#: span collectors / metric registries to every simulator an experiment
#: creates, without threading a collector through every run() signature.
_sim_hooks: list[typing.Callable[["Simulator"], None]] = []


def live_simulators() -> tuple["Simulator", ...]:
    """Snapshot of all simulators currently alive in this interpreter."""
    return tuple(_live_simulators)


def add_sim_hook(hook: typing.Callable[["Simulator"], None]) -> None:
    """Call `hook(sim)` for every :class:`Simulator` constructed from now on."""
    if hook not in _sim_hooks:
        _sim_hooks.append(hook)


def remove_sim_hook(hook: typing.Callable[["Simulator"], None]) -> None:
    """Stop calling `hook` for new simulators (no-op if not installed)."""
    try:
        _sim_hooks.remove(hook)
    except ValueError:
        pass


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Time is a float in seconds starting at ``0.0``. Events scheduled for
    the same instant are processed in scheduling order (FIFO), which
    keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = count()
        self._steps = 0
        self._unhandled: list[BaseException] = []
        self._tracers: list[typing.Any] = []  # see repro.sim.trace
        # Weak registries of model objects, per category ("resource",
        # "store", "process", "ledger"). Consumed by repro.sim.debug's
        # DrainAuditor; model code never reads these. Processes — the
        # hottest tracked constructor by orders of magnitude — go into a
        # plain list of bare weakrefs instead of a WeakSet: appending a
        # callbackless weakref is several times cheaper than a WeakSet
        # add, and tracked() filters dead refs on the (rare) read side.
        self._process_refs: list[weakref.ref] = []
        self._tracked: dict[str, weakref.WeakSet] = {}
        # Shared fluid-window timeouts keyed by quantized fire time
        # (see fluid_timeout); entries remove themselves on firing.
        self._fluid: dict[float, Timeout] = {}
        # Observability attach points (see repro.telemetry.spans and
        # .registry): None means untraced, the common case — every
        # instrumentation site guards on that before doing any work.
        self._span_collector: typing.Any = None
        self._metrics_registry: typing.Any = None
        _live_simulators.add(self)
        for hook in _sim_hooks:
            hook(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events processed so far (the perf harness reads this)."""
        return self._steps

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """Create an event that fires `delay` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_batch(
        self, delays: typing.Iterable[float], value: typing.Any = None
    ) -> list[Timeout]:
        """Create one timeout per delay, scheduled in a single heap pass.

        The schedule-many primitive for fan-out storms (replication
        arms, cache-fill chunks, per-block completions): for large
        batches the queue is extended and re-heapified once — O(queue) —
        instead of paying one O(log queue) sift per event. Semantically
        identical to ``[self.timeout(d, value) for d in delays]``,
        including relative ordering (sequence numbers are assigned in
        input order).
        """
        queue = self._queue
        now = self._now
        sequence = self._sequence
        events = []
        entries = []
        for delay in delays:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            event = Timeout.__new__(Timeout)
            event.sim = self
            event._name = ""
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event.delay = delay
            events.append(event)
            entries.append((now + delay, next(sequence), event))
        # k pushes cost ~k*log2(n); one heapify costs ~n comparisons.
        if len(entries) * max(1, len(queue).bit_length()) > len(queue):
            queue.extend(entries)
            heapify(queue)
        else:
            for entry in entries:
                heappush(queue, entry)
        return events

    def fluid_timeout(self, delay: float, window: float, value: typing.Any = None) -> Timeout:
        """A shared timeout, quantized *up* to the end of a `window` slot.

        Every caller whose requested fire time (``now + delay``) lands in
        the same window slot gets the *same* event object — one heap
        entry for an entire storm of co-expiring waits — at the cost of
        firing up to `window` late. Use only where the exact interleaving
        of completions inside one window provably does not matter (e.g.
        homogeneous fan-out arms all awaited together); anything that
        feeds back into queueing decisions must use :meth:`timeout`.

        The shared `value` is delivered to every waiter, so per-waiter
        values are not supported; entries clean themselves out of the
        bucket table when they fire.
        """
        if window <= 0:
            raise SimulationError(f"fluid window must be positive, got {window!r}")
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        bucket = math.ceil((self._now + delay) / window) * window
        event = self._fluid.get(bucket)
        if event is None:
            event = Timeout(self, bucket - self._now, value)
            self._fluid[bucket] = event
            event.callbacks.append(lambda _event, _key=bucket: self._fluid.pop(_key, None))
        return event

    def process(self, generator: typing.Generator, name: str = "", daemon: bool = False) -> Process:
        """Wrap a generator as a running process; it starts at the current time.

        `daemon` marks forever-loop service processes (receive loops,
        worker pools) that are *expected* to still be parked on an event
        when the simulation drains; the drain auditor skips them.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event that fires when all of `events` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event that fires when any of `events` has fired."""
        return AnyOf(self, events)

    # -- scheduling and the main loop ------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {event!r} in the past (delay={delay!r})")
        heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def _report_unhandled(self, exc: BaseException) -> None:
        self._unhandled.append(exc)

    def _track(self, category: str, obj: typing.Any) -> None:
        """Register `obj` in the weak registry for `category`."""
        registry = self._tracked.get(category)
        if registry is None:
            registry = self._tracked[category] = weakref.WeakSet()
        registry.add(obj)

    def tracked(self, category: str) -> tuple:
        """Live tracked objects of `category` ("resource", "store", ...)."""
        if category == "process":
            live = [proc for ref in self._process_refs if (proc := ref()) is not None]
            if len(live) < len(self._process_refs):
                self._process_refs = [weakref.ref(proc) for proc in live]
            return tuple(live)
        registry = self._tracked.get(category)
        return tuple(registry) if registry is not None else ()

    def step(self) -> None:
        """Process the single next event; raises if the queue is empty."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heappop(self._queue)
        self._now = when
        self._steps += 1
        if self._tracers:
            for tracer in self._tracers:
                tracer._record(when, event)
        callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            self._unhandled.append(typing.cast(BaseException, event._value))
        if self._unhandled:
            self._raise_unhandled()

    def _raise_unhandled(self) -> typing.NoReturn:
        """Raise the first pending unhandled failure, attaching the rest.

        Several processes may fail within one step (e.g. one event
        resumes many waiters). Raise the first but keep the others
        attached so no failure is silently lost.
        """
        exc = self._unhandled[0]
        siblings = tuple(self._unhandled[1:])
        self._unhandled.clear()
        if hasattr(exc, "add_note"):  # PEP 678, Python 3.11+
            for other in siblings:
                exc.add_note(f"also unhandled in the same step: {other!r}")
        if siblings:
            try:
                exc.concurrent_failures = siblings  # type: ignore[attr-defined]
            except (AttributeError, TypeError):  # exceptions with __slots__
                pass
        raise exc

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        `until` may be ``None`` (drain the queue), a float deadline in
        seconds, or an :class:`Event` whose value is returned.
        """
        stop_event: Event | None = None
        deadline: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"deadline {deadline!r} is in the past (now={self._now!r})")

        if stop_event is None and deadline is None:
            # Drain mode: no per-step termination checks needed, so the
            # body of step() is inlined here with the queue, heappop, and
            # tracer list held in locals — the per-event method call and
            # attribute traffic are measurable at millions of events.
            # The step counter is accumulated locally and folded back in
            # a finally block (nothing reads it mid-callback).
            queue = self._queue
            pop = heappop
            tracers = self._tracers
            unhandled = self._unhandled
            processed = 0
            try:
                while queue:
                    when, _seq, event = pop(queue)
                    self._now = when
                    processed += 1
                    if tracers:
                        for tracer in tracers:
                            tracer._record(when, event)
                    callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        unhandled.append(typing.cast(BaseException, event._value))
                    if unhandled:
                        self._raise_unhandled()
            finally:
                self._steps += processed
        elif deadline is None:
            # Stop-event mode: same inlined dispatch with only the
            # stop-event check in the loop head (experiments run in the
            # until-modes, so they are just as hot as drain mode; the
            # loops are specialized per mode to keep the head minimal).
            queue = self._queue
            pop = heappop
            tracers = self._tracers
            unhandled = self._unhandled
            processed = 0
            try:
                while queue:
                    if stop_event.callbacks is None:  # processed
                        break
                    when, _seq, event = pop(queue)
                    self._now = when
                    processed += 1
                    if tracers:
                        for tracer in tracers:
                            tracer._record(when, event)
                    callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        unhandled.append(typing.cast(BaseException, event._value))
                    if unhandled:
                        self._raise_unhandled()
            finally:
                self._steps += processed
        else:
            # Deadline mode: only the next-event-past-deadline check.
            queue = self._queue
            pop = heappop
            tracers = self._tracers
            unhandled = self._unhandled
            processed = 0
            try:
                while queue:
                    if queue[0][0] > deadline:
                        self._now = deadline
                        return None
                    when, _seq, event = pop(queue)
                    self._now = when
                    processed += 1
                    if tracers:
                        for tracer in tracers:
                            tracer._record(when, event)
                    callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        unhandled.append(typing.cast(BaseException, event._value))
                    if unhandled:
                        self._raise_unhandled()
            finally:
                self._steps += processed

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(f"run() ended before {stop_event!r} fired")
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event._value)
            return stop_event.value
        if deadline is not None:
            self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.9f} pending={len(self._queue)}>"

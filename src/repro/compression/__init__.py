"""Compression substrate.

The paper's middle tier LZ4-compresses every 4 KB block before writing it
to storage; its workloads come from the Silesia compression corpus. This
package provides:

- :mod:`repro.compression.lz4` -- a real, pure-Python implementation of
  the LZ4 block format (compress + decompress), used when the simulated
  datapath carries real bytes;
- :mod:`repro.compression.corpus` -- a deterministic synthetic corpus
  with the Silesia class mix (text, XML, database, binary, medical,
  random), substituting for the corpus files we cannot download;
- :mod:`repro.compression.model` -- throughput/ratio cost models for the
  compressors the paper measures (CPU core, SMT pair, FPGA engine,
  BlueField-2 engine).
"""

from repro.compression.lz4 import CorruptFrameError, lz4_compress, lz4_decompress
from repro.compression.corpus import CorpusFile, SilesiaLikeCorpus
from repro.compression.model import (
    BF2_ENGINE,
    CPU_CORE,
    CPU_SMT_PAIR,
    FPGA_ENGINE,
    CompressorProfile,
    RatioSampler,
    compressed_size,
)

__all__ = [
    "BF2_ENGINE",
    "CPU_CORE",
    "CPU_SMT_PAIR",
    "CorpusFile",
    "CorruptFrameError",
    "CompressorProfile",
    "FPGA_ENGINE",
    "RatioSampler",
    "SilesiaLikeCorpus",
    "compressed_size",
    "lz4_compress",
    "lz4_decompress",
]

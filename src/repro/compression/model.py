"""Compression cost models.

The simulator charges *time* for compression according to who performs
it; these profiles carry the paper's calibration points:

- a single Xeon logical core runs LZ4 at ~2.1 Gb/s, and two SMT threads
  on one physical core reach ~2.7 Gb/s (§5.2);
- each SmartDS FPGA engine processes 4 KB blocks at 100 Gb/s (§5.1);
- the Alveo U280 accelerator engine also reaches ~100 Gb/s (§5.1);
- BlueField-2's on-board compression engine delivers ~40 Gb/s (§3.4).

Compression *output size* comes from a ratio: either measured by really
compressing the block's bytes (functional mode) or drawn from a
corpus-calibrated :class:`RatioSampler` (performance mode).
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.units import gbps


@dataclasses.dataclass(frozen=True)
class CompressorProfile:
    """Throughput profile of one compression resource."""

    name: str
    rate: float  # bytes/second of *input* consumed
    setup_time: float = 0.0  # fixed per-block invocation overhead, seconds

    def time_for(self, nbytes: int) -> float:
        """End-to-end seconds to compress `nbytes` (setup + streaming)."""
        if nbytes < 0:
            raise ValueError(f"cannot compress {nbytes} bytes")
        return self.setup_time + nbytes / self.rate

    def occupancy_time(self, nbytes: int) -> float:
        """Seconds the resource is *exclusively busy* on `nbytes`.

        Hardware engines pipeline: the per-block setup latency delays
        one block's completion but does not stall the next block, so
        only the streaming term counts against engine throughput.
        """
        if nbytes < 0:
            raise ValueError(f"cannot compress {nbytes} bytes")
        return nbytes / self.rate


#: One Xeon logical core running the LZ4 library (paper §5.2).
CPU_CORE = CompressorProfile("cpu-core", rate=gbps(2.1))
#: Two SMT threads sharing a physical core (paper §5.2: ~2.7 Gb/s total).
CPU_SMT_PAIR = CompressorProfile("cpu-smt-pair", rate=gbps(2.7))
#: One SmartDS / Alveo FPGA compression engine (paper §5.1: 100 Gb/s on
#: 4 KB blocks). The setup time is the engine's pipeline depth: §5.2
#: observes that FPGA compression *latency* exceeds the CPU's because of
#: the much lower clock, even though the pipelined throughput is 100 Gb/s.
FPGA_ENGINE = CompressorProfile("fpga-engine", rate=gbps(100), setup_time=18e-6)
#: BlueField-2's hardened compression engine (paper §3.4: ~40 Gb/s;
#: an ASIC block, so its pipeline latency is short).
BF2_ENGINE = CompressorProfile("bf2-engine", rate=gbps(40), setup_time=5e-6)


def compressed_size(nbytes: int, ratio: float) -> int:
    """Output size of compressing `nbytes` at compression factor `ratio`.

    `ratio` is uncompressed/compressed, so 2.0 halves the block. Ratios
    below 1 (incompressible data that expands) are honoured. Output is
    at least 1 byte for non-empty input.
    """
    if nbytes < 0:
        raise ValueError(f"invalid block size {nbytes}")
    if ratio <= 0:
        raise ValueError(f"invalid compression ratio {ratio!r}")
    if nbytes == 0:
        return 0
    return max(1, round(nbytes / ratio))


class RatioSampler:
    """Draws per-block compression ratios from an empirical distribution.

    Calibrate it once from a corpus (``RatioSampler.from_corpus``) and the
    simulator samples a ratio per write request, reproducing the
    block-to-block variability of real data without carrying real bytes.
    """

    def __init__(self, ratios: typing.Sequence[float], seed: int = 0) -> None:
        if not ratios:
            raise ValueError("need at least one calibration ratio")
        if any(r <= 0 for r in ratios):
            raise ValueError("ratios must be positive")
        self._ratios = tuple(ratios)
        self._rng = random.Random(seed)

    @classmethod
    def from_corpus(
        cls, corpus: "typing.Any", block_size: int = 4096, seed: int = 0, sample_limit: int = 128
    ) -> "RatioSampler":
        """Calibrate from a :class:`~repro.compression.corpus.SilesiaLikeCorpus`."""
        return cls(corpus.block_ratios(block_size, sample_limit=sample_limit), seed=seed)

    @classmethod
    def constant(cls, ratio: float) -> "RatioSampler":
        """A degenerate sampler that always returns `ratio`."""
        return cls([ratio])

    @property
    def mean(self) -> float:
        """Mean of the calibration distribution."""
        return sum(self._ratios) / len(self._ratios)

    def sample(self) -> float:
        """Draw one per-block compression ratio."""
        return self._rng.choice(self._ratios)

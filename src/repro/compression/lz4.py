"""Pure-Python LZ4 *block format* codec.

Implements the LZ4 block format (https://github.com/lz4/lz4, the
algorithm the paper offloads to its FPGA engines): a stream of sequences,
each a token byte (literal-length nibble, match-length nibble), optional
LSIC length extensions, literal bytes, a 2-byte little-endian match
offset, and an optional match-length extension. The compressor is the
classic greedy hash-table matcher with the format's end-of-block
restrictions (the last 5 bytes are always literals; no match starts
within the last 12 bytes).

This codec is used for *functional* fidelity (real bytes really get
compressed and restored along the simulated datapath) and to calibrate
the corpus compression ratios; simulated compression *speed* comes from
:mod:`repro.compression.model`.

The compressor's match table is a fixed-size position array like
reference LZ4's (see :data:`HASH_LOG`), with window hashes computed in
one vectorized numpy pass — see ``benchmarks/perf`` and
``docs/performance.md`` for the measured profile.
"""

from __future__ import annotations

import numpy as np

#: Minimum match length the format can encode.
MIN_MATCH = 4
#: No match may start within this many bytes of the end of input.
MF_LIMIT = 12
#: The last sequence must hold at least this many literal bytes.
LAST_LITERALS = 5
#: Maximum distance a match offset can reach back.
MAX_OFFSET = 0xFFFF

#: log2 of the match-table slot count. The table is a fixed-size array of
#: ``2**HASH_LOG`` positions indexed by a multiplicative hash of the
#: 4-byte window (reference LZ4's layout), so compressor memory no longer
#: grows with the input — the previous implementation retained one fresh
#: 4-byte ``bytes`` key per input position in an unbounded dict.
HASH_LOG = 13

#: After ``2**SKIP_TRIGGER`` consecutive match misses the scan starts
#: striding (reference LZ4's skip acceleration): incompressible regions
#: cost O(n / step) instead of a table probe per byte.
SKIP_TRIGGER = 5

#: Stride for chunked match extension: compare this many bytes per slice
#: comparison before falling back to byte-at-a-time for the tail.
_EXTEND_STRIDE = 32

#: Fibonacci multiplicative-hash constant (reference LZ4's 2654435761).
_HASH_MULTIPLIER = np.uint32(2654435761)


class CorruptFrameError(ValueError):
    """Raised when decompression meets malformed input."""


def _write_lsic(out: bytearray, value: int) -> None:
    """Append the LSIC (Linear Small-Integer Code) extension for `value`."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _emit_sequence(
    out: bytearray,
    literals: memoryview,
    offset: int | None,
    match_extra: int,
) -> None:
    """Append one sequence; `offset is None` marks the final literal run.

    `match_extra` is the match length minus :data:`MIN_MATCH`.
    """
    lit_len = len(literals)
    lit_nibble = 15 if lit_len >= 15 else lit_len
    match_nibble = 0 if offset is None else (15 if match_extra >= 15 else match_extra)
    out.append((lit_nibble << 4) | match_nibble)
    if lit_len >= 15:
        _write_lsic(out, lit_len - 15)
    out += literals
    if offset is not None:
        out += offset.to_bytes(2, "little")
        if match_extra >= 15:
            _write_lsic(out, match_extra - 15)


def lz4_compress(
    data: bytes,
    *,
    _hash_log: int = HASH_LOG,
    _stats: dict | None = None,
) -> bytes:
    """Compress `data` into an LZ4 block.

    Round-trips through :func:`lz4_decompress` for arbitrary input. Like
    the reference implementation, incompressible input grows slightly
    (one token plus LSIC bytes of overhead).

    The matcher is reference LZ4's greedy scan, restructured for CPython:

    - Window hashes for every position are computed up front in one
      vectorized numpy pass (4-byte little-endian windows times the
      Fibonacci constant), so the scan loop never does per-position
      arithmetic or allocates per-position ``bytes`` keys.
    - The match table is a fixed array of ``2**_hash_log`` positions,
      overwritten in place — peak size is independent of input length.
      A hash hit is verified with one 4-byte compare (collisions lose a
      match, never correctness).
    - Misses accelerate: after ``2**SKIP_TRIGGER`` consecutive misses the
      scan strides ahead ever faster, so low-redundancy input (random,
      encrypted, already-compressed blocks) costs far less than a probe
      per byte.
    - Match extension compares :data:`_EXTEND_STRIDE`-byte chunks before
      finishing byte-wise.

    `_stats`, when given a dict, receives ``table_slots`` and
    ``peak_table_entries`` (test/diagnostic hook; zero hot-path cost) —
    both are at most ``2**_hash_log`` for any input size.
    """
    src = memoryview(bytes(data))
    n = len(src)
    out = bytearray()
    if n == 0:
        if _stats is not None:
            _stats.update(table_slots=0, peak_table_entries=0)
        out.append(0)  # empty literal run, no match
        return bytes(out)

    match_scan_end = n - MF_LIMIT
    anchor = 0
    i = 0
    raw = src.obj  # the underlying bytes, for fast indexing/slicing
    last_match_start = n - LAST_LITERALS
    stride = _EXTEND_STRIDE

    if match_scan_end > 0:
        # One vectorized pass: hash of the 4-byte window at every position,
        # packed little-endian into a u16 buffer the scan loop indexes.
        windows = np.ndarray(buffer=raw, shape=(n - 3,), dtype="<u4", strides=(1,))
        hashes = memoryview(
            ((windows * _HASH_MULTIPLIER) >> np.uint32(32 - _hash_log))
            .astype("<u2")
            .tobytes()
        ).cast("H")
        table = [-1] * (1 << _hash_log)
        search_count = 1 << SKIP_TRIGGER
        # Inputs that fit inside the offset window never need the
        # distance check in the hot loop.
        small = n <= MAX_OFFSET + MIN_MATCH
        append = out.append

        while i < match_scan_end:
            h = hashes[i]
            candidate = table[h]
            table[h] = i
            if (
                candidate < 0
                or raw[candidate : candidate + 4] != raw[i : i + 4]
                or (not small and i - candidate > MAX_OFFSET)
            ):
                # Miss: advance, striding faster the longer nothing matches.
                step = search_count >> SKIP_TRIGGER
                search_count += 1
                i += step
                continue
            search_count = 1 << SKIP_TRIGGER

            # Extend the match forward, leaving LAST_LITERALS bytes untouched.
            match_len = MIN_MATCH
            max_match = last_match_start - i
            while (
                match_len + stride <= max_match
                and raw[candidate + match_len : candidate + match_len + stride]
                == raw[i + match_len : i + match_len + stride]
            ):
                match_len += stride
            while match_len < max_match and raw[candidate + match_len] == raw[i + match_len]:
                match_len += 1

            lit_len = i - anchor
            extra = match_len - MIN_MATCH
            offset = i - candidate
            if lit_len < 15 and extra < 15:
                # Common case inlined: one token, literals, 2-byte offset.
                append(lit_len << 4 | extra)
                out += raw[anchor:i]
                append(offset & 0xFF)
                append(offset >> 8)
            else:
                _emit_sequence(out, src[anchor:i], offset=offset, match_extra=extra)
            i += match_len
            anchor = i

        if _stats is not None:
            slots = 1 << _hash_log
            _stats.update(
                table_slots=slots,
                peak_table_entries=slots - table.count(-1),
            )
    elif _stats is not None:
        _stats.update(table_slots=0, peak_table_entries=0)

    _emit_sequence(out, src[anchor:n], offset=None, match_extra=0)
    return bytes(out)


def _read_lsic(blob: bytes, pos: int) -> tuple[int, int]:
    """Read an LSIC extension at `pos`; returns (value, next position)."""
    total = 0
    while True:
        if pos >= len(blob):
            raise CorruptFrameError("truncated LSIC length extension")
        byte = blob[pos]
        pos += 1
        total += byte
        if byte != 255:
            return total, pos


def lz4_decompress(blob: bytes, max_output: int = 1 << 30) -> bytes:
    """Decompress an LZ4 block produced by :func:`lz4_compress`.

    `max_output` bounds the output size to keep corrupt input from
    ballooning memory; exceeding it raises :class:`CorruptFrameError`.
    """
    out = bytearray()
    pos = 0
    n = len(blob)
    if n == 0:
        raise CorruptFrameError("empty input is not a valid LZ4 block")

    while pos < n:
        token = blob[pos]
        pos += 1

        literal_len = token >> 4
        if literal_len == 15:
            extra, pos = _read_lsic(blob, pos)
            literal_len += extra
        if pos + literal_len > n:
            raise CorruptFrameError("literal run overflows input")
        out += blob[pos : pos + literal_len]
        pos += literal_len
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

        if pos == n:
            break  # final sequence has no match part

        if pos + 2 > n:
            raise CorruptFrameError("truncated match offset")
        offset = blob[pos] | (blob[pos + 1] << 8)
        pos += 2
        if offset == 0:
            raise CorruptFrameError("match offset of zero")
        if offset > len(out):
            raise CorruptFrameError("match offset reaches before output start")

        match_len = (token & 0x0F) + MIN_MATCH
        if (token & 0x0F) == 15:
            extra, pos = _read_lsic(blob, pos)
            match_len += extra

        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the copied region grows as we copy. Build
            # it by doubling the seed chunk.
            chunk = bytes(out[start:])
            while len(chunk) < match_len:
                chunk += chunk
            out += chunk[:match_len]
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience: ``len(data) / len(lz4_compress(data))`` (< 1 for incompressible data)."""
    if len(data) == 0:
        return 1.0
    return len(data) / len(lz4_compress(data))

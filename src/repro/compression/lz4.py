"""Pure-Python LZ4 *block format* codec.

Implements the LZ4 block format (https://github.com/lz4/lz4, the
algorithm the paper offloads to its FPGA engines): a stream of sequences,
each a token byte (literal-length nibble, match-length nibble), optional
LSIC length extensions, literal bytes, a 2-byte little-endian match
offset, and an optional match-length extension. The compressor is a
greedy matcher with the format's end-of-block restrictions (the last 5
bytes are always literals; no match starts within the last 12 bytes).

This codec is used for *functional* fidelity (real bytes really get
compressed and restored along the simulated datapath) and to calibrate
the corpus compression ratios; simulated compression *speed* comes from
:mod:`repro.compression.model`.

Two compressor paths share the emit helpers and produce interchangeable
blocks:

- ``_compress_scalar`` — the classic per-position hash-table scan with a
  fixed ``2**HASH_LOG`` table and skip acceleration. Used for small
  inputs (numpy dispatch overhead dominates) and very large ones (the
  vector path's sort-built chains grow superlinearly past ~256 KiB).
- ``_compress_vector`` — the whole block is compressed with numpy array
  passes: one sort builds every position's previous-occurrence chain,
  candidate verification and match extension run as array compares, and
  the output block is assembled with gather/scatter index arithmetic.
  The only per-sequence Python left is a pointer-following loop over a
  precomputed jump table. See ``docs/performance.md`` for the profile.

An optional *native* backend (the ``lz4`` PyPI package's block API) can
take over compression when ``REPRO_LZ4_NATIVE=1`` and the package is
importable; its output is standard block format and round-trips through
:func:`lz4_decompress`. The pure codec remains the default and the
fidelity reference.
"""

from __future__ import annotations

import os

import numpy as np

#: Minimum match length the format can encode.
MIN_MATCH = 4
#: No match may start within this many bytes of the end of input.
MF_LIMIT = 12
#: The last sequence must hold at least this many literal bytes.
LAST_LITERALS = 5
#: Maximum distance a match offset can reach back.
MAX_OFFSET = 0xFFFF

#: log2 of the match-table slot count. The scalar path keeps a fixed
#: array of ``2**HASH_LOG`` positions (reference LZ4's layout); the
#: vector path reports the same bound from its hash-sorted chain.
HASH_LOG = 13

#: After ``2**SKIP_TRIGGER`` consecutive match misses the scalar scan
#: starts striding (reference LZ4's skip acceleration).
SKIP_TRIGGER = 5

#: Stride for chunked match extension in the scalar path.
_EXTEND_STRIDE = 32

#: Fibonacci multiplicative-hash constant (reference LZ4's 2654435761).
_HASH_MULTIPLIER = np.uint32(2654435761)

#: Inputs shorter than this take the scalar path: below ~1 KiB the fixed
#: cost of the vector passes exceeds the whole scalar scan.
_VECTOR_MIN = 1024

#: Inputs longer than this also take the scalar path. The sort-built
#: candidate chains grow superlinearly with input size (longer chains to
#: walk per position, bigger survivor sets per extension round), and past
#: ~256 KiB the vector passes fall below the bounded-table scalar scan —
#: which the datapath never notices, since it compresses 4 KiB blocks.
_VECTOR_MAX = 1 << 18

#: The vectorized match extension compares 4-byte groups for this many
#: rounds (matches up to ``4 + 4*_MAX_EXTEND_GROUPS + 3`` bytes) before
#: giving up on the remaining (rare) very long matches; a small survivor
#: set is finished exactly in Python, a large one (all-runs input) is
#: truncated and the follow-up match continues the run.
_MAX_EXTEND_GROUPS = 16

#: Candidate thinning: inside a run of at least this many consecutive
#: match candidates, only every 4th position is kept (plus the run head).
#: Greedy selection lands on a nearby survivor and the vectorized
#: *backward* extension recovers the skipped bytes, so the ratio cost is
#: small while candidate-array work drops ~2x on dense (text) input.
_THIN_RUN = 4

#: Backward extension is capped at this many bytes: enough to undo
#: thinning (spacing 4) with headroom, while bounding the per-byte
#: array-compare rounds.
_BACK_CAP = 8

#: When the surviving set in the group-extension loop falls to this size
#: or below, the remaining long matches are finished exactly in Python
#: instead of paying further whole-array rounds.
_FINISH_SCALAR = 16

#: Per-block-size constants (index ramp, thinning mask) are cached and
#: reused — datapath traffic compresses fixed-size blocks, so the same
#: few sizes recur constantly.
_SIZE_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_SIZE_CACHE_MAX = 8


class CorruptFrameError(ValueError):
    """Raised when decompression meets malformed input."""


# --------------------------------------------------------------------------
# Optional native backend (the `lz4` PyPI package), env-gated.

_native_module: object = None
_native_probed = False


def native_backend_available() -> bool:
    """True when the ``lz4`` PyPI package's block API is importable."""
    global _native_module, _native_probed
    if not _native_probed:
        _native_probed = True
        try:
            from lz4 import block as _block  # type: ignore[import-not-found]

            _native_module = _block
        except Exception:
            _native_module = None
    return _native_module is not None


def _native_backend():
    """The native block module, iff enabled via ``REPRO_LZ4_NATIVE=1``."""
    if os.environ.get("REPRO_LZ4_NATIVE") != "1":
        return None
    if not native_backend_available():
        return None
    return _native_module


def _write_lsic(out: bytearray, value: int) -> None:
    """Append the LSIC (Linear Small-Integer Code) extension for `value`."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _emit_sequence(
    out: bytearray,
    literals: memoryview,
    offset: int | None,
    match_extra: int,
) -> None:
    """Append one sequence; `offset is None` marks the final literal run.

    `match_extra` is the match length minus :data:`MIN_MATCH`.
    """
    lit_len = len(literals)
    lit_nibble = 15 if lit_len >= 15 else lit_len
    match_nibble = 0 if offset is None else (15 if match_extra >= 15 else match_extra)
    out.append((lit_nibble << 4) | match_nibble)
    if lit_len >= 15:
        _write_lsic(out, lit_len - 15)
    out += literals
    if offset is not None:
        out += offset.to_bytes(2, "little")
        if match_extra >= 15:
            _write_lsic(out, match_extra - 15)


def lz4_compress(
    data: bytes,
    *,
    _hash_log: int = HASH_LOG,
    _stats: dict | None = None,
) -> bytes:
    """Compress `data` into an LZ4 block.

    Round-trips through :func:`lz4_decompress` for arbitrary input. Like
    the reference implementation, incompressible input grows slightly
    (one token plus LSIC bytes of overhead).

    Inputs of :data:`_VECTOR_MIN` to :data:`_VECTOR_MAX` bytes go
    through the fully vectorized matcher (``_compress_vector``); inputs
    outside that band through the scalar hash-table scan
    (``_compress_scalar``). Both emit standard block format; they may
    pick different (equally valid) matches.

    When ``REPRO_LZ4_NATIVE=1`` and the ``lz4`` PyPI package is
    installed, compression is delegated to the native block API instead
    (unless `_stats` or a non-default `_hash_log` is requested, which
    only the pure paths honour).

    `_stats`, when given a dict, receives ``table_slots`` and
    ``peak_table_entries`` (test/diagnostic hook; zero hot-path cost) —
    both are at most ``2**_hash_log`` for any input size.
    """
    if _stats is None and _hash_log == HASH_LOG:
        native = _native_backend()
        if native is not None:
            return native.compress(bytes(data), store_size=False)
    src = memoryview(bytes(data))
    n = len(src)
    if _VECTOR_MIN <= n <= _VECTOR_MAX:
        return _compress_vector(src, n, _hash_log, _stats)
    return _compress_scalar(src, n, _hash_log, _stats)


def _compress_scalar(
    src: memoryview, n: int, _hash_log: int, _stats: dict | None
) -> bytes:
    """Per-position greedy scan with a fixed hash table (small inputs)."""
    out = bytearray()
    if n == 0:
        if _stats is not None:
            _stats.update(table_slots=0, peak_table_entries=0)
        out.append(0)  # empty literal run, no match
        return bytes(out)

    match_scan_end = n - MF_LIMIT
    anchor = 0
    i = 0
    raw = src.obj  # the underlying bytes, for fast indexing/slicing
    last_match_start = n - LAST_LITERALS
    stride = _EXTEND_STRIDE

    if match_scan_end > 0:
        # One vectorized pass: hash of the 4-byte window at every position,
        # packed little-endian into a u16 buffer the scan loop indexes.
        windows = np.ndarray(buffer=raw, shape=(n - 3,), dtype="<u4", strides=(1,))
        hashes = memoryview(
            ((windows * _HASH_MULTIPLIER) >> np.uint32(32 - _hash_log))
            .astype("<u2")
            .tobytes()
        ).cast("H")
        table = [-1] * (1 << _hash_log)
        search_count = 1 << SKIP_TRIGGER
        # Inputs that fit inside the offset window never need the
        # distance check in the hot loop.
        small = n <= MAX_OFFSET + MIN_MATCH
        append = out.append

        while i < match_scan_end:
            h = hashes[i]
            candidate = table[h]
            table[h] = i
            if (
                candidate < 0
                or raw[candidate : candidate + 4] != raw[i : i + 4]
                or (not small and i - candidate > MAX_OFFSET)
            ):
                # Miss: advance, striding faster the longer nothing matches.
                step = search_count >> SKIP_TRIGGER
                search_count += 1
                i += step
                continue
            search_count = 1 << SKIP_TRIGGER

            # Extend the match forward, leaving LAST_LITERALS bytes untouched.
            match_len = MIN_MATCH
            max_match = last_match_start - i
            while (
                match_len + stride <= max_match
                and raw[candidate + match_len : candidate + match_len + stride]
                == raw[i + match_len : i + match_len + stride]
            ):
                match_len += stride
            while match_len < max_match and raw[candidate + match_len] == raw[i + match_len]:
                match_len += 1

            lit_len = i - anchor
            extra = match_len - MIN_MATCH
            offset = i - candidate
            if lit_len < 15 and extra < 15:
                # Common case inlined: one token, literals, 2-byte offset.
                append(lit_len << 4 | extra)
                out += raw[anchor:i]
                append(offset & 0xFF)
                append(offset >> 8)
            else:
                _emit_sequence(out, src[anchor:i], offset=offset, match_extra=extra)
            i += match_len
            anchor = i

        if _stats is not None:
            slots = 1 << _hash_log
            _stats.update(
                table_slots=slots,
                peak_table_entries=slots - table.count(-1),
            )
    elif _stats is not None:
        _stats.update(table_slots=0, peak_table_entries=0)

    _emit_sequence(out, src[anchor:n], offset=None, match_extra=0)
    return bytes(out)


def _compress_vector(
    src: memoryview, n: int, _hash_log: int, _stats: dict | None
) -> bytes:
    """Whole-block vectorized greedy matcher.

    The scan is restructured from "loop over positions, probe a table"
    into array passes over *all* positions at once:

    1. **Chain build.** Pack ``(window_hash, position)`` into one integer
       key per position and sort it: each position's predecessor in the
       sorted order with the same hash is its nearest earlier candidate
       — the same candidate an always-overwritten 1-slot table would
       yield, computed without a sequential probe loop.
    2. **Verify.** One array compare checks every candidate's 4-byte
       window and offset distance; dense candidate runs are thinned
       (:data:`_THIN_RUN`).
    3. **Extend.** Match lengths for all candidates advance 4 bytes per
       array compare round (:data:`_MAX_EXTEND_GROUPS`), plus a final
       XOR pass that scores the 0–3 byte tail.
    4. **Select.** A rank cumsum over ``valid`` precomputes each
       candidate's jump target (first candidate past its match, as
       ``rank[i + L - 1]``); greedy selection is then
       a pointer-following Python loop — the only per-sequence Python in
       the function. Selected matches extend *backward* into their
       literal run (array passes again), recovering bytes thinning
       skipped.
    5. **Assemble.** Tokens, LSIC extensions, literal copies, and
       offsets are scattered into one output buffer with index
       arithmetic (ranges become gather/scatter index arrays via
       repeat + cumsum).
    """
    out = bytearray()
    match_scan_end = n - MF_LIMIT
    anchor = 0
    raw = src.obj
    if match_scan_end > 0:
        nw = n - 3
        # Contiguous copy of the 4-byte windows: the strided overlapping
        # view is cheap to copy once and every later gather on the
        # contiguous array is substantially faster.
        w = np.ndarray(buffer=raw, shape=(nw,), dtype="<u4", strides=(1,)).copy()
        hashes = (w * _HASH_MULTIPLIER) >> np.uint32(32 - _hash_log)
        cached = _SIZE_CACHE.get(nw)
        if cached is None:
            if len(_SIZE_CACHE) >= _SIZE_CACHE_MAX:
                _SIZE_CACHE.clear()
            pos = np.arange(nw, dtype=np.intp)
            cached = (
                pos,
                pos.astype(np.uint32),
                (pos & (_THIN_RUN - 1)) != 0,
            )
            _SIZE_CACHE[nw] = cached
        pos, pos_u32, mod_mask = cached
        pos_bits = nw.bit_length()
        if _hash_log + pos_bits <= 32:
            key = np.left_shift(hashes, np.uint32(pos_bits), out=hashes)
            key |= pos_u32
            key.sort()
            order = (key & np.uint32((1 << pos_bits) - 1)).astype(np.intp)
            oh = key >> np.uint32(pos_bits)
        else:
            key = hashes.astype(np.uint64) << np.uint64(32)
            key |= pos.view(np.uint64)
            key.sort()
            order = (key & np.uint64(0xFFFFFFFF)).astype(np.intp)
            oh = key >> np.uint64(32)
        same = oh[1:] == oh[:-1]
        if _stats is not None:
            _stats.update(
                table_slots=1 << _hash_log,
                peak_table_entries=int(same.size - int(same.sum())) + (1 if same.size else 1),
            )
        cand = pos.copy()
        cand[order[1:][same]] = order[:-1][same]
        # dist-1 as unsigned folds the "is a real predecessor" (dist > 0)
        # and the window-distance checks into one compare.
        dist = pos - cand
        valid = (dist - 1).view(np.uint64) < np.uint64(MAX_OFFSET)
        valid &= w[cand] == w
        valid[match_scan_end:] = False
        if nw > 64:
            run = valid[: -(_THIN_RUN - 1)] & valid[1 : 2 - _THIN_RUN]
            for k in range(2, _THIN_RUN - 1):
                run &= valid[k : k + 1 - _THIN_RUN]
            run &= valid[_THIN_RUN - 1 :]
            run &= mod_mask[_THIN_RUN - 1 :]
            valid[_THIN_RUN - 1 :] &= ~run
        vidx = np.flatnonzero(valid)
        if vidx.size:
            vc = cand[vidx]
            L = np.full(vidx.size, MIN_MATCH, dtype=np.intp)
            act = np.arange(vidx.size, dtype=np.intp)
            limit = nw - 1
            g = 0
            while act.size > _FINISH_SCALAR and g < _MAX_EXTEND_GROUPS:
                g += 1
                off = 4 * g
                ia = vidx[act] + off
                if int(ia[-1]) > limit:
                    # act is sorted by position, so out-of-range reads are a
                    # suffix — slice instead of boolean-filtering.
                    cut = int(np.searchsorted(ia, limit, side="right"))
                    if not cut:
                        break
                    act = act[:cut]
                    ia = ia[:cut]
                still = w[vc[act] + off] == w[ia]
                act = act[still]
                L[act] += 4
            if act.size > _FINISH_SCALAR:
                # Many matches are still extending after every vector
                # round: the highly repetitive regime (long runs), where
                # capping match length would fragment giant matches and
                # crater the ratio. The scalar path is fast exactly here —
                # one long match per run, extended 8 bytes per iteration
                # with skip acceleration — so hand the block over wholesale.
                return _compress_scalar(src, n, _hash_log, _stats)
            if act.size:
                # A small survivor set of long matches: finish them exactly
                # (bounded per match; runs past the bound chain into the
                # immediately following candidate instead).
                end_cap = n - LAST_LITERALS
                for a in act.tolist():
                    i0 = int(vidx[a])
                    c0 = int(vc[a])
                    length = int(L[a])
                    cap = min(end_cap - i0, length + 2048)
                    while (
                        length + 8 <= cap
                        and raw[c0 + length : c0 + length + 8]
                        == raw[i0 + length : i0 + length + 8]
                    ):
                        length += 8
                    while length < cap and raw[c0 + length] == raw[i0 + length]:
                        length += 1
                    L[a] = length
            # Deferred tail pass: score the 0-3 extra bytes after the last
            # whole 4-byte group from one XOR. Clipping to the format's
            # end-restriction first keeps every read in range (vidx + L <=
            # n - LAST_LITERALS <= nw - 1) with no per-element guard;
            # exactly-finished matches XOR non-equal windows, scoring 0.
            room = (n - LAST_LITERALS) - vidx
            np.minimum(L, room, out=L)
            d = w[vc + L] ^ w[vidx + L]
            L += (d & 0xFF) == 0
            L += (d & 0xFFFF) == 0
            L += (d & 0xFFFFFF) == 0
            np.minimum(L, room, out=L)
            # Greedy selection. rank[p] counts candidates at positions <= p,
            # so rank[i + L - 1] is the index of the first candidate past
            # the match at i — the jump table, via one cumsum + gather.
            # The greedy chain from candidate 0 is then enumerated by
            # pointer doubling: each round appends jump[path] and squares
            # the jump table, so a k-sequence chain needs ~log2(k) array
            # gathers instead of k Python iterations. A sentinel entry at
            # index m absorbs the chain end (jump[m] == m), making the
            # path sorted: real entries, then repeated m's.
            rank = np.cumsum(valid)
            m = vidx.size
            jump = np.empty(m + 1, dtype=np.intp)
            jump[:-1] = rank[vidx + L - 1]
            jump[-1] = m
            path = np.zeros(1, dtype=np.intp)
            while True:
                ext = jump[path]
                path = np.concatenate((path, ext))
                if int(ext[-1]) >= m:
                    break
                jump = jump[jump]
            s = path[: int(np.searchsorted(path, m))]
            ai = vidx[s]
            al = L[s]
            ad = dist[ai]
            ends = ai + al
            anchors = np.empty_like(ai)
            anchors[0] = 0
            anchors[1:] = ends[:-1]
            # Backward extension: grow each match into its literal run
            # (match end — and therefore the next match's room — is
            # unchanged, so every match extends independently).
            back_room = np.minimum(ai - anchors, np.intp(_BACK_CAP))
            barr = np.frombuffer(raw, dtype=np.uint8)
            if bool((back_room > 0).any()):
                # One u64 XOR per match scores all (<= _BACK_CAP = 8)
                # backward bytes at once: the window ending at ai-1 agrees
                # with the window ending at ai-ad-1 in exactly the XOR's
                # leading-zero bytes (little-endian, so high bytes are the
                # positions adjacent to the match head). Reads need 8 bytes
                # of history before the match *source*; the few matches
                # whose source sits in the first 8 bytes skip extension.
                w8 = np.ndarray(buffer=raw, shape=(n - 7,), dtype="<u8", strides=(1,))
                ok = (ai - ad) >= 8
                i1 = np.where(ok, ai, np.intp(8)) - 8
                d = w8[i1] ^ w8[i1 - ad]
                back = (d < (1 << 56)).astype(np.intp)
                back += d < (1 << 48)
                back += d < (1 << 40)
                back += d < (1 << 32)
                back += d < (1 << 24)
                back += d < (1 << 16)
                back += d < (1 << 8)
                back += d == 0
                back *= ok
                np.minimum(back, back_room, out=back)
                ai = ai - back
                al = al + back
            lit = ai - anchors
            extra = al - MIN_MATCH
            # Assembly: compute every byte's destination, then scatter.
            long_lit = bool(lit.max() >= 15)
            long_match = bool(extra.max() >= 15)
            seq_len = lit + 3
            if long_lit:
                lv = lit - 15
                le = np.where(lit >= 15, lv // 255 + 1, 0)
                seq_len = seq_len + le
            if long_match:
                mv = extra - 15
                me = np.where(extra >= 15, mv // 255 + 1, 0)
                seq_len = seq_len + me
            seq_off = np.empty_like(seq_len)
            seq_off[0] = 0
            np.cumsum(seq_len[:-1], out=seq_off[1:])
            buf = np.empty(int(seq_off[-1] + seq_len[-1]), dtype=np.uint8)
            buf[seq_off] = np.minimum(lit, 15) << 4 | np.minimum(extra, 15)
            lstart = seq_off + 1
            if long_lit:
                lstart = lstart + le
            total = int(lit.sum())
            if total:
                ramp = _iota(total) - np.repeat(np.cumsum(lit) - lit, lit)
                buf[np.repeat(lstart, lit) + ramp] = barr[np.repeat(ai - lit, lit) + ramp]
            op = lstart + lit
            buf[op] = ad & 0xFF
            buf[op + 1] = ad >> 8
            if long_lit and long_match:
                _scatter_lsic(
                    buf,
                    np.concatenate((seq_off + 1, op + 2)),
                    np.concatenate((le, me)),
                    np.concatenate((lv, mv)),
                )
            elif long_lit:
                _scatter_lsic(buf, seq_off + 1, le, lv)
            elif long_match:
                _scatter_lsic(buf, op + 2, me, mv)
            out += buf.tobytes()
            anchor = int(ends[-1])
    elif _stats is not None:
        _stats.update(table_slots=0, peak_table_entries=0)

    _emit_sequence(out, src[anchor:n], offset=None, match_extra=0)
    return bytes(out)


_IOTA = np.arange(8192, dtype=np.intp)


def _iota(total: int) -> np.ndarray:
    """A read-only view of ``arange(total)`` from a grow-only cache."""
    global _IOTA
    if total > _IOTA.size:
        _IOTA = np.arange(max(total, 2 * _IOTA.size), dtype=np.intp)
    return _IOTA[:total]


def _scatter_lsic(
    buf: np.ndarray, start: np.ndarray, count: np.ndarray, value: np.ndarray
) -> None:
    """Scatter LSIC extensions (``count[k]`` bytes at ``start[k]``) into `buf`.

    Every extension byte is 255 except the last, which carries
    ``value % 255`` — scattered as a range-fill (via repeat + cumsum
    index arrays) plus one fancy write for the final bytes.
    """
    has = np.flatnonzero(count)
    c = count[has]
    st = start[has]
    total = int(c.sum())
    ramp = _iota(total) - np.repeat(np.cumsum(c) - c, c)
    buf[np.repeat(st, c) + ramp] = 255
    buf[st + c - 1] = value[has] % 255


def _read_lsic(blob: bytes, pos: int) -> tuple[int, int]:
    """Read an LSIC extension at `pos`; returns (value, next position)."""
    total = 0
    while True:
        if pos >= len(blob):
            raise CorruptFrameError("truncated LSIC length extension")
        byte = blob[pos]
        pos += 1
        total += byte
        if byte != 255:
            return total, pos


def lz4_decompress(blob: bytes, max_output: int = 1 << 30) -> bytes:
    """Decompress an LZ4 block produced by :func:`lz4_compress`.

    `max_output` bounds the output size to keep corrupt input from
    ballooning memory; exceeding it raises :class:`CorruptFrameError`.

    The sequence loop keeps everything in locals, tracks the output
    length itself instead of re-measuring the buffer, and inlines the
    common LSIC-free header parse; literal and match copies are bulk
    slice operations (overlapping matches build their region by doubling
    a seed chunk).
    """
    pos = 0
    n = len(blob)
    if n == 0:
        raise CorruptFrameError("empty input is not a valid LZ4 block")
    out = bytearray()
    olen = 0

    while pos < n:
        token = blob[pos]
        pos += 1

        literal_len = token >> 4
        if literal_len == 15:
            while True:
                if pos >= n:
                    raise CorruptFrameError("truncated LSIC length extension")
                byte = blob[pos]
                pos += 1
                literal_len += byte
                if byte != 255:
                    break
        if literal_len:
            end = pos + literal_len
            if end > n:
                raise CorruptFrameError("literal run overflows input")
            out += blob[pos:end]
            pos = end
            olen += literal_len
            if olen > max_output:
                raise CorruptFrameError("output exceeds max_output")

        if pos == n:
            break  # final sequence has no match part

        if pos + 2 > n:
            raise CorruptFrameError("truncated match offset")
        offset = blob[pos] | (blob[pos + 1] << 8)
        pos += 2
        if offset == 0:
            raise CorruptFrameError("match offset of zero")
        if offset > olen:
            raise CorruptFrameError("match offset reaches before output start")

        match_len = token & 0x0F
        if match_len == 15:
            while True:
                if pos >= n:
                    raise CorruptFrameError("truncated LSIC length extension")
                byte = blob[pos]
                pos += 1
                match_len += byte
                if byte != 255:
                    break
        match_len += MIN_MATCH

        start = olen - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the copied region grows as we copy. Build
            # it by doubling the seed chunk.
            chunk = bytes(out[start:])
            while len(chunk) < match_len:
                chunk += chunk
            out += chunk[:match_len]
        olen += match_len
        if olen > max_output:
            raise CorruptFrameError("output exceeds max_output")

    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience: ``len(data) / len(lz4_compress(data))`` (< 1 for incompressible data)."""
    if len(data) == 0:
        return 1.0
    return len(data) / len(lz4_compress(data))

"""Pure-Python LZ4 *block format* codec.

Implements the LZ4 block format (https://github.com/lz4/lz4, the
algorithm the paper offloads to its FPGA engines): a stream of sequences,
each a token byte (literal-length nibble, match-length nibble), optional
LSIC length extensions, literal bytes, a 2-byte little-endian match
offset, and an optional match-length extension. The compressor is the
classic greedy hash-table matcher with the format's end-of-block
restrictions (the last 5 bytes are always literals; no match starts
within the last 12 bytes).

This codec is used for *functional* fidelity (real bytes really get
compressed and restored along the simulated datapath) and to calibrate
the corpus compression ratios; simulated compression *speed* comes from
:mod:`repro.compression.model`.
"""

from __future__ import annotations

#: Minimum match length the format can encode.
MIN_MATCH = 4
#: No match may start within this many bytes of the end of input.
MF_LIMIT = 12
#: The last sequence must hold at least this many literal bytes.
LAST_LITERALS = 5
#: Maximum distance a match offset can reach back.
MAX_OFFSET = 0xFFFF


class CorruptFrameError(ValueError):
    """Raised when decompression meets malformed input."""


def _write_lsic(out: bytearray, value: int) -> None:
    """Append the LSIC (Linear Small-Integer Code) extension for `value`."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _emit_sequence(
    out: bytearray,
    literals: memoryview,
    offset: int | None,
    match_extra: int,
) -> None:
    """Append one sequence; `offset is None` marks the final literal run.

    `match_extra` is the match length minus :data:`MIN_MATCH`.
    """
    lit_len = len(literals)
    lit_nibble = 15 if lit_len >= 15 else lit_len
    match_nibble = 0 if offset is None else (15 if match_extra >= 15 else match_extra)
    out.append((lit_nibble << 4) | match_nibble)
    if lit_len >= 15:
        _write_lsic(out, lit_len - 15)
    out += literals
    if offset is not None:
        out += offset.to_bytes(2, "little")
        if match_extra >= 15:
            _write_lsic(out, match_extra - 15)


def lz4_compress(data: bytes) -> bytes:
    """Compress `data` into an LZ4 block.

    Round-trips through :func:`lz4_decompress` for arbitrary input. Like
    the reference implementation, incompressible input grows slightly
    (one token plus LSIC bytes of overhead).
    """
    src = memoryview(bytes(data))
    n = len(src)
    out = bytearray()
    if n == 0:
        out.append(0)  # empty literal run, no match
        return bytes(out)

    match_scan_end = n - MF_LIMIT
    table: dict[bytes, int] = {}
    anchor = 0
    i = 0
    raw = src.obj  # the underlying bytes, for fast slicing

    while i < match_scan_end:
        key = raw[i : i + MIN_MATCH]
        candidate = table.get(key)
        table[key] = i
        if candidate is None or i - candidate > MAX_OFFSET:
            i += 1
            continue

        # Extend the match forward, leaving LAST_LITERALS bytes untouched.
        match_len = MIN_MATCH
        max_match = (n - LAST_LITERALS) - i
        while match_len < max_match and raw[candidate + match_len] == raw[i + match_len]:
            match_len += 1

        _emit_sequence(out, src[anchor:i], offset=i - candidate, match_extra=match_len - MIN_MATCH)
        i += match_len
        anchor = i

    _emit_sequence(out, src[anchor:n], offset=None, match_extra=0)
    return bytes(out)


def _read_lsic(blob: bytes, pos: int) -> tuple[int, int]:
    """Read an LSIC extension at `pos`; returns (value, next position)."""
    total = 0
    while True:
        if pos >= len(blob):
            raise CorruptFrameError("truncated LSIC length extension")
        byte = blob[pos]
        pos += 1
        total += byte
        if byte != 255:
            return total, pos


def lz4_decompress(blob: bytes, max_output: int = 1 << 30) -> bytes:
    """Decompress an LZ4 block produced by :func:`lz4_compress`.

    `max_output` bounds the output size to keep corrupt input from
    ballooning memory; exceeding it raises :class:`CorruptFrameError`.
    """
    out = bytearray()
    pos = 0
    n = len(blob)
    if n == 0:
        raise CorruptFrameError("empty input is not a valid LZ4 block")

    while pos < n:
        token = blob[pos]
        pos += 1

        literal_len = token >> 4
        if literal_len == 15:
            extra, pos = _read_lsic(blob, pos)
            literal_len += extra
        if pos + literal_len > n:
            raise CorruptFrameError("literal run overflows input")
        out += blob[pos : pos + literal_len]
        pos += literal_len
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

        if pos == n:
            break  # final sequence has no match part

        if pos + 2 > n:
            raise CorruptFrameError("truncated match offset")
        offset = blob[pos] | (blob[pos + 1] << 8)
        pos += 2
        if offset == 0:
            raise CorruptFrameError("match offset of zero")
        if offset > len(out):
            raise CorruptFrameError("match offset reaches before output start")

        match_len = (token & 0x0F) + MIN_MATCH
        if (token & 0x0F) == 15:
            extra, pos = _read_lsic(blob, pos)
            match_len += extra

        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the copied region grows as we copy. Build
            # it by doubling the seed chunk.
            chunk = bytes(out[start:])
            while len(chunk) < match_len:
                chunk += chunk
            out += chunk[:match_len]
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience: ``len(data) / len(lz4_compress(data))`` (< 1 for incompressible data)."""
    if len(data) == 0:
        return 1.0
    return len(data) / len(lz4_compress(data))

"""Deterministic synthetic stand-in for the Silesia compression corpus.

The paper evaluates on the Silesia corpus [75], "a data set of files that
covers the typical data types used nowadays". The corpus itself is not
redistributable here, so this module generates a corpus with the same
*class mix* — literary English, structured XML/HTML, database tables,
executable-like binary, medical imagery (high-entropy), and program
source — calibrated so that the aggregate LZ4 compression ratio lands
near the ~2.1x the real corpus achieves.

All generators are seeded; the same seed always yields identical bytes.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.compression.lz4 import lz4_compress

_WORDS = (
    "the of and a to in is was he that it his her you as had with for she not "
    "at but be have this which one said from by were all me so no when an my "
    "on them him there little out up into time good very your some could then "
    "about made man other day old come two who down like more these went say "
    "storage block cloud server request memory network data compress middle "
    "tier virtual machine segment chunk replica snapshot failover latency"
).split()

_TAGS = ("record", "entry", "item", "node", "row", "field", "attr", "value", "meta")

_SOURCE_TOKENS = (
    "def", "return", "if", "else", "for", "while", "import", "class", "self",
    "int", "char", "void", "static", "const", "struct", "#include", "printf",
    "buffer", "offset", "length", "index", "size_t", "uint64_t", "->", "==",
)


#: Zipf-like weights: natural text uses a few words very often, which is
#: what gives prose its LZ4 compressibility.
_WORD_WEIGHTS = tuple(1.0 / rank for rank in range(1, len(_WORDS) + 1))


def _english_text(rng: random.Random, size: int) -> bytes:
    """Dickens/webster-like literary text: highly compressible prose."""
    pieces: list[str] = []
    total = 0
    sentence_len = 0
    while total < size:
        if pieces and len(pieces) > 8 and rng.random() < 0.25:
            # Prose repeats itself: re-quote a recent phrase.
            start = rng.randrange(max(1, len(pieces) - 64))
            phrase = pieces[start : start + rng.randint(3, 6)]
            pieces.extend(phrase)
            total += sum(len(w) + 1 for w in phrase)
            sentence_len += len(phrase)
        else:
            word = rng.choices(_WORDS, weights=_WORD_WEIGHTS)[0]
            if sentence_len == 0:
                word = word.capitalize()
            pieces.append(word)
            total += len(word) + 1
            sentence_len += 1
        if sentence_len > rng.randint(6, 14):
            pieces[-1] += "."
            sentence_len = 0
    return " ".join(pieces).encode("ascii")[:size]


def _xml_markup(rng: random.Random, size: int) -> bytes:
    """xml-like nested markup: tag structure dominates, so LZ4 gets ~5x."""
    pieces: list[str] = ['<?xml version="1.0"?>\n<root>\n']
    total = len(pieces[0])
    # Real markup reuses a handful of attribute values over and over.
    names = [rng.choice(_WORDS) for _ in range(6)]
    while total < size:
        tag = rng.choice(_TAGS)
        ident = rng.randint(0, 30)
        word = rng.choice(names)
        line = f'  <{tag} id="{ident}" name="{word}"><{tag}-value>{word}</{tag}-value></{tag}>\n'
        pieces.append(line)
        total += len(line)
    pieces.append("</root>\n")
    return "".join(pieces).encode("ascii")[:size]


def _database_table(rng: random.Random, size: int) -> bytes:
    """nci-like database dump: tiny value pools and repeated rows (~6-8x)."""
    words = [rng.choice(_WORDS) for _ in range(4)]
    recent: list[str] = []
    pieces: list[str] = []
    total = 0
    row_id = 0
    while total < size:
        if recent and rng.random() < 0.5:
            # Database dumps repeat near-identical records constantly.
            line = rng.choice(recent)
        else:
            row_id += 1
            line = (
                f"{row_id:08d}|{rng.choice(words):<12}|{rng.randint(0, 9):03d}|"
                f"{rng.choice('AB')}|0.{rng.randint(0, 9)}00000\n"
            )
            recent.append(line)
            if len(recent) > 12:
                recent.pop(0)
        pieces.append(line)
        total += len(line)
    return "".join(pieces).encode("ascii")[:size]


def _binary_executable(rng: random.Random, size: int) -> bytes:
    """mozilla/ooffice-like binary: repeated opcode motifs + literal pools."""
    out = bytearray()
    motifs = [bytes(rng.randrange(256) for _ in range(rng.randint(4, 16))) for _ in range(32)]
    while len(out) < size:
        if rng.random() < 0.7:
            out += rng.choice(motifs)
        else:
            out += bytes(rng.randrange(256) for _ in range(rng.randint(2, 24)))
    return bytes(out[:size])


def _medical_image(rng: random.Random, size: int) -> bytes:
    """x-ray-like 12-bit-ish sensor data: noisy, nearly incompressible."""
    out = bytearray()
    level = 2048
    while len(out) < size:
        level = max(0, min(4095, level + rng.randint(-64, 64)))
        sample = level + rng.randint(-31, 31)
        out += (sample & 0x0FFF).to_bytes(2, "little")
    return bytes(out[:size])


def _program_source(rng: random.Random, size: int) -> bytes:
    """samba/reymont-like program source: token soup with indentation."""
    pieces: list[str] = []
    total = 0
    while total < size:
        depth = rng.randint(0, 4)
        tokens = " ".join(rng.choice(_SOURCE_TOKENS) for _ in range(rng.randint(3, 9)))
        line = "    " * depth + tokens + ("\n" if rng.random() < 0.9 else " {\n")
        pieces.append(line)
        total += len(line)
    return "".join(pieces).encode("ascii")[:size]


def _random_noise(rng: random.Random, size: int) -> bytes:
    """Fully incompressible stream (worst case for the engines)."""
    return rng.randbytes(size)


#: (name, generator, weight in the corpus). Weights loosely follow the real
#: Silesia mix: mostly text/markup/database with a binary and medical tail.
_CLASSES: tuple[tuple[str, typing.Callable[[random.Random, int], bytes], int], ...] = (
    ("dickens", _english_text, 3),
    ("webster", _english_text, 2),
    ("xml", _xml_markup, 2),
    ("nci", _database_table, 3),
    ("sao", _database_table, 1),
    ("mozilla", _binary_executable, 3),
    ("ooffice", _binary_executable, 1),
    ("x-ray", _medical_image, 2),
    ("samba", _program_source, 2),
    ("reymont", _program_source, 1),
    ("noise", _random_noise, 1),
)


@dataclasses.dataclass(frozen=True)
class CorpusFile:
    """One generated corpus file."""

    name: str
    category: str
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class SilesiaLikeCorpus:
    """A deterministic, Silesia-shaped corpus of files.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds generate identical corpora.
    file_size:
        Size of each generated file in bytes. The real corpus uses
        multi-megabyte files; the default keeps generation fast while
        preserving per-class compressibility.
    """

    def __init__(self, seed: int = 2023, file_size: int = 64 * 1024) -> None:
        if file_size < 1024:
            raise ValueError(f"file_size must be >= 1024 bytes, got {file_size}")
        self.seed = seed
        self.file_size = file_size
        self._files: list[CorpusFile] | None = None

    def files(self) -> list[CorpusFile]:
        """Generate (once) and return the corpus files."""
        if self._files is None:
            rng = random.Random(self.seed)
            generated = []
            for name, generator, weight in _CLASSES:
                for copy in range(weight):
                    data = generator(random.Random(rng.randrange(2**63)), self.file_size)
                    generated.append(CorpusFile(f"{name}-{copy}", name, data))
            self._files = generated
        return self._files

    @property
    def total_bytes(self) -> int:
        """Total corpus size in bytes."""
        return sum(len(f) for f in self.files())

    def blocks(self, block_size: int = 4096) -> list[bytes]:
        """Cut every file into `block_size` blocks (the paper's 4 KB I/O unit)."""
        if block_size < 16:
            raise ValueError(f"block_size must be >= 16, got {block_size}")
        out: list[bytes] = []
        for corpus_file in self.files():
            data = corpus_file.data
            for start in range(0, len(data) - block_size + 1, block_size):
                out.append(data[start : start + block_size])
        return out

    def block_ratios(self, block_size: int = 4096, sample_limit: int = 256) -> list[float]:
        """Per-block LZ4 compression ratios (uncompressed / compressed).

        Compressing every block of a large corpus in pure Python is slow,
        so at most `sample_limit` evenly spaced blocks are measured.
        """
        blocks = self.blocks(block_size)
        if not blocks:
            return []
        stride = max(1, len(blocks) // sample_limit)
        sampled = blocks[::stride][:sample_limit]
        return [len(block) / len(lz4_compress(block)) for block in sampled]

    def aggregate_ratio(self, block_size: int = 4096, sample_limit: int = 256) -> float:
        """Corpus-wide mean compression ratio over sampled blocks."""
        ratios = self.block_ratios(block_size, sample_limit)
        if not ratios:
            raise ValueError("corpus produced no blocks")
        return sum(ratios) / len(ratios)

"""SmartDS (ISCA 2023) reproduction library.

This package reproduces *SmartDS: Middle-Tier-centric SmartNIC Enabling
Application-aware Message Split for Disaggregated Block Storage* as a
discrete-event simulation of a disaggregated block-storage cloud: host
hardware models (CPU, memory, LLC/DDIO, PCIe), a RoCE network substrate,
storage servers with replication, several middle-tier server designs, and
the SmartDS SmartNIC with its application-aware message split (AAMS)
mechanism and RDMA-like API.

Top-level convenience re-exports cover the most common entry points; the
subpackages hold the full API:

- :mod:`repro.sim` -- discrete-event simulation kernel
- :mod:`repro.compression` -- LZ4 codec, synthetic Silesia-like corpus
- :mod:`repro.hostmodel` -- CPU / memory / cache / PCIe models
- :mod:`repro.net` -- links, NICs, RoCE transport, topology
- :mod:`repro.storage` -- disks, chunk stores, storage servers
- :mod:`repro.middletier` -- baseline middle-tier designs
- :mod:`repro.core` -- the SmartDS device, AAMS, and its API
- :mod:`repro.workloads` -- request generators and MLC-style injectors
- :mod:`repro.experiments` -- one runnable experiment per paper table/figure
"""

from repro.sim.kernel import Simulator
from repro.units import gbps, gib, kib, mib, usec

__all__ = ["Simulator", "gbps", "gib", "kib", "mib", "usec"]

__version__ = "1.0.0"

"""Memory subsystem model (host DRAM, SmartNIC DDR, FPGA HBM).

The paper shows (§3.1.2, Fig. 4) that network DMA and application memory
traffic contend on the same DRAM channels: injected MLC requests cut
achievable RDMA throughput to ~46 %. We model a memory subsystem as a
multi-lane FIFO :class:`~repro.sim.bandwidth.BandwidthServer` at its
achievable bandwidth; every DMA and every CPU payload access is a real
transfer on it, and interference emerges from queueing.

Large transfers are chunked so that a single multi-megabyte RDMA message
cannot monopolize the pipe — mirroring how real DRAM interleaves
transactions across banks/channels.

The same class models BlueField-2's weak device DDR (2 lanes,
~500 Gb/s) and the VCU128's HBM (16 lanes, 3.4 Tb/s); only the numbers
differ.
"""

from __future__ import annotations

import typing

from repro.params import HostSpec
from repro.sim.bandwidth import BandwidthServer
from repro.telemetry.metrics import BandwidthMeter
from repro.units import kib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class MemorySubsystem:
    """Shared memory bandwidth with separate read/write accounting."""

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        lanes: int = 4,
        chunk: int = kib(64),
        name: str = "dram",
    ) -> None:
        if chunk < 1:
            raise ValueError(f"chunk size must be positive, got {chunk}")
        self.sim = sim
        self.name = name
        self.chunk = chunk
        self._bus = BandwidthServer(sim, rate=rate, name=f"{name}.bus", lanes=lanes)
        self._ledgers: list = []
        self.read_meter = BandwidthMeter(f"{name}.read")
        self.write_meter = BandwidthMeter(f"{name}.write")

    @classmethod
    def for_host(cls, sim: "Simulator", spec: HostSpec | None = None, name: str = "dram") -> "MemorySubsystem":
        """The host DRAM of the paper's Xeon server (~120 GB/s, 8 channels)."""
        spec = spec or HostSpec()
        return cls(
            sim,
            rate=spec.memory_rate,
            lanes=spec.memory_lanes,
            chunk=spec.memory_chunk,
            name=name,
        )

    @property
    def rate(self) -> float:
        """Achievable memory bandwidth in bytes/second."""
        return self._bus.rate

    @property
    def queue_length(self) -> int:
        """Transfers waiting for a memory lane right now."""
        return self._bus.queue_length

    @property
    def total_bytes(self) -> int:
        """All bytes moved (reads + writes)."""
        return self.read_meter.total_bytes + self.write_meter.total_bytes

    def attach_ledger(self, ledger: typing.Any) -> None:
        """Attach a byte-conservation ledger.

        Flow-tagged traffic is recorded under the directional points
        ``{name}.read`` / ``{name}.write`` (the meters' names), not the
        shared bus, so conservation checks can tell the directions apart.
        """
        self._ledgers.append(ledger)

    def read(self, nbytes: int, priority: int = 0, flow: str | None = None) -> typing.Any:
        """Process: read `nbytes` (chunked)."""
        return self.sim.process(self._chunked(nbytes, self.read_meter, priority, flow))

    def write(self, nbytes: int, priority: int = 0, flow: str | None = None) -> typing.Any:
        """Process: write `nbytes` (chunked)."""
        return self.sim.process(self._chunked(nbytes, self.write_meter, priority, flow))

    def _chunked(
        self, nbytes: int, meter: BandwidthMeter, priority: int, flow: str | None = None
    ) -> typing.Generator:
        remaining = nbytes
        while remaining > 0:
            step = min(self.chunk, remaining)
            yield self._bus.transfer(step, priority=priority, meter=meter)
            if flow is not None:
                for ledger in self._ledgers:
                    ledger.record(meter.name, flow, step)
            remaining -= step
        return nbytes

"""Host CPU model.

The middle-tier software runs on worker threads pinned to logical cores.
The model's only compute-heavy operation is LZ4 compression, whose rate
depends on SMT sharing (§5.2): a lone thread on a physical core runs at
~2.1 Gb/s, while two SMT siblings together reach ~2.7 Gb/s (1.35 Gb/s
each). :class:`CpuComplex` hands out per-thread
:class:`~repro.compression.model.CompressorProfile` objects that encode
that placement, plus the fixed header-parse and descriptor-post costs.
"""

from __future__ import annotations

from repro.compression.model import CompressorProfile
from repro.params import HostSpec
from repro.units import gbps

#: §5.2 calibration: one thread per physical core.
_LONE_THREAD_RATE = gbps(2.1)
#: §5.2 calibration: two SMT threads sharing a physical core, per thread.
_SMT_THREAD_RATE = gbps(2.7) / 2


class CpuComplex:
    """Thread placement and per-thread compute rates for one host CPU."""

    def __init__(self, spec: HostSpec | None = None) -> None:
        self.spec = spec or HostSpec()

    @property
    def logical_cores(self) -> int:
        """Total schedulable hardware threads."""
        return self.spec.logical_cores

    def validate_thread_count(self, n_threads: int) -> None:
        """Reject thread counts the machine cannot host."""
        if not 1 <= n_threads <= self.logical_cores:
            raise ValueError(
                f"thread count {n_threads} outside 1..{self.logical_cores} logical cores"
            )

    def _smt_shared(self, thread_index: int, n_threads: int) -> bool:
        """Whether thread `thread_index` shares its physical core.

        Threads fill physical cores first (one thread each), then wrap
        onto SMT siblings — the scheduling a tuned middle tier uses. So
        with <= 24 threads nobody shares; beyond that, the first
        ``n_threads - 24`` physical cores are doubly occupied.
        """
        self.validate_thread_count(n_threads)
        if not 0 <= thread_index < n_threads:
            raise ValueError(f"thread index {thread_index} outside 0..{n_threads - 1}")
        physical = self.spec.physical_cores
        if n_threads <= physical:
            return False
        doubled = n_threads - physical
        # Threads 0..doubled-1 got siblings (threads physical..n_threads-1).
        return thread_index < doubled or thread_index >= physical

    def compression_profile(self, thread_index: int, n_threads: int) -> CompressorProfile:
        """LZ4 input rate for one worker thread under a given placement."""
        if self._smt_shared(thread_index, n_threads):
            return CompressorProfile(f"cpu-thread-{thread_index}-smt", rate=_SMT_THREAD_RATE)
        return CompressorProfile(f"cpu-thread-{thread_index}", rate=_LONE_THREAD_RATE)

    def aggregate_compression_rate(self, n_threads: int) -> float:
        """Total LZ4 input bytes/second of `n_threads` busy workers."""
        return sum(
            self.compression_profile(i, n_threads).rate for i in range(n_threads)
        )

    @property
    def parse_header_time(self) -> float:
        """Seconds a worker spends parsing one block-storage header."""
        return self.spec.parse_header_time

    @property
    def post_descriptor_time(self) -> float:
        """Seconds a worker spends posting one work request / polling one CQE."""
        return self.spec.post_descriptor_time

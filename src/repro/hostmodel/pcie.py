"""PCIe interconnect model.

A PCIe 3.0 x16 link carries ~104 Gb/s per direction; the paper shows
(Table 1) that its DMA latency grows from ~1.4 us to ~7-11 us when the
link is heavily loaded. We model each direction as a FIFO
:class:`~repro.sim.bandwidth.BandwidthServer` with a fixed per-leg
propagation delay:

- a **DMA read** (device pulls host memory, "H2D" data direction) sends
  a read-request leg upstream, then receives the data downstream in
  read-completion chunks — each chunk queues separately, so loaded
  reads hurt more than loaded writes, as Table 1 observes;
- a **DMA write** (device pushes to host memory, "D2H") sends the data
  upstream in one transfer.
"""

from __future__ import annotations

import typing

from repro.params import HostSpec
from repro.sim.bandwidth import BandwidthServer
from repro.telemetry.metrics import BandwidthMeter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

#: Size of the read-request / completion-credit control leg.
_CONTROL_BYTES = 64


class PcieLink:
    """One PCIe slot: paired upstream (D2H) and downstream (H2D) pipes."""

    def __init__(self, sim: "Simulator", spec: HostSpec | None = None, name: str = "pcie") -> None:
        self.sim = sim
        self.spec = spec or HostSpec()
        self.name = name
        overhead = self.spec.pcie_leg_latency
        self.h2d = BandwidthServer(
            sim, rate=self.spec.pcie_rate, name=f"{name}.h2d", per_transfer_overhead=overhead
        )
        self.d2h = BandwidthServer(
            sim, rate=self.spec.pcie_rate, name=f"{name}.d2h", per_transfer_overhead=overhead
        )
        # Data meters: count payload bytes only. Control TLPs (read
        # requests, credits) occupy the link but are not data bandwidth,
        # matching how PCIe bandwidth is normally reported.
        self.h2d_meter = BandwidthMeter(f"{name}.h2d")
        self.d2h_meter = BandwidthMeter(f"{name}.d2h")

    def dma_read(self, nbytes: int, priority: int = 0) -> "Process":
        """Device reads `nbytes` of host memory; fires when all data arrived."""
        return self.sim.process(self._dma_read(nbytes, priority), name=f"{self.name}.read")

    def dma_write(self, nbytes: int, priority: int = 0) -> "Process":
        """Device writes `nbytes` into host memory; fires when posted upstream."""
        return self.sim.process(self._dma_write(nbytes, priority), name=f"{self.name}.write")

    def _dma_read(self, nbytes: int, priority: int) -> typing.Generator:
        # Read request travels upstream first (control, unmetered)...
        yield self.d2h.transfer(_CONTROL_BYTES, priority=priority)
        # ...then completions stream back in chunks, each queueing on the
        # downstream direction.
        chunk = self.spec.pcie_read_chunk
        remaining = nbytes
        while remaining > 0:
            step = min(chunk, remaining)
            yield self.h2d.transfer(step, priority=priority, meter=self.h2d_meter)
            remaining -= step
        return nbytes

    def _dma_write(self, nbytes: int, priority: int) -> typing.Generator:
        yield self.d2h.transfer(max(nbytes, 1), priority=priority, meter=self.d2h_meter)
        return nbytes

"""PCIe interconnect model.

A PCIe 3.0 x16 link carries ~104 Gb/s per direction; the paper shows
(Table 1) that its DMA latency grows from ~1.4 us to ~7-11 us when the
link is heavily loaded. We model each direction as a FIFO
:class:`~repro.sim.bandwidth.BandwidthServer` with a fixed per-leg
propagation delay:

- a **DMA read** (device pulls host memory, "H2D" data direction) sends
  a read-request leg upstream, then receives the data downstream in
  read-completion chunks — each chunk queues separately, so loaded
  reads hurt more than loaded writes, as Table 1 observes;
- a **DMA write** (device pushes to host memory, "D2H") sends the data
  upstream in one transfer.
"""

from __future__ import annotations

import typing

from repro.params import HostSpec
from repro.sim.bandwidth import BandwidthServer
from repro.telemetry.metrics import BandwidthMeter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.debug import FaultPlan, FlowLedger
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

#: Size of the read-request / completion-credit control leg.
_CONTROL_BYTES = 64


class PcieLink:
    """One PCIe slot: paired upstream (D2H) and downstream (H2D) pipes."""

    def __init__(
        self,
        sim: "Simulator",
        spec: HostSpec | None = None,
        name: str = "pcie",
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.sim = sim
        self.spec = spec or HostSpec()
        self.name = name
        #: Deterministic fault schedule; stall windows delay DMA legs.
        self.fault_plan = fault_plan
        overhead = self.spec.pcie_leg_latency
        self.h2d = BandwidthServer(
            sim, rate=self.spec.pcie_rate, name=f"{name}.h2d", per_transfer_overhead=overhead
        )
        self.d2h = BandwidthServer(
            sim, rate=self.spec.pcie_rate, name=f"{name}.d2h", per_transfer_overhead=overhead
        )
        # Data meters: count payload bytes only. Control TLPs (read
        # requests, credits) occupy the link but are not data bandwidth,
        # matching how PCIe bandwidth is normally reported.
        self.h2d_meter = BandwidthMeter(f"{name}.h2d")
        self.d2h_meter = BandwidthMeter(f"{name}.d2h")
        # Rendered once: a DMA process is spawned per transfer leg.
        self._read_name = f"{name}.read"
        self._write_name = f"{name}.write"

    def attach_ledger(self, ledger: "FlowLedger") -> None:
        """Attach a byte-conservation ledger to both directions."""
        self.h2d.attach_ledger(ledger)
        self.d2h.attach_ledger(ledger)

    def dma_read(self, nbytes: int, priority: int = 0, flow: str | None = None) -> "Process":
        """Device reads `nbytes` of host memory; fires when all data arrived."""
        return self.sim.process(self._dma_read(nbytes, priority, flow), name=self._read_name)

    def dma_write(self, nbytes: int, priority: int = 0, flow: str | None = None) -> "Process":
        """Device writes `nbytes` into host memory; fires when posted upstream."""
        return self.sim.process(self._dma_write(nbytes, priority, flow), name=self._write_name)

    def _maybe_stall(self, direction: str) -> typing.Generator:
        """Honor an injected stall window before a leg in `direction`."""
        if self.fault_plan is not None:
            delay = self.fault_plan.stall_delay(self.sim.now, direction)
            if delay > 0:
                yield self.sim.timeout(delay)

    def _dma_read(self, nbytes: int, priority: int, flow: str | None) -> typing.Generator:
        # Read request travels upstream first (control, unmetered)...
        yield from self._maybe_stall("d2h")
        yield self.d2h.transfer(_CONTROL_BYTES, priority=priority)
        # ...then completions stream back in chunks, each queueing on the
        # downstream direction.
        chunk = self.spec.pcie_read_chunk
        remaining = nbytes
        while remaining > 0:
            step = min(chunk, remaining)
            yield from self._maybe_stall("h2d")
            yield self.h2d.transfer(step, priority=priority, meter=self.h2d_meter, flow=flow)
            remaining -= step
        return nbytes

    def _dma_write(self, nbytes: int, priority: int, flow: str | None) -> typing.Generator:
        yield from self._maybe_stall("d2h")
        yield self.d2h.transfer(max(nbytes, 1), priority=priority, meter=self.d2h_meter, flow=flow)
        return nbytes

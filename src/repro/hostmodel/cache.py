"""LLC / Intel DDIO model.

DDIO lets device DMA writes allocate into 2 of the LLC's 11 ways and
serves device DMA reads from the LLC (§3.2). Whether that saves DRAM
traffic depends entirely on whether the DMA *working set* fits in the
DDIO capacity before it is evicted:

- a tight packet-forwarding pipeline (the Fig. 7/8 benchmark for the
  accelerator baseline) keeps its ring small -> DMA reads hit the LLC;
- the middle tier's intermediate buffer is ~400 MB (Little's law, §3.2)
  -> the data is long evicted before reuse, so DDIO cannot help.

The model answers one question per transfer: does this DMA touch DRAM,
and with how many bytes?
"""

from __future__ import annotations

import dataclasses

from repro.params import HostSpec


@dataclasses.dataclass(frozen=True)
class DmaTraffic:
    """DRAM bytes a DMA transfer generates (0 when the LLC absorbs it)."""

    dram_read: int
    dram_write: int


class DdioLlc:
    """Decides LLC-vs-DRAM placement for device DMA traffic."""

    def __init__(self, spec: HostSpec | None = None, enabled: bool = True) -> None:
        self.spec = spec or HostSpec()
        self.enabled = enabled

    @property
    def ddio_capacity(self) -> int:
        """Bytes available to DDIO write-allocation (2 of 11 LLC ways)."""
        return self.spec.ddio_capacity

    def fits(self, working_set: int) -> bool:
        """True if a DMA working set cycles within the DDIO ways."""
        return self.enabled and working_set <= self.ddio_capacity

    def dma_write(self, nbytes: int, working_set: int) -> DmaTraffic:
        """Device writes `nbytes` into host memory (e.g. NIC rx DMA).

        If the working set fits, the write allocates into the LLC and
        the line is reused before eviction: no DRAM traffic. Otherwise
        the allocation evicts earlier lines: DRAM sees the write.
        """
        if nbytes < 0 or working_set < 0:
            raise ValueError("byte counts must be non-negative")
        if self.fits(working_set):
            return DmaTraffic(dram_read=0, dram_write=0)
        return DmaTraffic(dram_read=0, dram_write=nbytes)

    def dma_read(self, nbytes: int, working_set: int) -> DmaTraffic:
        """Device reads `nbytes` from host memory (e.g. NIC tx DMA).

        A read hits the LLC only if the producer's working set kept the
        data resident; otherwise DRAM serves it.
        """
        if nbytes < 0 or working_set < 0:
            raise ValueError("byte counts must be non-negative")
        if self.fits(working_set):
            return DmaTraffic(dram_read=0, dram_write=0)
        return DmaTraffic(dram_read=nbytes, dram_write=0)

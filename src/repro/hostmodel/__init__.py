"""Host hardware models: CPU complex, memory subsystem, LLC/DDIO, PCIe.

These models reproduce the three pressures §3 of the paper measures on a
CPU-based middle-tier server — computation (LZ4 on cores), memory
bandwidth (Fig. 4), and PCIe interconnect (Table 1) — as queueing on
shared :class:`~repro.sim.bandwidth.BandwidthServer` pipes.
"""

from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.cpu import CpuComplex
from repro.hostmodel.memory import MemorySubsystem
from repro.hostmodel.pcie import PcieLink

__all__ = ["CpuComplex", "DdioLlc", "MemorySubsystem", "PcieLink"]

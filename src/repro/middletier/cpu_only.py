"""The traditional CPU-based middle tier (Fig. 1a).

Every message crosses PCIe into host DRAM; worker threads parse headers
and run LZ4 on general-purpose cores (2.1 Gb/s per lone thread,
2.7 Gb/s per SMT pair); compressed blocks cross PCIe again on their way
to the replica set. Flexibility is maximal — and so is the pressure on
cores, DRAM, and PCIe, which is exactly what Figs. 7-9 measure.
"""

from __future__ import annotations

import typing

from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.cpu import CpuComplex
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier.base import MiddleTierServer
from repro.middletier.cluster import Testbed
from repro.net.message import Message, Payload, compress_payload
from repro.net.nic import HostNic
from repro.net.roce import QueuePair

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: CPU LZ4 decompression runs >7x faster than compression (§2.2.3, [49]).
_DECOMPRESSION_SPEEDUP = 7.0


class CpuOnlyMiddleTier(MiddleTierServer):
    """Compression on host cores; the paper's "CPU-only" baseline."""

    design_name = "CPU-only"
    #: control plane runs entirely in host software.
    flexible = True

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int,
        address: str = "tier0",
        ddio_enabled: bool = True,
        memory: MemorySubsystem | None = None,
        replica_timeout: float | None = None,
    ) -> None:
        self._ddio_enabled = ddio_enabled
        self._shared_memory = memory
        self.cpu = CpuComplex(testbed.platform.host)
        self.cpu.validate_thread_count(n_workers)
        extra = {} if replica_timeout is None else {"replica_timeout": replica_timeout}
        super().__init__(sim, testbed, n_workers, address=address, **extra)

    def _build(self) -> None:
        host = self.platform.host
        self.memory = self._shared_memory or MemorySubsystem.for_host(
            self.sim, host, name=f"{self.address}.dram"
        )
        self.llc = DdioLlc(host, enabled=self._ddio_enabled)
        self.nic = HostNic(
            self.sim,
            self.address,
            self.memory,
            self.llc,
            host_spec=host,
            network_spec=self.platform.network,
            workload_spec=self.platform.workload,
        )
        self.client_endpoint = self.nic.endpoint
        self.storage_endpoint = self.nic.endpoint

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        host = self.platform.host
        payload = message.payload
        if payload is None:
            raise ValueError("write_request without payload")
        yield self.sim.timeout(host.parse_header_time)
        if message.header.get("latency_sensitive") or not self._compression_allowed():
            outgoing = payload  # forwarded raw (Listing 1 / brownout rung 3)
        else:
            profile = self.cpu.compression_profile(worker_index, self.n_workers)
            # The DMA ring is long evicted (§3.2): compression streams the
            # payload from DRAM and writes the result back for NIC egress.
            yield self.memory.read(payload.size)
            yield self.sim.timeout(profile.time_for(payload.size))
            outgoing = compress_payload(payload)
            yield self.memory.write(outgoing.size)
        posts = self.platform.storage.replication + 1  # replicas + VM ack
        yield self.sim.timeout(host.post_descriptor_time * posts)
        self._spawn_completion(qp, message, outgoing)

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        profile = self.cpu.compression_profile(worker_index, self.n_workers)
        original = payload.original_size or payload.size
        yield self.memory.read(payload.size)
        yield self.sim.timeout(original / (profile.rate * _DECOMPRESSION_SPEEDUP))
        yield self.memory.write(original)

"""Middle-tier maintenance services (§2.2.3).

Besides real-time I/O serving, every middle-tier server runs:

- **LSM compaction** — served writes are retained in memory; once a
  chunk accumulates a threshold of writes, they are compacted (latest
  version per block wins) and the result re-persisted;
- **garbage collection** — the pre-compaction blocks' disk space on the
  storage servers is reclaimed;
- **snapshots** — periodic point-in-time pins of the chunk stores;
- **fail-over monitoring** — heartbeats detect dead storage servers and
  re-replicate the retained blocks they held.

These services consume host memory bandwidth and CPU alongside the
real-time path — the interference §5.3 measures performance isolation
against.
"""

from __future__ import annotations

import typing

from repro.middletier.admission import address_token, jitter_unit
from repro.middletier.base import MiddleTierServer, RetainedWrite
from repro.net.message import Message
from repro.sim.events import AnyOf
from repro.telemetry.metrics import Counter
from repro.units import gBps, msec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.storage.server import StorageServer


def probe_delay(
    seed: int, interval: float, jitter: float, address: str, count: int
) -> float:
    """Delay before re-probe `count` of suspected server `address`.

    A pure function of its arguments — two tiers with different seeds
    de-synchronize their probes of the same recovering server (no probe
    storm), while a replay under the same ``REPRO_FAULT_SEED`` gets the
    identical schedule. The draw spreads the delay over
    ``interval * [1 - jitter, 1 + jitter]``.
    """
    unit = jitter_unit(seed, address_token(address), count)
    return interval * (1.0 - jitter + 2.0 * jitter * unit)


class LsmCompactionService:
    """Compacts retained writes chunk by chunk and reclaims disk space."""

    def __init__(
        self,
        sim: "Simulator",
        tier: MiddleTierServer,
        threshold: int = 16,
        scan_interval: float = msec(1),
        merge_rate: float = gBps(10),
    ) -> None:
        if threshold < 2:
            raise ValueError(f"compaction threshold must be >= 2, got {threshold}")
        self.sim = sim
        self.tier = tier
        self.threshold = threshold
        self.scan_interval = scan_interval
        self.merge_rate = merge_rate
        self.compactions = Counter("compactions")
        self.blocks_in = Counter("compaction-blocks-in")
        self.blocks_out = Counter("compaction-blocks-out")
        self.bytes_reclaimed = Counter("compaction-bytes-reclaimed")
        #: where the previous compaction of each block landed, so a later
        #: compaction of the same chunk can GC the superseded output too.
        self._previous_output: dict[tuple[int, int], tuple[tuple[str, int], ...]] = {}
        tier.retain_writes = True
        self._running = True
        sim.process(self._loop(), name="lsm-compaction", daemon=True)

    def stop(self) -> None:
        """Stop scanning after the current pass."""
        self._running = False

    def _loop(self) -> typing.Generator:
        while self._running:
            yield self.sim.timeout(self.scan_interval)
            ripe = [
                chunk_id
                for chunk_id, entries in self.tier._chunk_log.items()
                if len(entries) >= self.threshold
            ]
            for chunk_id in ripe:
                yield self.sim.process(self._compact(chunk_id))

    def _compact(self, chunk_id: int) -> typing.Generator:
        entries = self.tier._chunk_log.pop(chunk_id, [])
        if not entries:
            return
        # Bulkhead: compaction is the background tenant — it is paced
        # down whenever the foreground path is under pressure.
        if self.tier.admission is not None:
            yield from self.tier.admission.bulkhead.acquire()
        self.compactions.add()
        self.blocks_in.add(len(entries))
        total_bytes = sum(entry.payload.size for entry in entries)
        # Read the retained blocks out of middle-tier memory and merge —
        # this is the background memory/CPU pressure of §5.3.
        memory = getattr(self.tier, "memory", None)
        if memory is not None:
            yield memory.read(total_bytes)
        yield self.sim.timeout(total_bytes / self.merge_rate)

        # Latest version per block wins.
        latest: dict[int, RetainedWrite] = {}
        for entry in entries:
            latest[entry.block_id] = entry
        self.blocks_out.add(len(latest))

        # Re-persist the survivors concurrently (compactors batch their
        # output); they become the chunk's new log.
        new_records: dict[int, tuple[tuple[str, int], ...]] = {}
        batch = []
        for block_id, entry in latest.items():
            synthetic = Message(
                kind="write_request",
                src=self.tier.address,
                dst=self.tier.address,
                header_size=self.tier.platform.workload.header_size,
                header={"chunk_id": chunk_id, "block_id": block_id, "compacted": True},
            )
            servers = self.tier.testbed.policy.choose()
            targets = {server.address for server in servers}
            writes = [
                self.sim.process(
                    self.tier._write_replica(server, synthetic, entry.payload, exclude=targets)
                )
                for server in servers
            ]
            batch.append((block_id, writes))
        for block_id, writes in batch:
            results = yield self.sim.all_of(writes)
            new_records[block_id] = tuple(results[write] for write in writes)
            self.tier._block_locations[(chunk_id, block_id)] = tuple(
                address for address, _ in new_records[block_id]
            )

        # ...and GC every superseded location on its server: the raw
        # retained writes, plus the previous compaction's output for any
        # block that was just rewritten.
        dead_by_server: dict[str, list[int]] = {}
        for entry in entries:
            for address, location in entry.replicas:
                if location >= 0:
                    dead_by_server.setdefault(address, []).append(location)
        for block_id in latest:
            for address, location in self._previous_output.pop((chunk_id, block_id), ()):
                if location >= 0:
                    dead_by_server.setdefault(address, []).append(location)
        for block_id, records in new_records.items():
            self._previous_output[(chunk_id, block_id)] = records
        for address, locations in dead_by_server.items():
            server = self.tier.testbed.server(address)
            reclaimed = yield self.sim.process(self._gc(server, chunk_id, locations))
            self.bytes_reclaimed.add(reclaimed)

    def _gc(
        self, server: "StorageServer", chunk_id: int, locations: list[int]
    ) -> typing.Generator:
        qp, matcher = self.tier._storage_links[server.address]
        message = Message(
            kind="storage_gc",
            src=self.tier.address,
            dst=server.address,
            header={"chunk_id": chunk_id, "dead_locations": tuple(locations)},
        )
        ack_event = matcher.expect(message.request_id)
        yield qp.send(message)
        ack: Message = yield ack_event
        return ack.header.get("reclaimed", 0)


class SnapshotService:
    """Periodic point-in-time snapshots of every storage server."""

    def __init__(
        self, sim: "Simulator", tier: MiddleTierServer, interval: float = msec(50)
    ) -> None:
        self.sim = sim
        self.tier = tier
        self.interval = interval
        self.snapshots_taken = Counter("snapshots")
        self.snapshot_ids: dict[str, list[int]] = {}
        self._running = True
        sim.process(self._loop(), name="snapshot-service", daemon=True)

    def stop(self) -> None:
        """Stop after the current round."""
        self._running = False

    def _loop(self) -> typing.Generator:
        while self._running:
            yield self.sim.timeout(self.interval)
            # Bulkhead: snapshot rounds wait out foreground pressure.
            if self.tier.admission is not None:
                yield from self.tier.admission.bulkhead.acquire()
            for server in self.tier.testbed.storage_servers:
                if server.failed:
                    continue
                qp, matcher = self.tier._storage_links[server.address]
                message = Message(
                    kind="storage_snapshot", src=self.tier.address, dst=server.address
                )
                ack_event = matcher.expect(message.request_id)
                yield qp.send(message)
                ack: Message = yield ack_event
                self.snapshot_ids.setdefault(server.address, []).append(
                    ack.header["snapshot_id"]
                )
                self.snapshots_taken.add()


class HeartbeatMonitor:
    """Detects dead storage servers and re-replicates what they held.

    The monitor registers itself as the tier's health oracle
    (``tier.health``): replica selection on both the write fail-over
    path and the read fail-over rotation consults :meth:`is_healthy`
    to skip suspected servers. Suspected servers keep being re-probed
    on a *seeded-jitter* schedule (see :func:`probe_delay`) so monitors
    on different tiers don't hammer a recovering server in lockstep; a
    server that comes back (e.g. a transient partition) is un-suspected
    and returns to the selection pool.
    """

    def __init__(
        self,
        sim: "Simulator",
        tier: MiddleTierServer,
        interval: float = msec(1),
        timeout: float = msec(2),
        seed: int = 0,
        probe_jitter: float = 0.35,
    ) -> None:
        if not 0.0 <= probe_jitter < 1.0:
            raise ValueError(f"probe_jitter must be in [0, 1), got {probe_jitter}")
        self.sim = sim
        self.tier = tier
        self.interval = interval
        self.timeout = timeout
        self.seed = seed
        self.probe_jitter = probe_jitter
        self.suspected: set[str] = set()
        self.failures_detected = Counter("failures-detected")
        self.recoveries_detected = Counter("recoveries-detected")
        self.blocks_re_replicated = Counter("blocks-re-replicated")
        #: per suspected server: re-probes issued so far / next due time.
        self._probe_counts: dict[str, int] = {}
        self._next_probe: dict[str, float] = {}
        self._running = True
        tier.health = self
        sim.process(self._loop(), name="heartbeat-monitor", daemon=True)

    def stop(self) -> None:
        """Stop after the current round."""
        self._running = False

    def is_healthy(self, address: str) -> bool:
        """Whether `address` is currently believed alive."""
        return address not in self.suspected

    def _loop(self) -> typing.Generator:
        while self._running:
            yield self.sim.timeout(self.interval)
            for server in self.tier.testbed.storage_servers:
                address = server.address
                if address in self.suspected:
                    # Suspected servers are re-probed on their own
                    # jittered schedule, not every healthy-ping round —
                    # de-synchronized across monitors by seed.
                    if self.sim.now < self._next_probe.get(address, 0.0):
                        continue
                    alive = yield self.sim.process(self._ping(server))
                    if alive:
                        # The server came back: return it to the pool.
                        self.suspected.discard(address)
                        self._probe_counts.pop(address, None)
                        self._next_probe.pop(address, None)
                        self.recoveries_detected.add()
                    else:
                        count = self._probe_counts.get(address, 0) + 1
                        self._probe_counts[address] = count
                        self._next_probe[address] = self.sim.now + probe_delay(
                            self.seed, self.interval, self.probe_jitter, address, count
                        )
                    continue
                alive = yield self.sim.process(self._ping(server))
                if not alive:
                    self.suspected.add(address)
                    self.failures_detected.add()
                    self._probe_counts[address] = 0
                    self._next_probe[address] = self.sim.now + probe_delay(
                        self.seed, self.interval, self.probe_jitter, address, 0
                    )
                    yield self.sim.process(self._re_replicate(server.address))

    def _ping(self, server: "StorageServer") -> typing.Generator:
        qp, matcher = self.tier._storage_links[server.address]
        message = Message(kind="storage_ping", src=self.tier.address, dst=server.address)
        pong_event = matcher.expect(message.request_id)
        yield qp.send(message)
        deadline = self.sim.timeout(self.timeout)
        yield AnyOf(self.sim, [pong_event, deadline])
        if pong_event.triggered:
            return True
        matcher.forget(message.request_id)
        return False

    def _re_replicate(self, failed_address: str) -> typing.Generator:
        """Restore replication of retained blocks the dead server held."""
        for chunk_id, entries in self.tier._chunk_log.items():
            for entry in entries:
                holders = [address for address, _ in entry.replicas]
                if failed_address not in holders:
                    continue
                replacement = self._pick_replacement(exclude=set(holders))
                if replacement is None:
                    continue
                synthetic = Message(
                    kind="write_request",
                    src=self.tier.address,
                    dst=self.tier.address,
                    header_size=self.tier.platform.workload.header_size,
                    header={"chunk_id": chunk_id, "block_id": entry.block_id},
                )
                self.tier.testbed.policy.claim(replacement)
                result = yield self.sim.process(
                    self.tier._write_replica(
                        replacement, synthetic, entry.payload, exclude=set(holders)
                    )
                )
                entry.replicas = tuple(
                    r for r in entry.replicas if r[0] != failed_address
                ) + (result,)
                self.tier._block_locations[(chunk_id, entry.block_id)] = tuple(
                    address for address, _ in entry.replicas
                )
                self.blocks_re_replicated.add()

    def _pick_replacement(self, exclude: set[str]) -> "StorageServer | None":
        candidates = [
            server
            for server in self.tier.testbed.storage_servers
            if server.address not in exclude
            and server.address not in self.suspected
            and not server.failed
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: self.tier.testbed.policy.outstanding(s))

"""The naive FPGA SmartNIC middle tier (Fig. 1c).

Both the control logic *and* the compression are cast into FPGA
hardware: headers are parsed by gateware, payloads never leave device
memory, and the host CPU is not involved at all. Throughput is
excellent — the design's fatal flaw is flexibility (§3.3): the control
plane that clouds update ~7 times in 4 months is frozen into hardware,
which this class records as ``flexible = False``.
"""

from __future__ import annotations

import typing

from repro.compression.model import FPGA_ENGINE, CompressorProfile
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier.base import MiddleTierServer
from repro.middletier.cluster import Testbed
from repro.middletier.soc_smartnic import DeviceMemoryDatapath
from repro.net.link import NetworkPort
from repro.net.message import Message, Payload, compress_payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.sim.resources import Resource
from repro.units import kib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class NaiveFpgaMiddleTier(MiddleTierServer):
    """Everything-in-gateware offload; the paper's Fig. 1c strawman."""

    design_name = "FPGA-only"
    #: the control plane is hardware: fast, but it cannot iterate.
    flexible = False

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int = 1,
        address: str = "tier0",
        engine_profile: CompressorProfile = FPGA_ENGINE,
    ) -> None:
        self._engine_profile = engine_profile
        # `n_workers` is the number of parallel hardware pipelines, each
        # with a dedicated compression engine.
        super().__init__(sim, testbed, n_workers, address=address)

    def _build(self) -> None:
        spec = self.platform.smartds  # same VCU128 board as SmartDS
        self.device_memory = MemorySubsystem(
            self.sim,
            rate=spec.hbm_rate,
            lanes=spec.hbm_lanes,
            chunk=kib(64),
            name=f"{self.address}.hbm",
        )
        self.port = NetworkPort(
            self.sim, rate=self.platform.network.port_rate, name=f"{self.address}.port"
        )
        endpoint = RoceEndpoint(
            self.sim,
            self.port,
            self.address,
            datapath=DeviceMemoryDatapath(self.device_memory),
            spec=self.platform.network,
        )
        # One compression engine per hardware pipeline; blocks stream
        # through them (the engine's setup latency pipelines).
        self.engines = Resource(self.sim, capacity=self.n_workers, name=f"{self.address}.engines")
        self.client_endpoint = endpoint
        self.storage_endpoint = endpoint

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        payload = message.payload
        if payload is None:
            raise ValueError("write_request without payload")
        # Hardware parse, then hand the block to an engine; the parse
        # pipeline moves straight on to the next message.
        yield self.sim.timeout(self.platform.smartds.hw_parse_time)
        self.sim.process(self._compress_and_complete(qp, message))

    def _compress_and_complete(self, qp: QueuePair, message: Message) -> typing.Generator:
        payload = message.payload
        if message.header.get("latency_sensitive") or not self._compression_allowed():
            outgoing = payload
        else:
            outgoing = yield self.sim.process(self._engine_compress(payload))
        self._spawn_completion(qp, message, outgoing)

    def _engine_compress(self, payload: Payload) -> typing.Generator:
        yield self.device_memory.read(payload.size)
        slot = self.engines.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engines.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        outgoing = compress_payload(payload)
        yield self.device_memory.write(outgoing.size)
        return outgoing

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        yield self.device_memory.read(payload.size)
        slot = self.engines.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engines.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        yield self.device_memory.write(payload.original_size or payload.size)

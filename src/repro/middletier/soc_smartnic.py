"""The SoC-based SmartNIC middle tier (Fig. 1d) — BlueField-2.

Everything runs on the SmartNIC: wimpy Arm cores parse headers, the
on-board compression engine (~40 Gb/s) processes payloads, and the
payload crosses the card's weak DDR several times (§3.4). No host
involvement means the lowest unloaded latency, but the engine and the
device memory cap throughput far below the networking ability.
"""

from __future__ import annotations

import typing

from repro.compression.model import BF2_ENGINE, CompressorProfile
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier.base import MiddleTierServer
from repro.middletier.cluster import Testbed
from repro.net.link import NetworkPort
from repro.net.message import Message, Payload, compress_payload
from repro.net.roce import Datapath, QueuePair, RoceEndpoint
from repro.sim.resources import Resource
from repro.units import kib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class DeviceMemoryDatapath(Datapath):
    """Every message lands in / departs from the SmartNIC's own DRAM."""

    def __init__(self, device_memory: MemorySubsystem) -> None:
        self.device_memory = device_memory

    def ingress(self, message: Message, qp: QueuePair) -> typing.Generator:
        yield self.device_memory.write(message.size)
        return False

    def egress(self, message: Message, qp: QueuePair) -> typing.Generator:
        yield self.device_memory.read(message.size)
        return None


class BlueField2MiddleTier(MiddleTierServer):
    """The paper's "BF2" baseline: SoC SmartNIC with on-board engine."""

    design_name = "BF2"
    #: control plane runs on embedded Arm cores — flexible but wimpy.
    flexible = True

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int,
        address: str = "tier0",
        engine_profile: CompressorProfile = BF2_ENGINE,
    ) -> None:
        arm_cores = testbed.platform.bluefield2.arm_cores
        if n_workers > arm_cores:
            raise ValueError(f"BlueField-2 has {arm_cores} Arm cores, asked for {n_workers}")
        self._engine_profile = engine_profile
        super().__init__(sim, testbed, n_workers, address=address)

    def _build(self) -> None:
        spec = self.platform.bluefield2
        self.device_memory = MemorySubsystem(
            self.sim,
            rate=spec.device_memory_rate,
            lanes=spec.device_memory_lanes,
            chunk=kib(64),
            name=f"{self.address}.ddr",
        )
        self.port = NetworkPort(
            self.sim, rate=self.platform.network.port_rate, name=f"{self.address}.port"
        )
        datapath = DeviceMemoryDatapath(self.device_memory)
        endpoint = RoceEndpoint(
            self.sim, self.port, self.address, datapath=datapath, spec=self.platform.network
        )
        self.engine = Resource(self.sim, capacity=1, name=f"{self.address}.engine")
        self.client_endpoint = endpoint
        self.storage_endpoint = endpoint

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        if message.payload is None:
            raise ValueError("write_request without payload")
        # The Arm core parses the header (it reads it from device DDR,
        # negligible bytes) and posts the engine descriptor.
        yield self.sim.timeout(self.platform.bluefield2.arm_parse_time)
        self.sim.process(self._compress_and_complete(qp, message))

    def _compress_and_complete(self, qp: QueuePair, message: Message) -> typing.Generator:
        payload = message.payload
        if message.header.get("latency_sensitive") or not self._compression_allowed():
            outgoing = payload
        else:
            outgoing = yield self.sim.process(self._engine_compress(payload))
        self._spawn_completion(qp, message, outgoing)

    def _engine_compress(self, payload: Payload) -> typing.Generator:
        """Off-path engine: DDR read, compress, DDR write (§3.4's passes)."""
        yield self.device_memory.read(payload.size)
        slot = self.engine.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engine.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        outgoing = compress_payload(payload)
        yield self.device_memory.write(outgoing.size)
        return outgoing

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        yield self.device_memory.read(payload.size)
        slot = self.engine.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engine.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        yield self.device_memory.write(payload.original_size or payload.size)


class BlueField3MiddleTier(MiddleTierServer):
    """The upcoming BlueField-3 as a middle tier (§3.4's thought experiment).

    No compression engine: the 16 Arm cores do LZ4 themselves at a
    combined ~50 Gb/s against 400 Gb/s of networking. The design shows
    exactly the mismatch the paper argues — plenty of ports, not enough
    compute or device-memory bandwidth behind them.
    """

    design_name = "BF3"
    flexible = True

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int | None = None,
        address: str = "tier0",
    ) -> None:
        spec = testbed.platform.bluefield3
        workers = spec.arm_cores if n_workers is None else n_workers
        if workers > spec.arm_cores:
            raise ValueError(f"BlueField-3 has {spec.arm_cores} Arm cores, asked for {workers}")
        super().__init__(sim, testbed, workers, address=address)

    def _build(self) -> None:
        spec = self.platform.bluefield3
        self.device_memory = MemorySubsystem(
            self.sim,
            rate=spec.device_memory_rate,
            lanes=spec.device_memory_lanes,
            chunk=kib(64),
            name=f"{self.address}.ddr",
        )
        self.port = NetworkPort(self.sim, rate=spec.port_rate, name=f"{self.address}.port")
        endpoint = RoceEndpoint(
            self.sim,
            self.port,
            self.address,
            datapath=DeviceMemoryDatapath(self.device_memory),
            spec=self.platform.network,
        )
        self.client_endpoint = endpoint
        self.storage_endpoint = endpoint

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        spec = self.platform.bluefield3
        payload = message.payload
        if payload is None:
            raise ValueError("write_request without payload")
        yield self.sim.timeout(spec.arm_parse_time)
        if message.header.get("latency_sensitive") or not self._compression_allowed():
            outgoing = payload
        else:
            # Compression runs ON the Arm core: the worker is busy for
            # the whole block (this is the §3.4 bottleneck).
            yield self.device_memory.read(payload.size)
            yield self.sim.timeout(payload.size / spec.per_core_compression_rate)
            outgoing = compress_payload(payload)
            yield self.device_memory.write(outgoing.size)
        self._spawn_completion(qp, message, outgoing)

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        spec = self.platform.bluefield3
        original = payload.original_size or payload.size
        yield self.device_memory.read(payload.size)
        # Arm decompression, ~7x faster than compression (§2.2.3).
        yield self.sim.timeout(original / (spec.per_core_compression_rate * 7))
        yield self.device_memory.write(original)

"""LBA -> segment -> chunk address mapping.

VMs address their virtual disks in logical block addressing; the middle
tier maps an LBA to a 32 GB segment, and segments are divided into
64 MB chunks (§2.1). Each I/O request targets one chunk; a chunk is the
unit of LSM-style compaction and garbage collection.
"""

from __future__ import annotations

import dataclasses

from repro.params import StorageSpec


@dataclasses.dataclass(frozen=True)
class BlockAddress:
    """Fully resolved location of one logical block."""

    lba: int
    segment_id: int
    chunk_id: int
    chunk_offset: int


class AddressMapper:
    """Pure address arithmetic for one virtual disk."""

    def __init__(self, spec: StorageSpec | None = None, block_size: int = 4096) -> None:
        self.spec = spec or StorageSpec()
        if block_size < 1:
            raise ValueError(f"block size must be positive, got {block_size}")
        if self.spec.chunk_bytes % block_size:
            raise ValueError("chunk size must be a multiple of the block size")
        if self.spec.segment_bytes % self.spec.chunk_bytes:
            raise ValueError("segment size must be a multiple of the chunk size")
        self.block_size = block_size

    @property
    def blocks_per_chunk(self) -> int:
        """4 KB blocks held by one 64 MB chunk."""
        return self.spec.chunk_bytes // self.block_size

    @property
    def chunks_per_segment(self) -> int:
        """64 MB chunks held by one 32 GB segment."""
        return self.spec.segment_bytes // self.spec.chunk_bytes

    def resolve(self, lba: int) -> BlockAddress:
        """Map a logical block address to its segment/chunk coordinates."""
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        byte_offset = lba * self.block_size
        segment_id = byte_offset // self.spec.segment_bytes
        chunk_index_global = byte_offset // self.spec.chunk_bytes
        chunk_offset = byte_offset % self.spec.chunk_bytes
        return BlockAddress(
            lba=lba,
            segment_id=segment_id,
            chunk_id=chunk_index_global,
            chunk_offset=chunk_offset,
        )

    @property
    def blocks_per_segment(self) -> int:
        """4 KB blocks held by one 32 GB segment."""
        return self.spec.segment_bytes // self.block_size

    def segment_of(self, lba: int) -> int:
        """Segment id holding `lba` — the routing unit of the cluster
        directory (:mod:`repro.cluster`), so routing code never
        re-derives the segment arithmetic."""
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        return (lba * self.block_size) // self.spec.segment_bytes

    def segments_of_range(self, lba: int, n_blocks: int) -> range:
        """Segment ids touched by `n_blocks` contiguous blocks from `lba`.

        Empty for a zero-length range; spans multiple segments when the
        range crosses a 32 GB boundary.
        """
        if n_blocks < 0:
            raise ValueError(f"negative block count {n_blocks}")
        if n_blocks == 0:
            first = self.segment_of(max(lba, 0))
            return range(first, first)
        first = self.segment_of(lba)
        last = self.segment_of(lba + n_blocks - 1)
        return range(first, last + 1)

    def lbas_of_chunk(self, chunk_id: int) -> range:
        """All LBAs resident in one chunk."""
        if chunk_id < 0:
            raise ValueError(f"negative chunk id {chunk_id}")
        first = chunk_id * self.blocks_per_chunk
        return range(first, first + self.blocks_per_chunk)

"""Testbed wiring: the storage side of the experimental platform.

Builds the back-end cluster the middle-tier designs write to — storage
servers with their flash devices and the replication policy — mirroring
the paper's setup of one request issuer, one middle-tier server, and
three storage servers (§5.1), with more servers available for the
multi-port/multi-NIC scaling experiments.
"""

from __future__ import annotations

import typing

from repro.params import PlatformSpec
from repro.storage.replication import ReplicationPolicy
from repro.storage.server import StorageServer

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Testbed:
    """Storage servers plus the replica-placement policy."""

    __test__ = False  # not a pytest class, despite the importable name

    def __init__(
        self,
        sim: "Simulator",
        platform: PlatformSpec | None = None,
        n_storage_servers: int | None = None,
        servers: typing.Sequence[StorageServer] | None = None,
    ) -> None:
        self.sim = sim
        self.platform = platform or PlatformSpec()
        if servers is not None:
            if n_storage_servers is not None and n_storage_servers != len(servers):
                raise ValueError(
                    f"n_storage_servers={n_storage_servers} disagrees with "
                    f"{len(servers)} explicit servers"
                )
            count = len(servers)
        else:
            count = n_storage_servers or self.platform.storage.replication
        if count < self.platform.storage.replication:
            raise ValueError(
                f"{count} storage servers cannot host "
                f"{self.platform.storage.replication}-way replication"
            )
        self.storage_servers = (
            list(servers)
            if servers is not None
            else [
                StorageServer(sim, f"storage{i}", network_spec=self.platform.network)
                for i in range(count)
            ]
        )
        self._by_address: dict[str, StorageServer] = {}
        for server in self.storage_servers:
            if server.address in self._by_address:
                raise ValueError(f"duplicate storage server address {server.address!r}")
            self._by_address[server.address] = server
        self.policy = ReplicationPolicy(
            self.storage_servers, replication=self.platform.storage.replication
        )

    def server(self, address: str) -> StorageServer:
        """Look a storage server up by address (O(1))."""
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"no storage server {address!r}") from None

"""Middle-tier server designs.

The paper compares four middle-tier architectures (Fig. 1) plus
SmartDS. This package implements the baselines and the shared
write/read-path machinery:

- :class:`~repro.middletier.cpu_only.CpuOnlyMiddleTier` -- Fig. 1a,
  compression on host cores;
- :class:`~repro.middletier.accelerator.AcceleratorMiddleTier` --
  Fig. 1b, FPGA compression behind a second PCIe device (±DDIO);
- :class:`~repro.middletier.naive_fpga.NaiveFpgaMiddleTier` -- Fig. 1c,
  everything offloaded to the SmartNIC (no host flexibility);
- :class:`~repro.middletier.soc_smartnic.BlueField2MiddleTier` --
  Fig. 1d, Arm cores + on-board engine with weak device memory.

The SmartDS middle tier lives in :mod:`repro.core.server`, built on the
SmartDS device and its AAMS API.
"""

from repro.middletier.accelerator import AcceleratorMiddleTier
from repro.middletier.admission import (
    LEVEL_NAMES,
    AdmissionController,
    BrownoutController,
    Bulkhead,
    CircuitBreaker,
    TenantCredits,
)
from repro.middletier.base import MiddleTierServer, ResponseMatcher, RetainedWrite
from repro.middletier.cluster import Testbed
from repro.middletier.cpu_only import CpuOnlyMiddleTier
from repro.middletier.maintenance import (
    HeartbeatMonitor,
    LsmCompactionService,
    SnapshotService,
    probe_delay,
)
from repro.middletier.mapping import AddressMapper
from repro.middletier.naive_fpga import NaiveFpgaMiddleTier
from repro.middletier.retry import RetryPolicy
from repro.middletier.soc_smartnic import BlueField2MiddleTier

__all__ = [
    "AcceleratorMiddleTier",
    "AddressMapper",
    "AdmissionController",
    "BlueField2MiddleTier",
    "BrownoutController",
    "Bulkhead",
    "CircuitBreaker",
    "CpuOnlyMiddleTier",
    "HeartbeatMonitor",
    "LEVEL_NAMES",
    "LsmCompactionService",
    "MiddleTierServer",
    "NaiveFpgaMiddleTier",
    "ResponseMatcher",
    "RetainedWrite",
    "RetryPolicy",
    "SnapshotService",
    "TenantCredits",
    "Testbed",
    "probe_delay",
]

"""The accelerator-enhanced middle tier (Fig. 1b).

The host CPU still sees every message, but compression is offloaded to
a PCIe FPGA (Alveo U280-like) whose engine consumes ~100 Gb/s. The
payload therefore crosses PCIe *twice more* than in the CPU-only design
(host->FPGA and FPGA->host), which is the design's Achilles heel
(§3.2): computation pressure is gone, interconnect pressure doubles,
and memory pressure stays.

With DDIO enabled (the paper's "Acc w/ DDIO"), the FPGA reads payloads
that are still resident in the DDIO LLC ways and the NIC reads the
results the same way, so DRAM sees almost no read traffic — but the
write-allocations still spill, so write bandwidth keeps growing with
load (Fig. 8a).
"""

from __future__ import annotations

import typing

from repro.compression.model import FPGA_ENGINE, CompressorProfile
from repro.hostmodel.cache import DdioLlc
from repro.hostmodel.memory import MemorySubsystem
from repro.hostmodel.pcie import PcieLink
from repro.middletier.base import MiddleTierServer
from repro.middletier.cluster import Testbed
from repro.net.message import Message, Payload, compress_payload
from repro.net.nic import HostNic
from repro.net.roce import QueuePair
from repro.sim.resources import Resource
from repro.units import mib

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

#: In-flight window between NIC write and FPGA read: small enough to sit
#: in the DDIO ways when the pipeline keeps up.
_PIPELINE_WINDOW = mib(1)


class AcceleratorMiddleTier(MiddleTierServer):
    """Host control plane + PCIe FPGA compression; the paper's "Acc"."""

    design_name = "Acc"
    flexible = True

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int,
        address: str = "tier0",
        ddio_enabled: bool = True,
        engine_profile: CompressorProfile = FPGA_ENGINE,
        memory: MemorySubsystem | None = None,
    ) -> None:
        self._ddio_enabled = ddio_enabled
        self._engine_profile = engine_profile
        self._shared_memory = memory
        super().__init__(sim, testbed, n_workers, address=address)

    def _build(self) -> None:
        host = self.platform.host
        self.memory = self._shared_memory or MemorySubsystem.for_host(
            self.sim, host, name=f"{self.address}.dram"
        )
        self.llc = DdioLlc(host, enabled=self._ddio_enabled)
        # With DDIO the egress NIC reads results the FPGA just wrote (hit);
        # without it every device read goes to DRAM.
        read_ws = _PIPELINE_WINDOW if self._ddio_enabled else (
            self.platform.workload.intermediate_buffer_bytes
        )
        self.nic = HostNic(
            self.sim,
            self.address,
            self.memory,
            self.llc,
            host_spec=host,
            network_spec=self.platform.network,
            workload_spec=self.platform.workload,
            read_working_set=read_ws,
        )
        # The accelerator is a second PCIe device with its own x16 link.
        self.fpga_pcie = PcieLink(self.sim, host, name=f"{self.address}.fpga-pcie")
        self.engine = Resource(self.sim, capacity=1, name=f"{self.address}.engine")
        self._fpga_read_ws = read_ws
        self.client_endpoint = self.nic.endpoint
        self.storage_endpoint = self.nic.endpoint

    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        host = self.platform.host
        if message.payload is None:
            raise ValueError("write_request without payload")
        yield self.sim.timeout(host.parse_header_time)
        # Post the engine descriptor and move on; a completion context
        # finishes the request so the worker never blocks on the FPGA.
        yield self.sim.timeout(host.post_descriptor_time)
        self.sim.process(self._compress_and_complete(qp, message))

    def _compress_and_complete(self, qp: QueuePair, message: Message) -> typing.Generator:
        host = self.platform.host
        payload = message.payload
        if message.header.get("latency_sensitive") or not self._compression_allowed():
            outgoing = payload
        else:
            outgoing = yield self.sim.process(self._engine_compress(payload))
        # The CPU polls the completion and posts the storage sends.
        posts = self.platform.storage.replication + 1
        yield self.sim.timeout(host.post_descriptor_time * posts)
        self._spawn_completion(qp, message, outgoing)

    def _engine_compress(self, payload: Payload) -> typing.Generator:
        """Round-trip the payload through the FPGA over its own PCIe link."""
        traffic = self.llc.dma_read(payload.size, self._fpga_read_ws)
        if traffic.dram_read:
            yield self.memory.read(traffic.dram_read)
        yield self.fpga_pcie.dma_read(payload.size)
        slot = self.engine.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engine.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        outgoing = compress_payload(payload)
        yield self.fpga_pcie.dma_write(outgoing.size)
        traffic = self.llc.dma_write(
            outgoing.size, self.platform.workload.intermediate_buffer_bytes
        )
        if traffic.dram_write:
            yield self.memory.write(traffic.dram_write)
        return outgoing

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        """Reads decompress on the engine too (same PCIe round trip)."""
        traffic = self.llc.dma_read(payload.size, self._fpga_read_ws)
        if traffic.dram_read:
            yield self.memory.read(traffic.dram_read)
        yield self.fpga_pcie.dma_read(payload.size)
        slot = self.engine.request()
        yield slot
        try:
            yield self.sim.timeout(self._engine_profile.occupancy_time(payload.size))
        finally:
            self.engine.release(slot)
        if self._engine_profile.setup_time:
            yield self.sim.timeout(self._engine_profile.setup_time)
        original = payload.original_size or payload.size
        yield self.fpga_pcie.dma_write(original)

"""Shared middle-tier machinery.

All middle-tier designs serve the same protocol (§2.2):

- ``write_request`` from a VM: pick replica targets, (usually)
  compress, write to 3 storage servers, ack the VM once all replicas
  are durable; ``latency_sensitive`` writes skip compression, exactly
  as the paper's Listing 1 does;
- ``read_request`` from a VM: fetch the compressed block from one
  replica, decompress, reply.

What differs between designs is *where* bytes live and *which* hardware
pays for parsing, compression, and data movement — subclasses implement
those hooks while this base class owns dispatch, worker pools,
replication with time-out driven fail-over, and completion matching.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro.middletier.cluster import Testbed
from repro.net.message import Message, Payload, decompress_payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim.events import AnyOf, Event
from repro.sim.resources import Store
from repro.telemetry.metrics import Counter
from repro.units import msec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.storage.server import StorageServer


class ResponseMatcher:
    """Routes reply messages on a QP to whoever awaits them by request id."""

    def __init__(self, sim: "Simulator", qp: QueuePair) -> None:
        self.sim = sim
        self.qp = qp
        self._waiting: dict[int, Event] = {}
        self.unmatched = Store(sim, name="unmatched-replies")
        sim.process(self._loop(), name="response-matcher", daemon=True)

    def expect(self, request_id: int) -> Event:
        """Event that fires with the reply to `request_id`."""
        if request_id in self._waiting:
            raise ValueError(f"already expecting a reply to request {request_id}")
        event = self.sim.event(name=f"reply:{request_id}")
        self._waiting[request_id] = event
        return event

    def forget(self, request_id: int) -> None:
        """Stop waiting for a reply (time-out path); late replies are dropped."""
        self._waiting.pop(request_id, None)

    def _loop(self) -> typing.Generator:
        while True:
            message: Message = yield self.qp.recv()
            request_id = message.header.get("in_reply_to")
            event = self._waiting.pop(request_id, None) if request_id is not None else None
            if event is not None:
                event.succeed(message)
            else:
                self.unmatched.put(message)


@dataclasses.dataclass
class RetainedWrite:
    """A served write kept in middle-tier memory for LSM compaction.

    §2.2.3: "the middle-tier server would not release the memory that
    holds the write request even if the request has finished".
    """

    block_id: int
    payload: Payload
    replicas: tuple[tuple[str, int], ...]  # (server address, stored location)


class MiddleTierServer(abc.ABC):
    """Base class of every middle-tier design."""

    #: Human-readable design name ("CPU-only", "Acc", ...).
    design_name = "abstract"

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int,
        address: str = "tier0",
        replica_timeout: float = msec(5),
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.sim = sim
        self.testbed = testbed
        self.platform: PlatformSpec = testbed.platform
        self.n_workers = n_workers
        self.address = address
        self.replica_timeout = replica_timeout
        self.requests_completed = Counter(f"{address}.completed")
        self.payload_bytes_served = Counter(f"{address}.payload-bytes")
        self.failovers = Counter(f"{address}.failovers")
        self._requests: Store = Store(sim, name=f"{address}.requests")
        self._storage_links: dict[str, tuple[QueuePair, ResponseMatcher]] = {}
        self._block_locations: dict[tuple[int, int], tuple[str, ...]] = {}
        #: set True (e.g. by the LSM compaction service) to keep served
        #: writes in memory for later compaction (§2.2.3).
        self.retain_writes = False
        self._chunk_log: dict[int, list[RetainedWrite]] = {}
        self._started = False
        self._build()
        self._connect_storage()

    # -- subclass surface -------------------------------------------------

    @abc.abstractmethod
    def _build(self) -> None:
        """Create the design's hardware; must set ``self.client_endpoint``
        (a :class:`RoceEndpoint` VMs connect to) and
        ``self.storage_endpoint`` (the endpoint used towards storage —
        often the same object)."""

    @abc.abstractmethod
    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """Worker-synchronous part of serving one write request.

        Must end by calling :meth:`_spawn_completion` with the payload
        to persist (compressed or raw), then return so the worker can
        pick up the next request.
        """

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        """Charge the design's resources for decompressing one payload.

        Default: free (subclasses charge CPU/engine time). The ~7x
        CPU-decompression speed advantage (§2.2.3) is modeled where a
        design overrides this.
        """
        return
        yield  # pragma: no cover - generator form

    # -- wiring ------------------------------------------------------------

    client_endpoint: RoceEndpoint
    storage_endpoint: RoceEndpoint

    def attach_client(self, client_endpoint: RoceEndpoint, port_index: int = 0) -> QueuePair:
        """Connect a VM-side endpoint; returns the client's queue pair.

        `port_index` selects the NIC port on multi-port designs and is
        ignored by single-port ones.
        """
        qp = client_endpoint.connect(self._endpoint_for_port(port_index))
        self.sim.process(self._dispatch(qp.peer), name=f"{self.address}.dispatch", daemon=True)
        return qp

    def _endpoint_for_port(self, port_index: int) -> RoceEndpoint:
        if port_index != 0:
            raise ValueError(f"{self.design_name} has a single port; got index {port_index}")
        return self.client_endpoint

    def _dispatch(self, qp: QueuePair) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            self._requests.put((qp, message))

    def _connect_storage(self) -> None:
        for server in self.testbed.storage_servers:
            qp = server.accept_from(self.storage_endpoint)
            self._storage_links[server.address] = (qp, ResponseMatcher(self.sim, qp))

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.n_workers):
            self.sim.process(self._worker(index), name=f"{self.address}.worker{index}", daemon=True)

    # -- the worker loop ----------------------------------------------------

    def _worker(self, index: int) -> typing.Generator:
        while True:
            qp, message = yield self._requests.get()
            if message.kind == "write_request":
                yield from self._handle_write(index, qp, message)
            elif message.kind == "read_request":
                yield from self._handle_read(index, qp, message)
            else:
                raise ValueError(f"{self.design_name} got unexpected message {message.kind!r}")

    # -- write completion: replication, fail-over, VM ack --------------------

    def _spawn_completion(self, qp: QueuePair, message: Message, payload: Payload) -> None:
        """Persist `payload` to the replica set and ack the VM, off-worker."""
        self.sim.process(
            self._replicate_and_reply(qp, message, payload), name=f"{self.address}.complete"
        )

    def _replicate_and_reply(
        self, qp: QueuePair, message: Message, payload: Payload
    ) -> typing.Generator:
        servers = self.testbed.policy.choose()
        # Fail-over must never double-place a block: every retry excludes
        # the whole original target set, not just the server that died.
        targets = {server.address for server in servers}
        writes = [
            self.sim.process(self._write_replica(server, message, payload, exclude=targets))
            for server in servers
        ]
        results = yield self.sim.all_of(writes)
        replicas = tuple(results[write] for write in writes)
        key = (message.header.get("chunk_id", 0), message.header.get("block_id", 0))
        self._block_locations[key] = tuple(address for address, _location in replicas)
        if self.retain_writes:
            self._chunk_log.setdefault(key[0], []).append(
                RetainedWrite(block_id=key[1], payload=payload, replicas=replicas)
            )
        reply = message.reply("write_reply", status="ok")
        yield qp.send(reply)
        self.requests_completed.add()
        self.payload_bytes_served.add(message.payload_size)

    def _write_replica(
        self,
        server: "StorageServer",
        message: Message,
        payload: Payload,
        exclude: typing.Collection[str] = (),
    ) -> typing.Generator:
        """Write one replica; on time-out, fail over to another server.

        `exclude` holds the other replicas' targets so a replacement is
        never a server that already stores this block. Returns
        ``(address, location)`` of the acknowledged copy.
        """
        attempts = 0
        excluded: set[str] = set(exclude)
        excluded.discard(server.address)
        while True:
            attempts += 1
            qp, matcher = self._storage_link_for(server, message)
            store_msg = Message(
                kind="storage_write",
                src=self.address,
                dst=server.address,
                header_size=message.header_size,
                payload=payload,
                header={
                    "chunk_id": message.header.get("chunk_id", 0),
                    "block_id": message.header.get("block_id", 0),
                },
            )
            ack_event = matcher.expect(store_msg.request_id)
            yield qp.send(store_msg)
            deadline = self.sim.timeout(self.replica_timeout)
            yield AnyOf(self.sim, [ack_event, deadline])
            self.testbed.policy.complete(server)
            if ack_event.triggered:
                ack: Message = ack_event.value
                return (server.address, ack.header.get("location", -1))
            # Timed out: pick a replacement and retry (§2.2.3 fail-over).
            matcher.forget(store_msg.request_id)
            self.failovers.add()
            excluded.add(server.address)
            if attempts > len(self.testbed.storage_servers):
                raise RuntimeError(f"write to {store_msg.header} failed on every server")
            server = self._choose_replacement(excluded)

    def _storage_link_for(
        self, server: "StorageServer", message: Message
    ) -> tuple[QueuePair, ResponseMatcher]:
        """The (QP, matcher) to reach `server` for this request.

        Multi-port designs override this to keep storage traffic on the
        port the request arrived on.
        """
        return self._storage_links[server.address]

    def _choose_replacement(self, excluded: set[str]) -> "StorageServer":
        candidates = [
            s
            for s in self.testbed.storage_servers
            if s.address not in excluded and not s.failed
        ]
        if not candidates:
            raise RuntimeError("no healthy storage server left for fail-over")
        chosen = min(candidates, key=lambda s: self.testbed.policy.outstanding(s))
        self.testbed.policy.claim(chosen)
        return chosen

    # -- the read path --------------------------------------------------------

    def _handle_read(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """Serve a read (§2.2.2): fetch a replica, decompress, reply.

        The storage round-trip runs off-worker; only parse/decompress
        occupy the worker, mirroring the write path split.
        """
        yield self.sim.timeout(self.platform.host.parse_header_time)
        self.sim.process(self._fetch_and_reply(worker_index, qp, message))

    def _fetch_and_reply(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        key = (message.header.get("chunk_id", 0), message.header.get("block_id", 0))
        locations = self._block_locations.get(key)
        if not locations:
            yield qp.send(message.reply("read_reply", status="not_found"))
            return
        server = self.testbed.server(locations[0])
        storage_qp, matcher = self._storage_link_for(server, message)
        fetch = Message(
            kind="storage_read",
            src=self.address,
            dst=server.address,
            header_size=message.header_size,
            header={"chunk_id": key[0], "block_id": key[1]},
        )
        reply_event = matcher.expect(fetch.request_id)
        yield storage_qp.send(fetch)
        stored: Message = yield reply_event
        if stored.kind != "storage_read_reply" or stored.payload is None:
            yield qp.send(message.reply("read_reply", status="not_found"))
            return
        payload = stored.payload
        if payload.is_compressed:
            yield from self._decompress_cost(worker_index, payload)
            payload = decompress_payload(payload)
        response = message.reply("read_reply", status="ok")
        response.payload = payload
        yield qp.send(response)
        self.requests_completed.add()

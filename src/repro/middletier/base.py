"""Shared middle-tier machinery.

All middle-tier designs serve the same protocol (§2.2):

- ``write_request`` from a VM: pick replica targets, (usually)
  compress, write to 3 storage servers, ack the VM once all replicas
  are durable; ``latency_sensitive`` writes skip compression, exactly
  as the paper's Listing 1 does;
- ``read_request`` from a VM: fetch the compressed block from one
  replica, decompress, reply.

What differs between designs is *where* bytes live and *which* hardware
pays for parsing, compression, and data movement — subclasses implement
those hooks while this base class owns dispatch, worker pools,
replication with time-out driven fail-over, and completion matching.
"""

from __future__ import annotations

import abc
import dataclasses
import typing
from collections import OrderedDict, deque

from repro.middletier.admission import AdmissionController
from repro.middletier.cluster import Testbed
from repro.middletier.retry import RetryPolicy
from repro.net.message import Message, Payload, decompress_payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim.events import AnyOf, Event
from repro.sim.resources import Store
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.metrics import Counter, LatencyRecorder
from repro.telemetry.registry import registry_for
from repro.telemetry.slo import SLOMonitor, slo_monitor_for
from repro.units import msec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.storage.server import StorageServer


class ResponseMatcher:
    """Routes reply messages on a QP to whoever awaits them by request id.

    Replies nobody awaits come in two flavours. A reply to a request id
    that was :meth:`forget`-ten is an *expected* late arrival (the
    sender raced a fail-over time-out) — counted in :attr:`late_replies`
    and dropped. Anything else is genuinely unexpected and lands in the
    bounded :attr:`unmatched` ring for post-mortem inspection; the ring
    drops its oldest entry rather than growing without bound across a
    long lossy run.
    """

    #: Unexpected replies kept for inspection; beyond this, oldest drop.
    UNMATCHED_LIMIT = 64
    #: Forgotten request ids remembered so their late replies are counted
    #: as expected; beyond this, oldest forgets are themselves forgotten.
    FORGOTTEN_LIMIT = 1024

    def __init__(self, sim: "Simulator", qp: QueuePair) -> None:
        self.sim = sim
        self.qp = qp
        self._waiting: dict[int, Event] = {}
        self.unmatched: deque[Message] = deque(maxlen=self.UNMATCHED_LIMIT)
        self.late_replies = Counter("late-replies")
        self.unexpected_replies = Counter("unexpected-replies")
        self.forgotten_evicted = Counter("forgotten-evicted")
        self._forgotten: OrderedDict[int, None] = OrderedDict()
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="middletier")
            registry.register_instance(self.late_replies, "tier.matcher.late_replies", **labels)
            registry.register_instance(
                self.unexpected_replies, "tier.matcher.unexpected_replies", **labels
            )
            registry.register_instance(
                self.forgotten_evicted, "tier.matcher.forgotten_evicted", **labels
            )
        sim.process(self._loop(), name="response-matcher", daemon=True)

    def expect(self, request_id: int) -> Event:
        """Event that fires with the reply to `request_id`."""
        if request_id in self._waiting:
            raise ValueError(f"already expecting a reply to request {request_id}")
        self._forgotten.pop(request_id, None)
        event = self.sim.event(name=f"reply:{request_id}")
        self._waiting[request_id] = event
        return event

    def forget(self, request_id: int) -> None:
        """Stop waiting for a reply (time-out path); a late reply is expected."""
        if self._waiting.pop(request_id, None) is not None:
            self._forgotten[request_id] = None
            while len(self._forgotten) > self.FORGOTTEN_LIMIT:
                self._forgotten.popitem(last=False)
                self.forgotten_evicted.add()

    def _loop(self) -> typing.Generator:
        while True:
            message: Message = yield self.qp.recv()
            request_id = message.header.get("in_reply_to")
            event = self._waiting.pop(request_id, None) if request_id is not None else None
            if event is not None:
                event.succeed(message)
            elif request_id is not None and request_id in self._forgotten:
                del self._forgotten[request_id]
                self.late_replies.add()
            else:
                self.unexpected_replies.add()
                self.unmatched.append(message)


@dataclasses.dataclass
class RetainedWrite:
    """A served write kept in middle-tier memory for LSM compaction.

    §2.2.3: "the middle-tier server would not release the memory that
    holds the write request even if the request has finished".
    """

    block_id: int
    payload: Payload
    replicas: tuple[tuple[str, int], ...]  # (server address, stored location)


class MiddleTierServer(abc.ABC):
    """Base class of every middle-tier design."""

    #: Human-readable design name ("CPU-only", "Acc", ...).
    design_name = "abstract"

    def __init__(
        self,
        sim: "Simulator",
        testbed: Testbed,
        n_workers: int,
        address: str = "tier0",
        replica_timeout: float = msec(5),
        write_retry: RetryPolicy | None = None,
        read_retry: RetryPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.sim = sim
        self.testbed = testbed
        self.platform: PlatformSpec = testbed.platform
        self.n_workers = n_workers
        self.address = address
        self.replica_timeout = replica_timeout
        recovery = self.platform.recovery
        self.write_retry = write_retry or RetryPolicy.for_writes(
            recovery, attempt_timeout=replica_timeout
        )
        self.read_retry = read_retry or RetryPolicy.for_reads(recovery)
        #: Set by :meth:`repro.middletier.maintenance.HeartbeatMonitor.watch`;
        #: replica selection skips servers it suspects.
        self.health: typing.Any = None
        #: Shard-ownership guard set by :class:`repro.cluster.ShardedCluster`
        #: (``None`` on an undirected tier — the default). Called with each
        #: arriving request; a non-``None`` return means "not my segment"
        #: and carries the reply header fields (live owner, map version)
        #: for the client's stale-map refetch (``docs/scaling.md``).
        self.route_guard: typing.Callable[[Message], dict | None] | None = None
        self.wrong_shard_replies = Counter(f"{address}.wrong-shard")
        self.requests_completed = Counter(f"{address}.completed")
        self.payload_bytes_served = Counter(f"{address}.payload-bytes")
        #: Optional hot-block read cache (see :meth:`attach_cache`).
        self.cache: typing.Any = None
        self.cache_hit_latency = LatencyRecorder(f"{address}.cache-hit")
        self.cache_miss_latency = LatencyRecorder(f"{address}.cache-miss")
        self.failovers = Counter(f"{address}.failovers")
        self.read_failovers = Counter(f"{address}.read-failovers")
        self.reads_unavailable = Counter(f"{address}.reads-unavailable")
        self._requests: Store = Store(sim, name=f"{address}.requests")
        self._storage_links: dict[str, tuple[QueuePair, ResponseMatcher]] = {}
        self._block_locations: dict[tuple[int, int], tuple[str, ...]] = {}
        #: set True (e.g. by the LSM compaction service) to keep served
        #: writes in memory for later compaction (§2.2.3).
        self.retain_writes = False
        self._chunk_log: dict[int, list[RetainedWrite]] = {}
        self._started = False
        # Optional labeled-series registration: None when no registry is
        # attached to the simulator (the common case) — every hot-path
        # use is guarded on that.
        self._latency_hist: typing.Any = None
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="middletier", design=self.design_name, address=address)
            registry.register_instance(self.requests_completed, "tier.requests_completed", **labels)
            registry.register_instance(self.wrong_shard_replies, "tier.wrong_shard_replies", **labels)
            registry.register_instance(self.payload_bytes_served, "tier.payload_bytes", **labels)
            registry.register_instance(self.failovers, "tier.write_failovers", **labels)
            registry.register_instance(self.read_failovers, "tier.read_failovers", **labels)
            registry.register_instance(self.reads_unavailable, "tier.reads_unavailable", **labels)
            registry.register_instance(self.cache_hit_latency, "tier.cache_hit_latency", **labels)
            registry.register_instance(self.cache_miss_latency, "tier.cache_miss_latency", **labels)
            self._latency_hist = registry.histogram("tier.request_latency", **labels)
            registry.gauge_callable("tier.queue_depth", lambda: len(self._requests), **labels)
        self._build()
        self._connect_storage()
        # Overload protection (docs/robustness.md): ``None`` when the
        # platform's AdmissionSpec is disabled (the default) — every
        # call site guards on that, so the unprotected tier is unchanged.
        # Built after _build() so the controller can see self.device on
        # designs that have one (the brownout HBM-pressure signal).
        admission_spec = self.platform.admission
        self.admission: AdmissionController | None = (
            AdmissionController(sim, self, admission_spec) if admission_spec.enabled else None
        )
        # Diagnosis layer (docs/observability.md): a tail-sampling
        # flight recorder on the sim's span collector when the platform
        # asks for one, plus SLO monitors fed by every terminal reply —
        # one per tier from ``platform.slos`` (per-shard budgets in a
        # cluster) and/or a session-wide one adopted from the sim
        # (``runner --slo``). Both default to absent, so the unobserved
        # hot path pays one falsy test per completion.
        collector = getattr(sim, "_span_collector", None)
        if (
            self.platform.flight.enabled
            and collector is not None
            and collector.flight is None
        ):
            FlightRecorder(collector, self.platform.flight)
        self.flight = collector.flight if collector is not None else None
        monitors = []
        if self.platform.slos:
            monitors.append(
                SLOMonitor(sim, self.platform.slos, name=address, flight=self.flight)
            )
        session_monitor = slo_monitor_for(sim)
        if session_monitor is not None:
            monitors.append(session_monitor)
        self.slo: SLOMonitor | None = monitors[0] if monitors else None
        self._slo_monitors: tuple[SLOMonitor, ...] = tuple(monitors)

    # -- subclass surface -------------------------------------------------

    @abc.abstractmethod
    def _build(self) -> None:
        """Create the design's hardware; must set ``self.client_endpoint``
        (a :class:`RoceEndpoint` VMs connect to) and
        ``self.storage_endpoint`` (the endpoint used towards storage —
        often the same object)."""

    @abc.abstractmethod
    def _handle_write(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """Worker-synchronous part of serving one write request.

        Must end by calling :meth:`_spawn_completion` with the payload
        to persist (compressed or raw), then return so the worker can
        pick up the next request.
        """

    def _decompress_cost(self, worker_index: int, payload: Payload) -> typing.Generator:
        """Charge the design's resources for decompressing one payload.

        Default: free (subclasses charge CPU/engine time). The ~7x
        CPU-decompression speed advantage (§2.2.3) is modeled where a
        design overrides this.
        """
        return
        yield  # pragma: no cover - generator form

    # -- wiring ------------------------------------------------------------

    client_endpoint: RoceEndpoint
    storage_endpoint: RoceEndpoint

    def attach_cache(self, cache: typing.Any) -> typing.Any:
        """Serve hot reads from a :class:`~repro.cache.HotBlockCache`.

        Hits skip the storage round trip (and its retry/failover
        machinery) entirely; writes invalidate the key before acking so
        reads-after-write never see stale bytes (``docs/caching.md``).
        """
        self.cache = cache
        return cache

    def attach_client(self, client_endpoint: RoceEndpoint, port_index: int = 0) -> QueuePair:
        """Connect a VM-side endpoint; returns the client's queue pair.

        `port_index` selects the NIC port on multi-port designs and is
        ignored by single-port ones.
        """
        qp = client_endpoint.connect(self._endpoint_for_port(port_index))
        self.sim.process(self._dispatch(qp.peer), name=f"{self.address}.dispatch", daemon=True)
        return qp

    def _endpoint_for_port(self, port_index: int) -> RoceEndpoint:
        if port_index != 0:
            raise ValueError(f"{self.design_name} has a single port; got index {port_index}")
        return self.client_endpoint

    def _dispatch(self, qp: QueuePair) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            if self._bounce_if_misrouted(qp, message):
                continue
            if self._admit(qp, message):
                self._requests.put((qp, message))

    def _bounce_if_misrouted(self, qp: QueuePair, message: Message) -> bool:
        """Route-guard check shared by every ingress flavor.

        Shard ownership is checked before admission: a misrouted request
        is a routing error to correct, not load to shed. Subclasses with
        their own ingress paths (the AAMS mixed-recv and control queues)
        must call this before `_admit` (``docs/scaling.md``).
        """
        if self.route_guard is None or message.kind not in (
            "write_request",
            "read_request",
        ):
            return False
        redirect = self.route_guard(message)
        if redirect is None:
            return False
        self.sim.process(
            self._send_wrong_shard(qp, message, redirect),
            name=f"{self.address}.wrong-shard",
        )
        return True

    # -- admission ---------------------------------------------------------

    def _admit(self, qp: QueuePair, message: Message) -> bool:
        """Admission gate at ingress; a shed request is answered, not queued."""
        if self.admission is None:
            return True
        reason = self.admission.admit(message)
        if reason is None:
            return True
        self.sim.process(
            self._send_shed_reply(qp, message, reason), name=f"{self.address}.shed"
        )
        return False

    def _send_shed_reply(
        self, qp: QueuePair, message: Message, reason: str
    ) -> typing.Generator:
        kind = "write_reply" if message.kind == "write_request" else "read_reply"
        reply = message.reply(kind, status="shed", reason=reason)
        # reply() doesn't propagate the flow tag; shed replies must stay
        # visible to FlowLedger byte-conservation audits.
        reply.flow = message.flow
        if message.span is not None:
            shed_span = message.span.child("admission.shed", reason=reason)
            shed_span.finish("shed")
        if self._slo_monitors:
            self._observe_completion(message, "shed")
        yield qp.send(reply)

    def _send_wrong_shard(
        self, qp: QueuePair, message: Message, redirect: dict
    ) -> typing.Generator:
        """Bounce a misrouted request back with the current owner.

        The redirect headers (owner address, directory map version) come
        from the cluster's route guard; the client refetches the route
        map and retries (``docs/scaling.md``).
        """
        kind = "write_reply" if message.kind == "write_request" else "read_reply"
        reply = message.reply(kind, status="wrong_shard", **redirect)
        # Like shed replies, wrong-shard bounces carry the request's flow
        # tag so FlowLedger conservation audits see the full exchange.
        reply.flow = message.flow
        self.wrong_shard_replies.add()
        if message.span is not None:
            bounce = message.span.child(
                "route.wrong_shard", shard=self.address, **redirect
            )
            bounce.finish("retried")
        if self._slo_monitors:
            # Monitors ignore routing bounces (IGNORED_STATUSES); fed so
            # a future objective over them sees the full record stream.
            self._observe_completion(message, "wrong_shard")
        yield qp.send(reply)

    def _release_admission(self, message: Message) -> None:
        """Return the request's credit at a non-ok terminal reply."""
        if self.admission is not None:
            self.admission.release(message)

    def _compression_allowed(self) -> bool:
        """Brownout rung 3 gate consulted by the designs' compress steps."""
        return self.admission is None or self.admission.compression_allowed()

    def _fill_allowed(self) -> bool:
        """Brownout rung 1 gate: whether read misses may fill the cache."""
        return self.admission is None or self.admission.cache_fills_allowed()

    def _connect_storage(self) -> None:
        for server in self.testbed.storage_servers:
            qp = server.accept_from(self.storage_endpoint)
            self._storage_links[server.address] = (qp, ResponseMatcher(self.sim, qp))

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.n_workers):
            self.sim.process(self._worker(index), name=f"{self.address}.worker{index}", daemon=True)

    # -- the worker loop ----------------------------------------------------

    def _worker(self, index: int) -> typing.Generator:
        while True:
            qp, message = yield self._requests.get()
            if message.kind == "write_request":
                yield from self._handle_write(index, qp, message)
            elif message.kind == "read_request":
                yield from self._handle_read(index, qp, message)
            else:
                raise ValueError(f"{self.design_name} got unexpected message {message.kind!r}")

    # -- write completion: replication, fail-over, VM ack --------------------

    def _complete(self, message: Message, nbytes: int | None = None) -> None:
        """Count one served request; feed the latency histogram and SLO
        monitors if any are attached. `nbytes` is the goodput payload
        (reads pass the fetched block; default: the request's payload)."""
        if self.admission is not None:
            self.admission.release(message)
        self.requests_completed.add()
        latency = (
            self.sim.now - message.created_at if message.created_at is not None else None
        )
        if self._latency_hist is not None and latency is not None:
            self._latency_hist.observe(latency)
        if self._slo_monitors:
            self._observe_completion(
                message,
                "ok",
                latency=latency,
                nbytes=message.payload_size if nbytes is None else nbytes,
            )

    def _observe_completion(
        self,
        message: Message,
        status: str,
        latency: float | None = None,
        nbytes: int = 0,
    ) -> None:
        """Feed one terminal reply to every attached SLO monitor."""
        for monitor in self._slo_monitors:
            monitor.record(message.kind, status, latency=latency, nbytes=nbytes)

    def _spawn_completion(self, qp: QueuePair, message: Message, payload: Payload) -> None:
        """Persist `payload` to the replica set and ack the VM, off-worker."""
        self.sim.process(
            self._replicate_and_reply(qp, message, payload), name=f"{self.address}.complete"
        )

    def _replicate_and_reply(
        self, qp: QueuePair, message: Message, payload: Payload
    ) -> typing.Generator:
        servers = self.testbed.policy.choose()
        rep_span = None
        if message.span is not None:
            rep_span = message.span.child("write.replicate", replicas=len(servers))
        # Fail-over must never double-place a block: every retry excludes
        # the whole original target set, not just the server that died.
        targets = {server.address for server in servers}
        writes = [
            self.sim.process(
                self._write_replica(server, message, payload, exclude=targets, span=rep_span)
            )
            for server in servers
        ]
        results = yield self.sim.all_of(writes)
        replicas = tuple(results[write] for write in writes)
        key = (message.header.get("chunk_id", 0), message.header.get("block_id", 0))
        self._block_locations[key] = tuple(address for address, _location in replicas)
        # Write-through invalidation: drop the cached (pre-write) block
        # before the VM sees the ack, so a read issued after the ack can
        # never be served stale bytes from the cache.
        if self.cache is not None:
            self.cache.invalidate(key)
        if self.retain_writes:
            self._chunk_log.setdefault(key[0], []).append(
                RetainedWrite(block_id=key[1], payload=payload, replicas=replicas)
            )
        reply = message.reply("write_reply", status="ok")
        reply.span = rep_span
        yield qp.send(reply)
        if rep_span is not None:
            rep_span.finish(nbytes=payload.size * len(servers))
        self._complete(message)
        self.payload_bytes_served.add(message.payload_size)

    def _write_replica(
        self,
        server: "StorageServer",
        message: Message,
        payload: Payload,
        exclude: typing.Collection[str] = (),
        span: typing.Any = None,
    ) -> typing.Generator:
        """Write one replica; on time-out, fail over to another server.

        `exclude` holds the other replicas' targets so a replacement is
        never a server that already stores this block. Returns
        ``(address, location)`` of the acknowledged copy.

        Accounting contract: the caller holds one replication-policy
        claim on `server` (from ``choose()`` or ``claim()``); each
        fail-over claims its replacement via :meth:`_choose_replacement`.
        Every claim is released by exactly one ``complete()`` — in a
        ``finally`` so even an error path (e.g. no replacement left)
        cannot leave ``policy.outstanding`` stale.
        """
        policy = self.write_retry
        token = self._retry_token(message)
        attempts = 0
        excluded: set[str] = set(exclude)
        excluded.discard(server.address)
        while True:
            attempts += 1
            if self.admission is not None and not self.admission.allow_server(
                server.address
            ):
                # Circuit open: the attempt is doomed — don't burn a full
                # time-out on it. Release the claim we hold and fail over
                # immediately, bounded by the same attempt budget.
                self.testbed.policy.complete(server)
                if span is not None:
                    span.event(
                        "write.short-circuit", outcome="retried", server=server.address
                    )
                excluded.add(server.address)
                if policy.attempts_exhausted(attempts) or attempts > len(
                    self.testbed.storage_servers
                ):
                    if span is not None:
                        span.finish("failed", attempts=attempts)
                    raise RuntimeError(
                        f"write of {message.header} short-circuited on every server"
                    )
                server = self._choose_replacement(excluded)
                continue
            qp, matcher = self._storage_link_for(server, message)
            store_msg = Message(
                kind="storage_write",
                src=self.address,
                dst=server.address,
                header_size=message.header_size,
                payload=payload,
                header={
                    "chunk_id": message.header.get("chunk_id", 0),
                    "block_id": message.header.get("block_id", 0),
                },
            )
            attempt_span = None
            if span is not None:
                attempt_span = span.child(
                    "write.attempt", server=server.address, attempt=attempts
                )
                store_msg.span = attempt_span
            ack_event = matcher.expect(store_msg.request_id)
            try:
                yield qp.send(store_msg)
                deadline = self.sim.timeout(policy.timeout_for(attempts))
                yield AnyOf(self.sim, [ack_event, deadline])
            finally:
                self.testbed.policy.complete(server)
                if not ack_event.triggered:
                    # Expected late arrival, not a leak (§2.2.3 time-out).
                    matcher.forget(store_msg.request_id)
            if ack_event.triggered:
                ack: Message = ack_event.value
                if self.admission is not None:
                    self.admission.record_server_success(server.address)
                if attempt_span is not None:
                    attempt_span.finish("ok", nbytes=payload.size)
                return (server.address, ack.header.get("location", -1))
            # Timed out: pick a replacement and retry (§2.2.3 fail-over).
            if self.admission is not None:
                self.admission.record_server_failure(server.address)
            if attempt_span is not None:
                attempt_span.finish("retried", timeout=policy.timeout_for(attempts))
            self.failovers.add()
            excluded.add(server.address)
            if policy.attempts_exhausted(attempts) or attempts > len(
                self.testbed.storage_servers
            ):
                if span is not None:
                    span.finish("failed", attempts=attempts)
                raise RuntimeError(f"write to {store_msg.header} failed on every server")
            server = self._choose_replacement(excluded)
            backoff = policy.backoff_before(attempts + 1, token)
            if backoff > 0:
                yield self.sim.timeout(backoff)

    def _storage_link_for(
        self, server: "StorageServer", message: Message
    ) -> tuple[QueuePair, ResponseMatcher]:
        """The (QP, matcher) to reach `server` for this request.

        Multi-port designs override this to keep storage traffic on the
        port the request arrived on.
        """
        return self._storage_links[server.address]

    @staticmethod
    def _retry_token(message: Message) -> int:
        """Replay-stable jitter token: a function of the block address.

        Request ids come from a process-global counter, so they are not
        stable across two runs in one process — the block address is.
        """
        return (
            int(message.header.get("chunk_id", 0)) * 1_000_003
            + int(message.header.get("block_id", 0))
        )

    def _suspected(self, address: str) -> bool:
        """Whether the health monitor (if any) suspects `address` is down."""
        return self.health is not None and not self.health.is_healthy(address)

    def _choose_replacement(self, excluded: set[str]) -> "StorageServer":
        alive = [
            s
            for s in self.testbed.storage_servers
            if s.address not in excluded and not s.failed
        ]
        # Prefer servers the heartbeat monitor considers healthy; fall
        # back to suspected-but-not-failed ones rather than giving up.
        healthy = [s for s in alive if not self._suspected(s.address)]
        candidates = healthy or alive
        if self.admission is not None:
            # Among equals, prefer replicas whose breaker isn't open —
            # checked via .state (not allow()) so mere candidate ranking
            # doesn't count as a short-circuit.
            open_free = [
                s
                for s in candidates
                if self.admission.breaker_for(s.address).state != "open"
            ]
            candidates = open_free or candidates
        if not candidates:
            raise RuntimeError("no healthy storage server left for fail-over")
        chosen = min(candidates, key=lambda s: self.testbed.policy.outstanding(s))
        self.testbed.policy.claim(chosen)
        return chosen

    # -- the read path --------------------------------------------------------

    def _handle_read(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """Serve a read (§2.2.2): fetch a replica, decompress, reply.

        The storage round-trip runs off-worker; only parse/decompress
        occupy the worker, mirroring the write path split.
        """
        yield self.sim.timeout(self.platform.host.parse_header_time)
        self.sim.process(self._fetch_and_reply(worker_index, qp, message))

    def _read_replica_for(
        self, locations: typing.Sequence[str], attempt: int
    ) -> str | None:
        """Replica address for 0-based fail-over `attempt`, or ``None``.

        Rotates through the block's replica set, skipping servers the
        heartbeat monitor suspects; ``None`` means every replica is
        currently suspected and the read should degrade to
        ``unavailable`` instead of probing dead servers.
        """
        pool = [address for address in locations if not self._suspected(address)]
        if not pool:
            return None
        if self.admission is not None:
            open_free = [
                address
                for address in pool
                if self.admission.breaker_for(address).state != "open"
            ]
            if open_free:
                pool = open_free
            else:
                # Every un-suspected replica's breaker is open: the read
                # is doomed — short-circuit it to "unavailable" rather
                # than spending time-outs probing tripped servers.
                self.admission.short_circuits.add()
                return None
        return pool[attempt % len(pool)]

    def _fetch_and_reply(
        self, worker_index: int, qp: QueuePair, message: Message
    ) -> typing.Generator:
        """Fetch a replica with time-out driven fail-over, then reply.

        Never blocks forever: each fetch races a per-attempt time-out
        (the matcher forgets expired requests), fail-over rotates
        through the whole replica set, and once the policy's attempt
        budget or deadline runs out the VM gets ``status="unavailable"``
        instead of silence.

        With a cache attached, a hit replies straight from device
        memory — no storage round trip, no failover; a miss takes the
        path below and then offers the fetched block for admission.
        """
        started = self.sim.now
        key = (message.header.get("chunk_id", 0), message.header.get("block_id", 0))
        parent = message.span
        fill_token = None
        if self.cache is not None:
            entry = self.cache.lookup(key)
            if entry is not None:
                hit_span = None if parent is None else parent.child("cache.hit")
                try:
                    payload = entry.payload
                    if payload.is_compressed:
                        dec_span = None if hit_span is None else hit_span.child("decompress")
                        yield from self._decompress_cost(worker_index, payload)
                        payload = decompress_payload(payload)
                        if dec_span is not None:
                            dec_span.finish(nbytes=payload.size)
                finally:
                    self.cache.release(entry)
                response = message.reply("read_reply", status="ok")
                response.payload = payload
                response.span = hit_span
                yield qp.send(response)
                if hit_span is not None:
                    hit_span.finish(nbytes=payload.size)
                self._complete(message, nbytes=payload.size)
                self.cache_hit_latency.record(self.sim.now - started)
                return
            if parent is not None:
                parent.event("cache.miss")
            # Brownout rung 1: under pressure, misses stop filling the
            # cache — the fill's HBM traffic is the first thing to go.
            if self._fill_allowed():
                fill_token = self.cache.begin_fill(key)
        locations = self._block_locations.get(key)
        if not locations:
            if parent is not None:
                parent.event("read.not_found", outcome="failed")
            self._release_admission(message)
            if self._slo_monitors:
                self._observe_completion(
                    message, "not_found", latency=self.sim.now - started
                )
            yield qp.send(message.reply("read_reply", status="not_found"))
            return
        policy = self.read_retry
        token = self._retry_token(message)
        start = self.sim.now
        attempts = 0
        stored: Message | None = None
        while stored is None:
            address = self._read_replica_for(locations, attempts)
            if (
                address is None
                or policy.attempts_exhausted(attempts)
                or policy.deadline_expired(self.sim.now - start)
            ):
                self.reads_unavailable.add()
                self._release_admission(message)
                if self._slo_monitors:
                    self._observe_completion(
                        message, "unavailable", latency=self.sim.now - started
                    )
                unavail_span = None
                if parent is not None:
                    unavail_span = parent.child(
                        "read.unavailable", attempts=attempts, **policy.describe()
                    )
                response = message.reply("read_reply", status="unavailable")
                response.span = unavail_span
                yield qp.send(response)
                if unavail_span is not None:
                    unavail_span.finish("failed")
                return
            attempts += 1
            backoff = policy.backoff_before(attempts, token)
            if backoff > 0:
                yield self.sim.timeout(backoff)
            server = self.testbed.server(address)
            storage_qp, matcher = self._storage_link_for(server, message)
            fetch = Message(
                kind="storage_read",
                src=self.address,
                dst=server.address,
                header_size=message.header_size,
                header={"chunk_id": key[0], "block_id": key[1]},
            )
            attempt_span = None
            if parent is not None:
                attempt_span = parent.child("read.attempt", server=address, attempt=attempts)
                fetch.span = attempt_span
            reply_event = matcher.expect(fetch.request_id)
            yield storage_qp.send(fetch)
            deadline = self.sim.timeout(policy.timeout_for(attempts, self.sim.now - start))
            yield AnyOf(self.sim, [reply_event, deadline])
            if reply_event.triggered:
                stored = reply_event.value
                if self.admission is not None:
                    self.admission.record_server_success(server.address)
                if attempt_span is not None:
                    attempt_span.finish("ok", nbytes=stored.payload_size)
            else:
                matcher.forget(fetch.request_id)
                if self.admission is not None:
                    self.admission.record_server_failure(server.address)
                self.read_failovers.add()
                if attempt_span is not None:
                    attempt_span.finish(
                        "retried", timeout=policy.timeout_for(attempts, self.sim.now - start)
                    )
        if stored.kind != "storage_read_reply" or stored.payload is None:
            if parent is not None:
                parent.event("read.not_found", outcome="failed")
            self._release_admission(message)
            if self._slo_monitors:
                self._observe_completion(
                    message, "not_found", latency=self.sim.now - started
                )
            yield qp.send(message.reply("read_reply", status="not_found"))
            return
        payload = stored.payload
        if self.cache is not None and fill_token is not None:
            # Admission decision on the fetched (still compressed) block.
            admitted = self.cache.offer(key, payload, fill_token)
            if parent is not None:
                parent.event("cache.fill", admitted=admitted)
        if payload.is_compressed:
            dec_span = None if parent is None else parent.child("decompress")
            yield from self._decompress_cost(worker_index, payload)
            payload = decompress_payload(payload)
            if dec_span is not None:
                dec_span.finish(nbytes=payload.size)
        response = message.reply("read_reply", status="ok")
        response.payload = payload
        response.span = parent
        yield qp.send(response)
        self._complete(message, nbytes=payload.size)
        if self.cache is not None:
            self.cache_miss_latency.record(self.sim.now - started)

"""Overload protection for the middle tier: admission, backpressure, brownout.

An unprotected tier collapses non-linearly under sustained overload:
queues grow without bound, every queued request blows its latency budget,
attempts time out, and the retry machinery multiplies the load it was
meant to survive. This module makes the tier *self-protecting* — it
sheds work early, cheaply, and explicitly instead of degrading everyone:

- :class:`TenantCredits` — per-tenant outstanding-request credit pools
  at ingress, re-sized from the measured service rate via Little's law;
- :class:`CircuitBreaker` — per-replica closed → open → half-open
  breakers layered under :class:`~repro.middletier.retry.RetryPolicy`,
  short-circuiting attempts that are doomed before they burn a time-out;
- :class:`Bulkhead` — the gate between maintenance services and the
  foreground path: compaction/GC/snapshots are paced down whenever the
  foreground is under pressure (the elastic-consumer discipline of
  :meth:`~repro.core.device.DeviceMemoryAllocator.elastic_headroom`);
- :class:`BrownoutController` — one overload score from queue-depth /
  HBM-headroom / credit-starvation signals driving an explicit
  degradation ladder, replacing scattered ad-hoc triggers;
- :class:`AdmissionController` — the facade a
  :class:`~repro.middletier.base.MiddleTierServer` owns as
  ``tier.admission`` (``None`` when :class:`~repro.params.AdmissionSpec`
  is disabled, the default — every call site guards on that, so the
  unprotected tier behaves exactly as before).

All jitter is deterministic (same mixing idiom as
:mod:`repro.middletier.retry`), so a chaos run replayed from the same
seed reproduces the exact shed/short-circuit schedule. See
``docs/robustness.md`` for the architecture and tuning knobs.
"""

from __future__ import annotations

import random
import typing
from collections import deque

from repro.params import AdmissionSpec
from repro.telemetry.metrics import Counter
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middletier.base import MiddleTierServer
    from repro.net.message import Message
    from repro.sim.kernel import Simulator

#: Same decorrelating multipliers as :mod:`repro.middletier.retry`: the
#: jitter for draw `count` of entity `token` is a pure function of
#: ``(seed, token, count)``, so replays are exact.
_MIX_A = 1_000_003
_MIX_B = 998_244_353

#: Brownout ladder levels, mildest first.
LEVEL_FULL = 0
LEVEL_NO_CACHE_FILLS = 1
LEVEL_HOST_INGRESS = 2
LEVEL_RAW_REPLICATION = 3
LEVEL_SHED = 4
LEVEL_NAMES = ("full", "no-cache-fills", "host-ingress", "raw-replication", "shed")


def address_token(address: str) -> int:
    """A replay-stable integer token for a server address.

    Python's salted ``hash()`` differs between processes; this doesn't,
    so two runs draw identical jitter for the same address.
    """
    token = 0
    for char in address:
        token = (token * 131 + ord(char)) % (1 << 31)
    return token


def jitter_unit(seed: int, token: int, count: int) -> float:
    """A deterministic uniform draw in [0, 1) for ``(seed, token, count)``."""
    mixed = (seed * _MIX_A + int(token)) * _MIX_A + count * _MIX_B
    return random.Random(mixed).random()


class TenantCredits:
    """One tenant's outstanding-request credit pool.

    A credit is taken at admission and returned at the request's
    terminal reply (ok, degraded, unavailable, or not-found). Capacity
    follows Little's law: with measured completion rate ``X`` and the
    per-request latency budget ``L``, at most ``X * L`` requests can be
    outstanding without the average latency exceeding the budget — so
    every adaptation tick re-sizes the pool to that product, clamped to
    ``[min_credits, max_credits]``. Until a rate has been measured the
    configured ``initial_credits`` apply.
    """

    def __init__(self, tenant: str, spec: AdmissionSpec) -> None:
        self.tenant = tenant
        self.spec = spec
        self.capacity = spec.initial_credits
        self.in_use = 0
        self.rate_ewma: float | None = None  # completions per second
        self._window_completions = 0

    @property
    def exhausted(self) -> bool:
        """True while every credit is out — this tenant is being held back."""
        return self.in_use >= self.capacity

    def try_take(self) -> bool:
        """Take one credit; False when the pool is exhausted."""
        if self.in_use >= self.capacity:
            return False
        self.in_use += 1
        return True

    def release(self) -> None:
        """Return one credit and count the completion for rate measurement."""
        if self.in_use > 0:
            self.in_use -= 1
        self._window_completions += 1

    def adapt(self, window: float) -> None:
        """Re-size the pool from the completion rate over `window` seconds."""
        spec = self.spec
        rate = self._window_completions / window
        self._window_completions = 0
        if rate == 0.0 and self.in_use == 0:
            # Idle tenant: an empty window carries no rate information —
            # decaying here would greet the next burst with a starved
            # pool. (Zero completions with credits *out* is a genuine
            # stall and does decay.)
            return
        if self.rate_ewma is None:
            if rate == 0.0:
                return  # nothing measured yet; keep the configured budget
            self.rate_ewma = rate
        else:
            self.rate_ewma += spec.ewma_alpha * (rate - self.rate_ewma)
        target = round(self.rate_ewma * spec.latency_budget)
        self.capacity = max(spec.min_credits, min(spec.max_credits, target))


class CircuitBreaker:
    """Per-replica closed → open → half-open breaker.

    Layered *under* the retry policy: the retry loops ask :meth:`allow`
    before spending an attempt, so attempts doomed by a tripped replica
    are short-circuited instead of burning a full time-out. `threshold`
    failures within `window` trip the breaker open for `open_duration`
    seconds with deterministic seeded jitter, so co-located breakers
    don't re-probe a recovering server in lockstep and a chaos replay
    reproduces the exact schedule. Once the open interval elapses the
    breaker is *half-open*: attempts flow again, the first success
    closes it, the first failure trips it again with a fresh jitter
    draw.
    """

    def __init__(self, sim: "Simulator", address: str, spec: AdmissionSpec) -> None:
        self.sim = sim
        self.address = address
        self.spec = spec
        self._token = address_token(address)
        self._failures: deque[float] = deque()
        self._open_until: float | None = None
        self.trips = 0

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open``."""
        if self._open_until is None:
            return "closed"
        return "open" if self.sim.now < self._open_until else "half-open"

    def allow(self) -> bool:
        """Whether an attempt against this replica may be spent now."""
        return self.state != "open"

    def record_success(self) -> None:
        """An attempt succeeded: close the breaker, clear the window."""
        self._open_until = None
        self._failures.clear()

    def record_failure(self) -> None:
        """An attempt timed out or failed against this replica."""
        state = self.state
        if state == "open":
            return  # a straggling time-out; already open
        if state == "half-open":
            self._trip()
            return
        now = self.sim.now
        self._failures.append(now)
        cutoff = now - self.spec.breaker_window
        while self._failures and self._failures[0] < cutoff:
            self._failures.popleft()
        if len(self._failures) >= self.spec.breaker_threshold:
            self._trip()

    def _trip(self) -> None:
        spec = self.spec
        self.trips += 1
        unit = jitter_unit(spec.seed, self._token, self.trips)
        jitter = spec.breaker_jitter
        duration = spec.breaker_open_duration * (1.0 - jitter + 2.0 * jitter * unit)
        self._open_until = self.sim.now + duration
        self._failures.clear()


class BrownoutController:
    """The single overload score and the explicit degradation ladder.

    The score is the worst of four instantaneous pressure signals,
    each normalised to [0, 1]:

    - estimated queueing delay (outstanding admissions x EWMA
      inter-completion gap) against the latency budget;
    - request-queue depth against ``queue_target``;
    - HBM pressure: occupancy against the allocator's admission
      watermark, pinned to 1.0 while headroom waiters are parked;
    - credit starvation: the fraction of tenant pools exhausted,
      capped below the shed rung (see :attr:`STARVATION_CEILING`).

    Ladder levels replace the scattered ad-hoc degradation triggers:

    ====== ================= ==============================================
    level  name              behaviour
    ====== ================= ==============================================
    0      full              fast path everywhere
    1      no-cache-fills    read misses stop filling the hot-block cache
    2      host-ingress      SmartDS stops posting mixed-recv descriptors
    3      raw-replication   compression skipped, raw payloads replicated
    4      shed              ingress sheds every new request
    ====== ================= ==============================================

    Transitions carry per-rung hysteresis — ``ladder_up[i]`` enters
    level ``i + 1``; the level is left only once the score falls
    ``ladder_margin`` below that threshold — so a noisy score can't
    flap the ladder. Because every signal is instantaneous, the score
    (and therefore the ladder) decays to zero the moment traffic
    drains; nothing here can wedge a drain-mode run.
    """

    def __init__(self, sim: "Simulator", controller: "AdmissionController") -> None:
        self.sim = sim
        self.controller = controller
        self.spec = controller.spec
        self._level = LEVEL_FULL
        self.transitions = Counter("brownout-transitions")

    #: Credit starvation alone climbs the ladder only to the
    #: raw-replication rung: per-tenant exhaustion is already enforced
    #: (and counted) by the pools themselves, so one throttled tenant
    #: must not flip the whole tier to shed.
    STARVATION_CEILING = 0.9

    def overload_score(self) -> float:
        """The worst of the wait / queue / HBM / credit signals, in [0, 1]."""
        tier = self.controller.tier
        spec = self.spec
        # Estimated queueing delay against the latency budget — the
        # primary signal. It covers designs (like SmartDS) whose worker
        # queue drains instantly into off-worker completion processes:
        # admitted-but-incomplete requests ARE the queue there.
        wait = min(1.0, self.controller.estimated_wait() / spec.latency_budget)
        queue = min(1.0, len(tier._requests) / spec.queue_target)
        hbm = 0.0
        allocator = getattr(getattr(tier, "device", None), "allocator", None)
        if allocator is not None:
            if allocator.waiters:
                hbm = 1.0
            elif allocator.admission_limit > 0:
                hbm = min(1.0, allocator.allocated / allocator.admission_limit)
        starved = 0.0
        pools = self.controller.pools
        if pools:
            starved = self.STARVATION_CEILING * (
                sum(1 for pool in pools.values() if pool.exhausted) / len(pools)
            )
        return max(wait, queue, hbm, starved)

    def current_level(self) -> int:
        """Re-evaluate the ladder against the instantaneous score."""
        score = self.overload_score()
        spec = self.spec
        level = self._level
        while level < LEVEL_SHED and score >= spec.ladder_up[level]:
            level += 1
        while level > LEVEL_FULL and score < spec.ladder_up[level - 1] - spec.ladder_margin:
            level -= 1
        if level != self._level:
            self.transitions.add()
            self._level = level
        return level

    @property
    def level_name(self) -> str:
        """Human-readable name of the current ladder level."""
        return LEVEL_NAMES[self.current_level()]


class Bulkhead:
    """The pacing gate between maintenance services and the foreground.

    Same discipline as the allocator's elastic consumers: background
    work proceeds only while nothing foreground is being held back —
    the overload score sits below the first brownout rung and no tenant
    pool is starved. Otherwise the caller is paced in
    ``maintenance_pause`` steps until the pressure clears. The wait
    polls instantaneous signals, so it always clears once traffic
    drains and can never wedge a drain-mode run.
    """

    def __init__(self, sim: "Simulator", controller: "AdmissionController") -> None:
        self.sim = sim
        self.controller = controller
        self.spec = controller.spec
        self.deferrals = Counter("bulkhead-deferrals")
        self.admissions = Counter("bulkhead-admissions")

    def clear(self) -> bool:
        """Whether background work may proceed right now."""
        controller = self.controller
        if controller.brownout.overload_score() >= self.spec.ladder_up[0]:
            return False
        return not any(pool.exhausted for pool in controller.pools.values())

    def acquire(self) -> typing.Generator:
        """Process body: wait until the foreground path has headroom.

        ``yield from bulkhead.acquire()`` before each unit of
        maintenance work (a compaction, a snapshot round, a GC batch).
        """
        while not self.clear():
            self.deferrals.add()
            yield self.sim.timeout(self.spec.maintenance_pause)
        self.admissions.add()


class AdmissionController:
    """The facade the tier owns: credits + breakers + bulkhead + brownout.

    Registers the ``tier.admission.*`` series when a
    :class:`~repro.telemetry.registry.MetricsRegistry` is attached to
    the simulator; otherwise the bare counters keep working and the
    hot path stays registration-free.
    """

    def __init__(self, sim: "Simulator", tier: "MiddleTierServer", spec: AdmissionSpec) -> None:
        self.sim = sim
        self.tier = tier
        self.spec = spec
        self.pools: dict[str, TenantCredits] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        self.brownout = BrownoutController(sim, self)
        self.bulkhead = Bulkhead(sim, self)
        #: request_id -> (tenant, admission time) of in-flight admissions.
        self._outstanding: dict[int, tuple[str, float]] = {}
        # EWMA of the inter-completion gap: the queue drains one request
        # per gap, so ``depth * gap`` estimates a new arrival's wait.
        self._completion_gap: float | None = None
        self._last_completion: float | None = None
        self._adapting = False
        address = tier.address
        self.admitted = Counter(f"{address}.admitted")
        self.shed_credits = Counter(f"{address}.shed-credits")
        self.shed_deadline = Counter(f"{address}.shed-deadline")
        self.shed_overload = Counter(f"{address}.shed-overload")
        self.short_circuits = Counter(f"{address}.short-circuits")
        self.breaker_opens = Counter(f"{address}.breaker-opens")
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(
                component="middletier", design=tier.design_name, address=address
            )
            registry.register_instance(self.admitted, "tier.admission.admitted", **labels)
            registry.register_instance(self.shed_credits, "tier.admission.shed_credits", **labels)
            registry.register_instance(self.shed_deadline, "tier.admission.shed_deadline", **labels)
            registry.register_instance(self.shed_overload, "tier.admission.shed_overload", **labels)
            registry.register_instance(
                self.short_circuits, "tier.admission.short_circuits", **labels
            )
            registry.register_instance(self.breaker_opens, "tier.admission.breaker_opens", **labels)
            registry.register_instance(
                self.brownout.transitions, "tier.admission.brownout_transitions", **labels
            )
            registry.register_instance(
                self.bulkhead.deferrals, "tier.admission.bulkhead_deferrals", **labels
            )
            registry.gauge_callable(
                "tier.admission.level",
                lambda: float(self.brownout.current_level()),
                **labels,
            )
            registry.gauge_callable(
                "tier.admission.overload", self.brownout.overload_score, **labels
            )
            registry.gauge_callable(
                "tier.admission.outstanding",
                lambda: float(len(self._outstanding)),
                **labels,
            )

    # -- ingress -------------------------------------------------------------

    @property
    def shed_total(self) -> int:
        """All sheds across the three reasons."""
        return self.shed_credits.value + self.shed_deadline.value + self.shed_overload.value

    def pool_for(self, tenant: str) -> TenantCredits:
        """Get-or-create `tenant`'s credit pool."""
        pool = self.pools.get(tenant)
        if pool is None:
            pool = self.pools[tenant] = TenantCredits(tenant, self.spec)
        return pool

    def estimated_wait(self) -> float:
        """Expected queueing delay of a request admitted right now.

        The tier drains roughly one request per (EWMA) inter-completion
        gap, so a new arrival waits behind every admitted-but-incomplete
        request — Little's law again, applied to the whole tier. Counts
        ``_outstanding`` rather than the worker queue because several
        designs move queueing off-worker immediately.
        """
        if self._completion_gap is None:
            return 0.0
        return len(self._outstanding) * self._completion_gap

    def admit(self, message: "Message") -> str | None:
        """Admit `message` (returns ``None``) or return the shed reason.

        Check order matters: the ladder's shed rung protects the whole
        tier (cheapest, catches everything), the deadline estimate sheds
        requests that would blow their budget just queueing, and the
        tenant pool enforces per-tenant fairness last so one tenant's
        burst cannot consume another's credits.
        """
        if self.brownout.current_level() >= LEVEL_SHED:
            self.shed_overload.add()
            return "overload"
        if self.estimated_wait() > self.spec.latency_budget:
            self.shed_deadline.add()
            return "deadline"
        tenant = str(message.header.get("vm_id", "unknown"))
        if not self.pool_for(tenant).try_take():
            self.shed_credits.add()
            return "credits"
        self._outstanding[message.request_id] = (tenant, self.sim.now)
        self.admitted.add()
        self._ensure_adapting()
        return None

    def release(self, message: "Message") -> None:
        """Return the request's credit at any terminal reply.

        Idempotent and safe on shed/unknown requests: every terminal
        site (ok, not-found, unavailable) calls it, and double releases
        are no-ops, so a credit can neither leak nor double-free.
        """
        entry = self._outstanding.pop(message.request_id, None)
        if entry is None:
            return
        tenant, _admitted_at = entry
        pool = self.pools.get(tenant)
        if pool is not None:
            pool.release()
        now = self.sim.now
        if self._last_completion is not None:
            gap = now - self._last_completion
            # A gap longer than the whole latency budget is an idle
            # stretch between waves, not a drain-rate observation —
            # folding it in would greet the next wave with a wildly
            # inflated wait estimate (and spurious sheds).
            if gap <= self.spec.latency_budget:
                if self._completion_gap is None:
                    self._completion_gap = gap
                else:
                    self._completion_gap += self.spec.ewma_alpha * (
                        gap - self._completion_gap
                    )
        self._last_completion = now

    def _ensure_adapting(self) -> None:
        # Lazily (re)started on admission so multi-phase experiments that
        # drain the sim between waves keep adapting in later waves.
        if self._adapting:
            return
        self._adapting = True
        self.sim.process(
            self._adapt_loop(), name=f"{self.tier.address}.admission-adapt", daemon=True
        )

    def _adapt_loop(self) -> typing.Generator:
        interval = self.spec.adapt_interval
        try:
            while True:
                yield self.sim.timeout(interval)
                for pool in self.pools.values():
                    pool.adapt(interval)
                if not self.sim._queue:
                    return  # idle sim: never hold up a drain-mode run
        finally:
            self._adapting = False

    # -- per-replica breakers -------------------------------------------------

    def breaker_for(self, address: str) -> CircuitBreaker:
        """Get-or-create the breaker guarding storage server `address`."""
        breaker = self.breakers.get(address)
        if breaker is None:
            breaker = self.breakers[address] = CircuitBreaker(self.sim, address, self.spec)
        return breaker

    def allow_server(self, address: str) -> bool:
        """Gate one attempt against `address`; counts short-circuits."""
        if self.breaker_for(address).allow():
            return True
        self.short_circuits.add()
        return False

    def record_server_success(self, address: str) -> None:
        """An attempt against `address` succeeded."""
        self.breaker_for(address).record_success()

    def record_server_failure(self, address: str) -> None:
        """An attempt against `address` timed out or failed."""
        breaker = self.breaker_for(address)
        before = breaker.trips
        breaker.record_failure()
        if breaker.trips != before:
            self.breaker_opens.add()

    # -- brownout ladder queries ----------------------------------------------

    def cache_fills_allowed(self) -> bool:
        """Ladder rung 1: read misses stop filling the cache."""
        return self.brownout.current_level() < LEVEL_NO_CACHE_FILLS

    def prefer_host_ingress(self) -> bool:
        """Ladder rung 2: SmartDS ingress degrades to the host path."""
        return self.brownout.current_level() >= LEVEL_HOST_INGRESS

    def compression_allowed(self) -> bool:
        """Ladder rung 3: compression is skipped, raw payloads replicate."""
        return self.brownout.current_level() < LEVEL_RAW_REPLICATION

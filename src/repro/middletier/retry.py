"""Seeded retry policies for time-out driven fail-over (§2.2.3).

The paper's middle tier is the availability linchpin of the store:
writes must survive storage-server crashes (fail-over plus
re-replication) and reads must never block forever on a dead replica.
:class:`RetryPolicy` centralises the knobs every retry loop needs —
attempt budget, per-attempt time-out, exponential backoff, an overall
deadline — and keeps the jitter *deterministic*: the backoff for
attempt `n` of request `token` is a pure function of
``(seed, token, n)``, so a chaos run replayed from the same
:class:`~repro.sim.debug.FaultPlan` seed reproduces the exact same
retry schedule (see ``docs/robustness.md``).
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.params import RecoverySpec
from repro.units import msec, usec

#: Large odd multipliers decorrelate the (seed, token, attempt) triples
#: feeding the jitter RNG without relying on Python's salted hash().
_MIX_A = 1_000_003
_MIX_B = 998_244_353


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How one class of requests retries: attempts, time-outs, backoff.

    All durations are seconds of simulated time. `deadline` bounds the
    whole request (first send to last give-up) and may be ``inf`` for
    writes, where durability beats latency; reads use a finite deadline
    so a request against a dead replica set degrades to
    ``status="unavailable"`` instead of hanging.
    """

    max_attempts: int = 8
    attempt_timeout: float = msec(5)
    backoff_base: float = usec(50)
    backoff_multiplier: float = 2.0
    backoff_cap: float = msec(1)
    jitter: float = 0.25
    deadline: float = math.inf
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.attempt_timeout <= 0:
            raise ValueError(f"attempt_timeout must be positive, got {self.attempt_timeout!r}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter fraction must be in [0, 1), got {self.jitter!r}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")

    # -- construction from the platform's calibrated defaults ---------------

    @classmethod
    def for_writes(
        cls, spec: RecoverySpec, attempt_timeout: float | None = None, seed: int = 0
    ) -> "RetryPolicy":
        """The replica-write policy: unbounded deadline, bounded attempts."""
        return cls(
            max_attempts=spec.write_max_attempts,
            attempt_timeout=attempt_timeout or spec.write_attempt_timeout,
            backoff_base=spec.backoff_base,
            backoff_multiplier=spec.backoff_multiplier,
            backoff_cap=spec.backoff_cap,
            jitter=spec.backoff_jitter,
            deadline=math.inf,
            seed=seed,
        )

    @classmethod
    def for_reads(cls, spec: RecoverySpec, seed: int = 0) -> "RetryPolicy":
        """The read fail-over policy: finite deadline, then "unavailable"."""
        return cls(
            max_attempts=spec.read_max_attempts,
            attempt_timeout=spec.read_attempt_timeout,
            backoff_base=spec.backoff_base,
            backoff_multiplier=spec.backoff_multiplier,
            backoff_cap=spec.backoff_cap,
            jitter=spec.backoff_jitter,
            deadline=spec.read_deadline,
            seed=seed,
        )

    # -- per-attempt queries -------------------------------------------------

    def timeout_for(self, attempt: int, elapsed: float = 0.0) -> float:
        """Wait budget for `attempt` (1-based), clipped to the deadline."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        return min(self.attempt_timeout, self.remaining(elapsed))

    def backoff_before(self, attempt: int, token: int = 0) -> float:
        """Pause before retry `attempt` (2-based; attempt 1 never waits).

        Exponential in the attempt number, capped, with deterministic
        jitter drawn from ``(seed, token, attempt)`` — `token` should be
        a value stable across replays (e.g. the block address), not a
        process-global id.
        """
        if attempt <= 1:
            return 0.0
        raw = min(
            self.backoff_base * self.backoff_multiplier ** (attempt - 2),
            self.backoff_cap,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        mixed = (self.seed * _MIX_A + int(token)) * _MIX_A + attempt * _MIX_B
        unit = random.Random(mixed).random()
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def attempts_exhausted(self, attempts_made: int) -> bool:
        """True once `attempts_made` used up the attempt budget."""
        return attempts_made >= self.max_attempts

    def deadline_expired(self, elapsed: float) -> bool:
        """True once `elapsed` seconds have consumed the overall deadline."""
        return elapsed >= self.deadline

    def remaining(self, elapsed: float) -> float:
        """Deadline budget left after `elapsed` seconds (``inf`` if unbounded)."""
        return max(0.0, self.deadline - elapsed)

    def describe(self) -> dict:
        """The policy knobs as span/report attributes (JSON-safe).

        Attached to give-up spans (e.g. ``read.unavailable``) so a
        degraded request's trace shows *which budget* ran out without
        cross-referencing the platform spec.
        """
        return {
            "max_attempts": self.max_attempts,
            "attempt_timeout": self.attempt_timeout,
            "deadline": None if math.isinf(self.deadline) else self.deadline,
        }

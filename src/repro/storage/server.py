"""Storage server: RoCE service loop over an append-only chunk store.

A storage server accepts ``storage_write`` messages (compressed blocks
from the middle tier), appends them to its chunk store after the flash
write completes, and acknowledges; ``storage_read`` messages return the
stored bytes. A server can be failed and recovered to exercise the
middle tier's fail-over path.
"""

from __future__ import annotations

import typing

from repro.net.link import NetworkPort
from repro.net.message import Message, Payload
from repro.net.roce import QueuePair, RoceEndpoint
from repro.params import NetworkSpec
from repro.storage.blockdev import BlockDevice
from repro.storage.chunkstore import ChunkStore
from repro.telemetry.metrics import Counter
from repro.telemetry.registry import registry_for

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class ServerFailed(RuntimeError):
    """Raised into service loops when the server is failed mid-request."""


class StorageServer:
    """One back-end storage server."""

    def __init__(
        self,
        sim: "Simulator",
        address: str,
        network_spec: NetworkSpec | None = None,
        device: BlockDevice | None = None,
    ) -> None:
        network_spec = network_spec or NetworkSpec()
        self.sim = sim
        self.address = address
        self.port = NetworkPort(sim, rate=network_spec.port_rate, name=f"{address}.port")
        self.endpoint = RoceEndpoint(sim, self.port, address, spec=network_spec)
        self.device = device or BlockDevice(sim, name=f"{address}.nvme")
        self.store = ChunkStore()
        self.failed = False
        self.writes_served = Counter(f"{address}.writes")
        self.reads_served = Counter(f"{address}.reads")
        #: Payload bytes shipped back by reads — the backend-traffic
        #: figure the hot-block cache experiments compare against.
        self.read_bytes_served = Counter(f"{address}.read-bytes")
        registry = registry_for(sim)
        if registry is not None:
            labels = dict(component="storage", address=address)
            registry.register_instance(self.writes_served, "storage.writes_served", **labels)
            registry.register_instance(self.reads_served, "storage.reads_served", **labels)
            registry.register_instance(self.read_bytes_served, "storage.read_bytes_served", **labels)

    def serve(self, qp: QueuePair) -> None:
        """Start a service loop on one connection (call once per QP)."""
        self.sim.process(self._serve(qp), name=f"storage:{self.address}", daemon=True)

    def accept_from(self, remote: RoceEndpoint) -> QueuePair:
        """Connect `remote` to this server and start serving; returns remote's QP."""
        qp = remote.connect(self.endpoint)
        self.serve(qp.peer)
        return qp

    def fail(self) -> None:
        """Crash the server: stop acknowledging new requests."""
        self.failed = True

    def recover(self) -> None:
        """Bring the server back (its store contents survive)."""
        self.failed = False

    def _serve(self, qp: QueuePair) -> typing.Generator:
        while True:
            message: Message = yield qp.recv()
            if self.failed:
                continue  # a crashed server goes silent; no ack, no nack
            if message.kind == "storage_write":
                self.sim.process(self._serve_write(qp, message))
            elif message.kind == "storage_read":
                self.sim.process(self._serve_read(qp, message))
            elif message.kind == "storage_gc":
                self.sim.process(self._serve_gc(qp, message))
            elif message.kind == "storage_snapshot":
                self.sim.process(self._serve_snapshot(qp, message))
            elif message.kind == "storage_ping":
                self.sim.process(self._serve_ping(qp, message))
            else:
                raise ValueError(f"storage server got unexpected message {message.kind!r}")

    def _serve_write(self, qp: QueuePair, message: Message) -> typing.Generator:
        payload = message.payload
        if payload is None:
            raise ValueError("storage_write without a payload")
        span = None
        if message.span is not None:
            span = message.span.child("storage.write", server=self.address)
        yield self.device.write(payload.size)
        if self.failed:
            if span is not None:
                span.finish("failed", reason="server-crashed")
            return
        record = self.store.append(
            chunk_id=message.header.get("chunk_id", 0),
            block_id=message.header.get("block_id", message.request_id),
            size=payload.size,
            data=payload.data,
            meta={
                "is_compressed": payload.is_compressed,
                "ratio": payload.ratio,
                "original_size": payload.original_size,
            },
        )
        self.writes_served.add()
        ack = message.reply("storage_ack", location=record.location, server=self.address)
        ack.span = span
        yield qp.send(ack)
        if span is not None:
            span.finish("ok", nbytes=payload.size)

    def _serve_gc(self, qp: QueuePair, message: Message) -> typing.Generator:
        """Mark superseded locations dead and garbage-collect a chunk.

        Used by the middle tier's compaction/GC maintenance service
        (§2.2.3): after compaction, the pre-compaction blocks' disk
        space is released.
        """
        chunk_id = message.header.get("chunk_id", 0)
        for location in message.header.get("dead_locations", ()):  # superseded entries
            self.store.mark_dead(location)
        reclaimed = self.store.gc(chunk_id)
        # Trimming the log costs a small metadata write.
        yield self.device.write(min(reclaimed, 4096))
        if self.failed:
            return
        yield qp.send(message.reply("storage_gc_ack", reclaimed=reclaimed))

    def _serve_snapshot(self, qp: QueuePair, message: Message) -> typing.Generator:
        """Pin the live set (snapshot maintenance service, §2.2.3)."""
        snap_id = self.store.snapshot()
        yield self.device.write(4096)  # persist the snapshot manifest
        if self.failed:
            return
        yield qp.send(message.reply("storage_snapshot_ack", snapshot_id=snap_id))

    def _serve_ping(self, qp: QueuePair, message: Message) -> typing.Generator:
        """Health-check heartbeat; a failed server simply never answers."""
        yield qp.send(message.reply("storage_pong", server=self.address))

    def _serve_read(self, qp: QueuePair, message: Message) -> typing.Generator:
        chunk_id = message.header.get("chunk_id", 0)
        block_id = message.header["block_id"]
        span = None
        if message.span is not None:
            span = message.span.child("storage.read", server=self.address)
        record = self.store.latest(chunk_id, block_id)
        if record is None:
            if span is not None:
                span.finish("failed", reason="miss")
            reply = message.reply("storage_read_miss", block_id=block_id)
            yield qp.send(reply)
            return
        yield self.device.read(record.size)
        if self.failed:
            if span is not None:
                span.finish("failed", reason="server-crashed")
            return
        self.reads_served.add()
        self.read_bytes_served.add(record.size)
        meta = record.meta
        payload = Payload(
            size=record.size,
            ratio=meta.get("ratio", 1.0),
            data=record.data,
            is_compressed=meta.get("is_compressed", False),
            original_size=meta.get("original_size"),
        )
        reply = message.reply("storage_read_reply", block_id=block_id)
        reply.payload = payload
        reply.span = span
        yield qp.send(reply)
        if span is not None:
            span.finish("ok", nbytes=record.size)

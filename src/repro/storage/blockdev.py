"""Flash block device model.

PCIe flash in the paper's clouds delivers millions of IOPS at
tens-of-microseconds latency (§1). The model charges a fixed access
latency plus size-proportional transfer time, with a bounded number of
concurrent in-flight operations (the device queue), so saturated disks
build queues like real ones.
"""

from __future__ import annotations

import typing

from repro.sim.resources import Resource
from repro.telemetry.metrics import BandwidthMeter, Counter
from repro.units import gBps, usec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class BlockDevice:
    """An NVMe-flash-like device with latency + bandwidth + queue depth."""

    def __init__(
        self,
        sim: "Simulator",
        name: str = "nvme",
        write_latency: float = usec(20),
        read_latency: float = usec(80),
        bandwidth: float = gBps(3.0),
        queue_depth: int = 256,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {queue_depth}")
        self.sim = sim
        self.name = name
        self.write_latency = write_latency
        self.read_latency = read_latency
        self.bandwidth = bandwidth
        self._slots = Resource(sim, queue_depth, name=f"{name}.queue")
        self.write_meter = BandwidthMeter(f"{name}.write")
        self.read_meter = BandwidthMeter(f"{name}.read")
        self.writes = Counter(f"{name}.writes")
        self.reads = Counter(f"{name}.reads")
        # Rendered once: an I/O process is spawned per device operation.
        self._w_name = f"{name}.w"
        self._r_name = f"{name}.r"

    def write(self, nbytes: int) -> "Process":
        """Persist `nbytes`; fires when the device acknowledges durability."""
        return self.sim.process(self._io(nbytes, self.write_latency, True), name=self._w_name)

    def read(self, nbytes: int) -> "Process":
        """Fetch `nbytes`; fires when the data is in the server's buffer."""
        return self.sim.process(self._io(nbytes, self.read_latency, False), name=self._r_name)

    def _io(self, nbytes: int, latency: float, is_write: bool) -> typing.Generator:
        if nbytes < 0:
            raise ValueError(f"cannot do I/O of {nbytes} bytes")
        slot = self._slots.request()
        yield slot
        try:
            yield self.sim.timeout(latency + nbytes / self.bandwidth)
        finally:
            self._slots.release(slot)
        if is_write:
            self.write_meter.record(self.sim.now, nbytes)
            self.writes.add()
        else:
            self.read_meter.record(self.sim.now, nbytes)
            self.reads.add()
        return nbytes

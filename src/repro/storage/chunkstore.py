"""Append-only chunk store.

Storage servers "write the data into the disk in an appended way"
(§2.2.1): each 64 MB chunk is a log of compressed blocks. The store is
functional — it really keeps the (optionally real) bytes — and supports
the maintenance services the middle tier drives: garbage collection of
compacted entries and point-in-time snapshots.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing


@dataclasses.dataclass(frozen=True)
class StoredBlock:
    """One log entry: an appended (usually compressed) block."""

    location: int  # store-unique id, stands in for (chunk offset)
    chunk_id: int
    block_id: int  # the block's logical id (e.g. LBA)
    size: int
    data: bytes | None = None
    sequence: int = 0  # append order within the chunk
    meta: dict = dataclasses.field(default_factory=dict)


class ChunkStore:
    """An append-only log per chunk with GC and snapshots."""

    def __init__(self) -> None:
        self._locations = itertools.count(1)
        self._chunks: dict[int, list[StoredBlock]] = {}
        self._by_location: dict[int, StoredBlock] = {}
        self._live: dict[int, bool] = {}
        self._snapshots: dict[int, tuple[int, ...]] = {}
        self._snapshot_ids = itertools.count(1)
        self.bytes_appended = 0
        self.bytes_reclaimed = 0

    def append(
        self,
        chunk_id: int,
        block_id: int,
        size: int,
        data: bytes | None = None,
        meta: dict | None = None,
    ) -> StoredBlock:
        """Append a block to a chunk's log; returns its stored record."""
        if size < 0:
            raise ValueError(f"negative block size {size}")
        if data is not None and len(data) != size:
            raise ValueError("data length disagrees with size")
        log = self._chunks.setdefault(chunk_id, [])
        record = StoredBlock(
            location=next(self._locations),
            chunk_id=chunk_id,
            block_id=block_id,
            size=size,
            data=data,
            sequence=len(log),
            meta=dict(meta or {}),
        )
        log.append(record)
        self._by_location[record.location] = record
        self._live[record.location] = True
        self.bytes_appended += size
        return record

    def read(self, location: int) -> StoredBlock:
        """Fetch a stored block by location; raises KeyError if reclaimed."""
        record = self._by_location.get(location)
        if record is None or not self._live[location]:
            raise KeyError(f"location {location} does not hold a live block")
        return record

    def latest(self, chunk_id: int, block_id: int) -> StoredBlock | None:
        """Most recent live version of a block in a chunk (None if absent)."""
        for record in reversed(self._chunks.get(chunk_id, [])):
            if record.block_id == block_id and self._live[record.location]:
                return record
        return None

    def live_blocks(self, chunk_id: int) -> list[StoredBlock]:
        """All live entries of a chunk, oldest first."""
        return [r for r in self._chunks.get(chunk_id, []) if self._live[r.location]]

    def mark_dead(self, location: int) -> None:
        """Mark an entry as superseded (compaction output replaces it)."""
        if location not in self._live:
            raise KeyError(f"unknown location {location}")
        self._live[location] = False

    def gc(self, chunk_id: int) -> int:
        """Drop dead entries of a chunk; returns reclaimed bytes.

        Entries captured by a snapshot are retained even if dead.
        """
        log = self._chunks.get(chunk_id, [])
        pinned = {loc for snap in self._snapshots.values() for loc in snap}
        reclaimed = 0
        kept = []
        for record in log:
            if not self._live[record.location] and record.location not in pinned:
                reclaimed += record.size
                del self._by_location[record.location]
                del self._live[record.location]
            else:
                kept.append(record)
        self._chunks[chunk_id] = kept
        self.bytes_reclaimed += reclaimed
        return reclaimed

    def snapshot(self) -> int:
        """Pin the current live set; returns a snapshot id."""
        snap_id = next(self._snapshot_ids)
        self._snapshots[snap_id] = tuple(loc for loc, live in self._live.items() if live)
        return snap_id

    def snapshot_blocks(self, snap_id: int) -> list[StoredBlock]:
        """The blocks captured by a snapshot (still readable after GC)."""
        if snap_id not in self._snapshots:
            raise KeyError(f"unknown snapshot {snap_id}")
        return [self._by_location[loc] for loc in self._snapshots[snap_id]]

    def drop_snapshot(self, snap_id: int) -> None:
        """Release a snapshot's pins."""
        if snap_id not in self._snapshots:
            raise KeyError(f"unknown snapshot {snap_id}")
        del self._snapshots[snap_id]

    @property
    def live_bytes(self) -> int:
        """Bytes currently live across all chunks."""
        return sum(r.size for loc, r in self._by_location.items() if self._live[loc])

    def chunk_ids(self) -> typing.KeysView[int]:
        """All chunk ids ever written."""
        return self._chunks.keys()

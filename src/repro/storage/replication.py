"""Replica placement and durability tracking.

Each write is replicated to several (usually three, §2.1) storage
servers chosen "according to disk usage, distribution of switches,
loads of storage servers, and disaster recovery strategy" (§2.2.1).
:class:`ReplicationPolicy` implements a load-balanced chooser with a
fail-over path; :class:`ReplicaSet` tracks acknowledgements until a
write is durable.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.server import StorageServer


class ReplicationPolicy:
    """Chooses replica targets, balancing outstanding load across servers."""

    def __init__(self, servers: typing.Sequence["StorageServer"], replication: int = 3) -> None:
        if replication < 1:
            raise ValueError(f"replication factor must be >= 1, got {replication}")
        if len(servers) < replication:
            raise ValueError(
                f"need at least {replication} storage servers, got {len(servers)}"
            )
        self.servers = list(servers)
        self.replication = replication
        self._outstanding: dict[str, int] = {server.address: 0 for server in self.servers}

    def choose(self, exclude: typing.Collection[str] = ()) -> list["StorageServer"]:
        """Pick `replication` distinct servers, least-loaded first.

        `exclude` removes failed servers (fail-over re-replication).
        """
        candidates = [s for s in self.servers if s.address not in exclude and not s.failed]
        if len(candidates) < self.replication:
            raise RuntimeError(
                f"only {len(candidates)} healthy storage servers for "
                f"{self.replication}-way replication"
            )
        candidates.sort(key=lambda s: (self._outstanding[s.address], s.address))
        chosen = candidates[: self.replication]
        for server in chosen:
            self._outstanding[server.address] += 1
        return chosen

    def claim(self, server: "StorageServer") -> None:
        """Account one extra outstanding write on `server` (fail-over path)."""
        if server.address not in self._outstanding:
            raise KeyError(f"{server.address} is not in this policy")
        self._outstanding[server.address] += 1

    def complete(self, server: "StorageServer") -> None:
        """Report that a write to `server` finished (for load accounting)."""
        if self._outstanding[server.address] <= 0:
            raise RuntimeError(f"no outstanding writes on {server.address}")
        self._outstanding[server.address] -= 1

    def outstanding(self, server: "StorageServer") -> int:
        """Writes currently in flight to `server`."""
        return self._outstanding[server.address]


@dataclasses.dataclass
class ReplicaSet:
    """Durability state of one replicated write."""

    block_id: int
    targets: tuple[str, ...]
    acked: set = dataclasses.field(default_factory=set)

    def ack(self, address: str) -> None:
        """Record an acknowledgement from one replica target."""
        if address not in self.targets:
            raise ValueError(f"{address} is not a target of this replica set")
        self.acked.add(address)

    @property
    def is_durable(self) -> bool:
        """True once every target acknowledged (the paper acks the VM then)."""
        return self.acked == set(self.targets)

    @property
    def missing(self) -> tuple[str, ...]:
        """Targets that have not acknowledged yet."""
        return tuple(t for t in self.targets if t not in self.acked)

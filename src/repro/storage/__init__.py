"""Back-end storage substrate.

Storage servers hold the standalone back-end of the blocks (§2.1): each
runs an append-only chunk store on a flash block device, serves write
and read requests from the middle tier over RoCE, and participates in
3-way replica sets.
"""

from repro.storage.blockdev import BlockDevice
from repro.storage.chunkstore import ChunkStore, StoredBlock
from repro.storage.replication import ReplicaSet, ReplicationPolicy
from repro.storage.server import StorageServer

__all__ = [
    "BlockDevice",
    "ChunkStore",
    "ReplicaSet",
    "ReplicationPolicy",
    "StorageServer",
    "StoredBlock",
]

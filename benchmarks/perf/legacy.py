"""Pre-PR (seed) implementations benchmarked as the in-file baseline.

``BENCH_*.json`` records each hot-path benchmark twice — once against the
current implementation and once against the verbatim seed implementation
kept here — so every report carries its own baseline and the speedup
ratios stay comparable across machines. These copies are frozen on
purpose; do not "fix" them.
"""

from __future__ import annotations

import typing

from repro.compression.lz4 import (
    LAST_LITERALS,
    MAX_OFFSET,
    MF_LIMIT,
    MIN_MATCH,
    CorruptFrameError,
    _emit_sequence,
)
from repro.sim.events import Event, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class LegacyRequest(Event):
    """Seed `Request`: pending claim on a :class:`LegacyResource` slot."""

    def __init__(self, resource: "LegacyResource", priority: int) -> None:
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource
        self.priority = priority


class LegacyResource:
    """The seed `Resource`: sorted-list waiter queue.

    ``request()`` does a linear stable insert by priority and
    ``release()`` does ``list.pop(0)`` — both O(n) in queue depth, the
    quadratic behavior the heap-backed replacement removed.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[LegacyRequest] = []

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> LegacyRequest:
        req = LegacyRequest(self, priority)
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            req.succeed(req)
        else:
            index = len(self._waiting)
            while index > 0 and self._waiting[index - 1].priority > priority:
                index -= 1
            self._waiting.insert(index, req)
        return req

    def release(self, request: LegacyRequest) -> None:
        if not request.triggered:
            self._waiting.remove(request)
            return
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiting:
            nxt = self._waiting.pop(0)
            self._in_use += 1
            nxt.succeed(nxt)


def legacy_lz4_compress(data: bytes) -> bytes:
    """The seed `lz4_compress`: per-position ``bytes`` keys in an unbounded dict."""
    src = memoryview(bytes(data))
    n = len(src)
    out = bytearray()
    if n == 0:
        out.append(0)
        return bytes(out)

    match_scan_end = n - MF_LIMIT
    table: dict[bytes, int] = {}
    anchor = 0
    i = 0
    raw = src.obj

    while i < match_scan_end:
        key = raw[i : i + MIN_MATCH]
        candidate = table.get(key)
        table[key] = i
        if candidate is None or i - candidate > MAX_OFFSET:
            i += 1
            continue

        match_len = MIN_MATCH
        max_match = (n - LAST_LITERALS) - i
        while match_len < max_match and raw[candidate + match_len] == raw[i + match_len]:
            match_len += 1

        _emit_sequence(out, src[anchor:i], offset=i - candidate, match_extra=match_len - MIN_MATCH)
        i += match_len
        anchor = i

    _emit_sequence(out, src[anchor:n], offset=None, match_extra=0)
    return bytes(out)


def _legacy_read_lsic(blob: bytes, pos: int) -> tuple[int, int]:
    """Seed LSIC reader (helper-call-per-extension form)."""
    total = 0
    while True:
        if pos >= len(blob):
            raise CorruptFrameError("truncated LSIC length extension")
        byte = blob[pos]
        pos += 1
        total += byte
        if byte != 255:
            return total, pos


def legacy_lz4_decompress(blob: bytes, max_output: int = 1 << 30) -> bytes:
    """The seed `lz4_decompress`: helper calls and ``len(out)`` re-measures per sequence."""
    out = bytearray()
    pos = 0
    n = len(blob)
    if n == 0:
        raise CorruptFrameError("empty input is not a valid LZ4 block")

    while pos < n:
        token = blob[pos]
        pos += 1

        literal_len = token >> 4
        if literal_len == 15:
            extra, pos = _legacy_read_lsic(blob, pos)
            literal_len += extra
        if pos + literal_len > n:
            raise CorruptFrameError("literal run overflows input")
        out += blob[pos : pos + literal_len]
        pos += literal_len
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

        if pos == n:
            break  # final sequence has no match part

        if pos + 2 > n:
            raise CorruptFrameError("truncated match offset")
        offset = blob[pos] | (blob[pos + 1] << 8)
        pos += 2
        if offset == 0:
            raise CorruptFrameError("match offset of zero")
        if offset > len(out):
            raise CorruptFrameError("match offset reaches before output start")

        match_len = (token & 0x0F) + MIN_MATCH
        if (token & 0x0F) == 15:
            extra, pos = _legacy_read_lsic(blob, pos)
            match_len += extra

        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the copied region grows as we copy. Build
            # it by doubling the seed chunk.
            chunk = bytes(out[start:])
            while len(chunk) < match_len:
                chunk += chunk
            out += chunk[:match_len]
        if len(out) > max_output:
            raise CorruptFrameError("output exceeds max_output")

    return bytes(out)

"""Schema validation for ``BENCH_*.json`` documents.

A small hand-rolled structural checker (the container deliberately has
no ``jsonschema`` dependency): the spec below mirrors JSON Schema's
``type``/``properties``/``required`` vocabulary closely enough that CI
and tests can reject malformed or truncated benchmark documents with a
precise path in the error message.
"""

from __future__ import annotations

import typing

_NUMBER = (int, float)

#: Leaf specs are type tuples; dict specs map key -> spec. Keys listed in
#: ``__optional__`` may be absent; all other keys are required. A spec of
#: ``dict`` (the type) admits any object — used for sections whose keys
#: are data-dependent.
_TIMING = {"events": _NUMBER, "seconds": _NUMBER, "events_per_sec": _NUMBER}

_COMPRESS_CLASS = {
    "input_bytes": _NUMBER,
    "current_mb_per_sec": _NUMBER,
    "legacy_mb_per_sec": _NUMBER,
    "speedup": _NUMBER,
    "compression_ratio": _NUMBER,
}

BENCH_SPEC: dict = {
    "meta": {
        "issue": (int,),
        "schema_version": (int,),
        "quick": (bool,),
        "python": (str,),
        "platform": (str,),
        "unix_time": _NUMBER,
    },
    "kernel": {
        "timeout_fanout": _TIMING,
        "timeout_batch_fanout": dict(_TIMING, schedule_speedup=_NUMBER),
        "process_chain": _TIMING,
    },
    "resource": {
        "depth": (int,),
        "queue_ops": (int,),
        "current_ops_per_sec": _NUMBER,
        "legacy_ops_per_sec": _NUMBER,
        "speedup": _NUMBER,
    },
    "store": {"items": (int,), "seconds": _NUMBER, "ops_per_sec": _NUMBER},
    "bandwidth": {
        "transfers": (int,),
        "fast_on_events": (int,),
        "fast_off_events": (int,),
        "event_reduction": _NUMBER,
        "fast_on_transfers_per_sec": _NUMBER,
        "fast_off_transfers_per_sec": _NUMBER,
        "wall_speedup": _NUMBER,
    },
    "lz4": {
        "block_size": (int,),
        "compress_text_blocks": _COMPRESS_CLASS,
        "compress_low_redundancy_blocks": _COMPRESS_CLASS,
        "compress_corpus_blocks": _COMPRESS_CLASS,
        "compress_stream": _COMPRESS_CLASS,
        "decompress_corpus_blocks": {
            "output_bytes": _NUMBER,
            "mb_per_sec": _NUMBER,
            "legacy_mb_per_sec": _NUMBER,
            "speedup": _NUMBER,
        },
    },
    "macro": dict,
    "summary": {
        "resource_deep_queue_speedup": _NUMBER,
        "lz4_compress_low_redundancy_speedup": _NUMBER,
        "lz4_compress_corpus_speedup": _NUMBER,
        "lz4_compress_text_speedup": _NUMBER,
        "lz4_decompress_speedup": _NUMBER,
        "bandwidth_event_reduction": _NUMBER,
        "kernel_events_per_sec": _NUMBER,
        "macro_events_per_sec": dict,
        "harness_seconds": _NUMBER,
    },
}


def _check(value: typing.Any, spec: typing.Any, path: str, problems: list[str]) -> None:
    if spec is dict:
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
        return
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
            return
        optional = spec.get("__optional__", ())
        for key, sub in spec.items():
            if key == "__optional__":
                continue
            if key not in value:
                if key not in optional:
                    problems.append(f"{path}.{key}: missing")
                continue
            _check(value[key], sub, f"{path}.{key}", problems)
        return
    # Leaf: a tuple of accepted types. bool is an int subclass — reject it
    # where a number is expected unless bool is listed explicitly.
    if isinstance(value, bool) and bool not in spec:
        problems.append(f"{path}: expected {_names(spec)}, got bool")
    elif not isinstance(value, spec):
        problems.append(f"{path}: expected {_names(spec)}, got {type(value).__name__}")


def _names(spec: tuple) -> str:
    return "/".join(t.__name__ for t in spec)


def validate_bench(document: typing.Any, spec: dict | None = None) -> None:
    """Raise ``ValueError`` listing every way `document` deviates from the spec."""
    problems: list[str] = []
    _check(document, spec or BENCH_SPEC, "$", problems)
    if problems:
        raise ValueError("invalid BENCH document:\n  " + "\n  ".join(problems))

"""CLI: run the perf harness and emit a schema-validated BENCH_*.json.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.perf --output BENCH_10.json
    PYTHONPATH=src python -m benchmarks.perf --quick   # CI-sized run

    # Print per-metric deltas of a fresh run against an older report:
    PYTHONPATH=src python -m benchmarks.perf --quick --compare BENCH_6.json

    # Compare two existing reports without re-running anything:
    PYTHONPATH=src python -m benchmarks.perf --input BENCH_10.json --compare BENCH_6.json
"""

from __future__ import annotations

import argparse
import json
import sys
import typing

from benchmarks.perf.harness import BENCH_ISSUE, run_benchmarks
from benchmarks.perf.schema import validate_bench


def _numeric_leaves(document: typing.Any, prefix: str = "") -> dict[str, float]:
    """Flatten a BENCH document to ``section.path -> number`` leaves."""
    leaves: dict[str, float] = {}
    if isinstance(document, dict):
        for key, value in document.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(value, path))
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        leaves[prefix] = float(document)
    return leaves


def print_comparison(old: dict, new: dict, stream: typing.TextIO = sys.stdout) -> None:
    """Print per-metric deltas between two BENCH documents.

    Every numeric leaf present in both documents (``meta`` excluded) is
    printed as ``old -> new`` with the new/old ratio, so regressions in
    any section — including ones without a legacy twin baked into the
    harness, like decompress before schema v2 — are visible at a glance.
    """
    old_issue = old.get("meta", {}).get("issue", "?")
    new_issue = new.get("meta", {}).get("issue", "?")
    stream.write(f"comparing BENCH issue {old_issue} -> issue {new_issue}\n")
    old_leaves = _numeric_leaves({k: v for k, v in old.items() if k != "meta"})
    new_leaves = _numeric_leaves({k: v for k, v in new.items() if k != "meta"})
    shared = [path for path in new_leaves if path in old_leaves]
    if not shared:
        stream.write("  (no shared numeric metrics)\n")
        return
    width = max(len(path) for path in shared)
    for path in shared:
        before, after = old_leaves[path], new_leaves[path]
        ratio = f"{after / before:7.2f}x" if before else "      - "
        stream.write(f"  {path:<{width}}  {before:>14,.2f} -> {after:>14,.2f}  {ratio}\n")
    only_new = sorted(set(new_leaves) - set(old_leaves))
    if only_new:
        stream.write(f"  new metrics (no baseline): {', '.join(only_new)}\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Run the SmartDS-repro speed program and write BENCH_<issue>.json",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=f"BENCH_{BENCH_ISSUE}.json",
        help="where to write the benchmark document (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller inputs and fewer repeats (noisier numbers, ~6x faster)",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD.json",
        help="after the run, print per-metric deltas against this older report",
    )
    parser.add_argument(
        "--input",
        metavar="NEW.json",
        help="skip the run; load this report instead (requires --compare)",
    )
    args = parser.parse_args(argv)

    if args.input:
        if not args.compare:
            parser.error("--input only makes sense together with --compare")
        with open(args.input) as handle:
            document = json.load(handle)
        with open(args.compare) as handle:
            old = json.load(handle)
        print_comparison(old, document)
        return 0

    document = run_benchmarks(quick=args.quick)
    validate_bench(document)  # refuse to write a malformed document
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)

    summary = document["summary"]
    print(f"wrote {args.output}")
    print(f"  kernel             {summary['kernel_events_per_sec']:,.0f} events/s")
    print(
        f"  resource deep-queue {document['resource']['current_ops_per_sec']:,.0f} ops/s"
        f"  ({summary['resource_deep_queue_speedup']:.1f}x vs seed)"
    )
    bandwidth = document["bandwidth"]
    print(
        f"  bw fast path        {bandwidth['event_reduction']:.2f}x fewer events"
        f"  ({bandwidth['wall_speedup']:.2f}x wall)"
    )
    lz4 = document["lz4"]
    print(
        f"  lz4 corpus          {lz4['compress_corpus_blocks']['current_mb_per_sec']:.2f} MB/s"
        f"  ({summary['lz4_compress_corpus_speedup']:.2f}x vs seed)"
    )
    print(
        f"  lz4 text            {lz4['compress_text_blocks']['current_mb_per_sec']:.2f} MB/s"
        f"  ({summary['lz4_compress_text_speedup']:.2f}x vs seed)"
    )
    print(
        f"  lz4 decompress      {lz4['decompress_corpus_blocks']['mb_per_sec']:.2f} MB/s"
        f"  ({summary['lz4_decompress_speedup']:.2f}x vs seed)"
    )
    for name, events_per_sec in summary["macro_events_per_sec"].items():
        print(f"  macro {name:<13} {events_per_sec:,.0f} events/s (fast path off)")
    print(f"  harness time        {summary['harness_seconds']:.1f}s")

    if args.compare:
        with open(args.compare) as handle:
            old = json.load(handle)
        print()
        print_comparison(old, document)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI: run the perf harness and emit a schema-validated BENCH_*.json.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.perf --output BENCH_6.json
    PYTHONPATH=src python -m benchmarks.perf --quick   # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import BENCH_ISSUE, run_benchmarks
from benchmarks.perf.schema import validate_bench


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Run the SmartDS-repro speed program and write BENCH_<issue>.json",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=f"BENCH_{BENCH_ISSUE}.json",
        help="where to write the benchmark document (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller inputs and fewer repeats (noisier numbers, ~6x faster)",
    )
    args = parser.parse_args(argv)

    document = run_benchmarks(quick=args.quick)
    validate_bench(document)  # refuse to write a malformed document
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)

    summary = document["summary"]
    print(f"wrote {args.output}")
    print(f"  kernel             {summary['kernel_events_per_sec']:,.0f} events/s")
    print(
        f"  resource deep-queue {document['resource']['current_ops_per_sec']:,.0f} ops/s"
        f"  ({summary['resource_deep_queue_speedup']:.1f}x vs seed)"
    )
    lz4 = document["lz4"]
    print(
        f"  lz4 corpus          {lz4['compress_corpus_blocks']['current_mb_per_sec']:.2f} MB/s"
        f"  ({summary['lz4_compress_corpus_speedup']:.2f}x vs seed)"
    )
    print(
        f"  lz4 low-redundancy  "
        f"{lz4['compress_low_redundancy_blocks']['current_mb_per_sec']:.2f} MB/s"
        f"  ({summary['lz4_compress_low_redundancy_speedup']:.1f}x vs seed)"
    )
    print(f"  harness time        {summary['harness_seconds']:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The repeatable speed program: micro + macro benchmarks emitting BENCH_*.json.

Run locally with::

    PYTHONPATH=src python -m benchmarks.perf --output BENCH_6.json

See ``docs/performance.md`` for how to read the output and the baseline
numbers recorded by the PR that introduced this harness.
"""

from benchmarks.perf.harness import BENCH_ISSUE, run_benchmarks
from benchmarks.perf.schema import validate_bench

__all__ = ["BENCH_ISSUE", "run_benchmarks", "validate_bench"]

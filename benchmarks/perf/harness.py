"""Micro + macro benchmarks for the simulator hot paths and the LZ4 codec.

Every hot-path microbenchmark is measured twice — against the current
implementation and against the verbatim seed implementation from
:mod:`benchmarks.perf.legacy` — so the emitted ``BENCH_*.json`` carries
its own baseline and speedup ratios that are meaningful on any machine.

Timing discipline: each measurement is the best of several repeats
(minimum wall-clock absorbs scheduler noise), and paired current/legacy
measurements are interleaved within each repeat round so load drift
hits both sides equally.
"""

from __future__ import annotations

import platform
import sys
import time
import typing

from benchmarks.perf.legacy import LegacyResource, legacy_lz4_compress
from repro.compression.corpus import SilesiaLikeCorpus
from repro.compression.lz4 import lz4_compress, lz4_decompress
from repro.sim import kernel
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store

#: The growth-sequence issue this harness first shipped with; names the
#: default output file (``BENCH_6.json``) and is recorded in ``meta``.
BENCH_ISSUE = 6

#: Bumped when the document layout changes incompatibly.
SCHEMA_VERSION = 1


def _best_of(body: typing.Callable[[], typing.Any], repeats: int) -> float:
    """Minimum wall-clock seconds of `body` over `repeats` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def _interleaved_best(
    bodies: dict[str, typing.Callable[[], typing.Any]], repeats: int
) -> dict[str, float]:
    """Best-of timing for several bodies, interleaved round by round."""
    best = {name: float("inf") for name in bodies}
    for _ in range(repeats):
        for name, body in bodies.items():
            started = time.perf_counter()
            body()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


# -- kernel ----------------------------------------------------------------


def bench_kernel(quick: bool) -> dict:
    """Events/sec through ``Simulator.step`` for two canonical shapes.

    ``timeout_fanout`` drains a pre-scheduled batch of timeouts (pure
    heap + callback cost); ``process_chain`` runs generator processes
    each yielding a run of timeouts (adds Process resume cost — the
    shape model code actually has).
    """
    n_timeouts = 20_000 if quick else 100_000
    n_procs = 200 if quick else 1_000
    yields = 50 if quick else 100

    def timeout_fanout() -> int:
        sim = Simulator()
        for i in range(n_timeouts):
            sim.timeout(i * 1e-9)
        sim.run()
        return sim.steps

    def process_chain() -> int:
        sim = Simulator()

        def body() -> typing.Generator:
            for _ in range(yields):
                yield sim.timeout(1e-6)

        for _ in range(n_procs):
            sim.process(body())
        sim.run()
        return sim.steps

    repeats = 3 if quick else 5
    fanout_steps = timeout_fanout()
    chain_steps = process_chain()
    fanout_s = _best_of(timeout_fanout, repeats)
    chain_s = _best_of(process_chain, repeats)
    return {
        "timeout_fanout": {
            "events": fanout_steps,
            "seconds": fanout_s,
            "events_per_sec": fanout_steps / fanout_s,
        },
        "process_chain": {
            "events": chain_steps,
            "seconds": chain_s,
            "events_per_sec": chain_steps / chain_s,
        },
    }


# -- Resource / Store ------------------------------------------------------


def _drive_resource(make_resource: typing.Callable[[Simulator], typing.Any], depth: int) -> int:
    """Fill one slot, queue `depth` waiters, then grant straight through.

    Priorities descend with arrival order, so every enqueue lands at the
    front of a sorted waiter list — the worst case for the seed's linear
    insert and exactly the overload shape deep queues create. Returns the
    number of queue operations performed (enqueues + grants).
    """
    sim = Simulator()
    resource = make_resource(sim)
    held = resource.request()  # grants immediately, occupies the slot
    waiters = [resource.request(priority=-i) for i in range(depth)]
    resource.release(held)
    for waiter in waiters:
        resource.release(waiter)
    sim.run()
    return 2 * depth


def bench_resource(quick: bool) -> dict:
    """The deep-queue microbenchmark: current heap vs seed sorted list."""
    depth = 2_000 if quick else 8_000
    repeats = 3 if quick else 5
    ops = 2 * depth
    best = _interleaved_best(
        {
            "current": lambda: _drive_resource(
                lambda sim: Resource(sim, capacity=1, name="bench"), depth
            ),
            "legacy": lambda: _drive_resource(
                lambda sim: LegacyResource(sim, capacity=1, name="bench"), depth
            ),
        },
        repeats,
    )
    current = ops / best["current"]
    legacy = ops / best["legacy"]
    return {
        "depth": depth,
        "queue_ops": ops,
        "current_ops_per_sec": current,
        "legacy_ops_per_sec": legacy,
        "speedup": current / legacy,
    }


def bench_store(quick: bool) -> dict:
    """Store put/get throughput, including the blocked-getter handoff."""
    n = 20_000 if quick else 100_000
    repeats = 3 if quick else 5

    def drive() -> None:
        sim = Simulator()
        store = Store(sim, name="bench")
        for i in range(n):
            store.put(i)
        for _ in range(n):
            store.get()
        sim.run()

    seconds = _best_of(drive, repeats)
    return {"items": n, "seconds": seconds, "ops_per_sec": 2 * n / seconds}


# -- LZ4 -------------------------------------------------------------------


def _lz4_classes(corpus: SilesiaLikeCorpus, block_size: int) -> dict[str, list[bytes]]:
    """Corpus inputs grouped by redundancy class.

    ``low_redundancy`` (the x-ray and noise files) is the class the
    bounded table + skip acceleration targets; ``text`` is the
    match-dense regime; ``corpus_blocks`` is every block of every file —
    the datapath-representative mix; ``stream`` is the whole corpus
    through one compressor call (the regime where the seed's unbounded
    table kept growing).
    """
    files = list(corpus.files())

    def blocks_of(data: bytes) -> list[bytes]:
        return [data[i : i + block_size] for i in range(0, len(data), block_size)]

    text = [b for f in files if f.name.startswith(("dickens", "webster")) for b in blocks_of(f.data)]
    low = [b for f in files if f.name.startswith(("x-ray", "noise")) for b in blocks_of(f.data)]
    every = [b for f in files for b in blocks_of(f.data)]
    stream = b"".join(f.data for f in files)
    return {
        "text_blocks": text,
        "low_redundancy_blocks": low,
        "corpus_blocks": every,
        "stream": [stream],
    }


def bench_lz4(quick: bool) -> dict:
    """Compress MB/s per input class (current vs seed) + decompress MB/s."""
    corpus = SilesiaLikeCorpus()
    classes = _lz4_classes(corpus, block_size=4096)
    if quick:
        classes = {
            name: (inputs[:: max(1, len(inputs) // 24)] if name != "stream" else inputs)
            for name, inputs in classes.items()
        }
    repeats = 2 if quick else 5

    result: dict[str, typing.Any] = {"block_size": 4096}
    for name, inputs in classes.items():
        nbytes = sum(len(piece) for piece in inputs)

        def run_current(inputs: list[bytes] = inputs) -> None:
            for piece in inputs:
                lz4_compress(piece)

        def run_legacy(inputs: list[bytes] = inputs) -> None:
            for piece in inputs:
                legacy_lz4_compress(piece)

        best = _interleaved_best({"current": run_current, "legacy": run_legacy}, repeats)
        current = nbytes / best["current"] / 1e6
        legacy = nbytes / best["legacy"] / 1e6
        ratio = nbytes / sum(len(lz4_compress(piece)) for piece in inputs)
        result[f"compress_{name}"] = {
            "input_bytes": nbytes,
            "current_mb_per_sec": current,
            "legacy_mb_per_sec": legacy,
            "speedup": current / legacy,
            "compression_ratio": ratio,
        }

    blobs = [lz4_compress(piece) for piece in classes["corpus_blocks"]]
    nbytes = sum(len(piece) for piece in classes["corpus_blocks"])

    def run_decompress() -> None:
        for blob in blobs:
            lz4_decompress(blob)

    seconds = _best_of(run_decompress, repeats)
    result["decompress_corpus_blocks"] = {
        "output_bytes": nbytes,
        "mb_per_sec": nbytes / seconds / 1e6,
    }
    return result


# -- macro: canonical experiment runs --------------------------------------


def bench_macro(quick: bool) -> dict:
    """Wall-clock + simulated-events/sec for canonical quick experiment runs.

    Simulators are collected with a sim hook (the same mechanism trace
    sessions use) so the harness can total events processed across every
    simulator an experiment creates.
    """
    from repro.experiments import ext_cache, ext_chaos

    out: dict[str, typing.Any] = {}
    for name, module in (("ext_cache", ext_cache), ("ext_chaos", ext_chaos)):
        sims: list[Simulator] = []
        kernel.add_sim_hook(sims.append)
        try:
            started = time.perf_counter()
            module.run(quick=True)
            seconds = time.perf_counter() - started
        finally:
            kernel.remove_sim_hook(sims.append)
        events = sum(sim.steps for sim in sims)
        simulated = max((sim.now for sim in sims), default=0.0)
        out[name] = {
            "wall_seconds": seconds,
            "simulators": len(sims),
            "events": events,
            "events_per_sec": events / seconds if seconds else 0.0,
            "max_simulated_seconds": simulated,
        }
        if quick:
            break  # one macro run keeps the quick mode fast
    return out


# -- top level -------------------------------------------------------------


def run_benchmarks(quick: bool = False) -> dict:
    """Run every benchmark; returns the ``BENCH_*.json`` document."""
    started = time.time()
    document = {
        "meta": {
            "issue": BENCH_ISSUE,
            "schema_version": SCHEMA_VERSION,
            "quick": quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "unix_time": started,
        },
        "kernel": bench_kernel(quick),
        "resource": bench_resource(quick),
        "store": bench_store(quick),
        "lz4": bench_lz4(quick),
        "macro": bench_macro(quick),
    }
    resource = document["resource"]
    lz4 = document["lz4"]
    document["summary"] = {
        "resource_deep_queue_speedup": resource["speedup"],
        "lz4_compress_low_redundancy_speedup": lz4["compress_low_redundancy_blocks"]["speedup"],
        "lz4_compress_corpus_speedup": lz4["compress_corpus_blocks"]["speedup"],
        "kernel_events_per_sec": document["kernel"]["process_chain"]["events_per_sec"],
        "harness_seconds": time.time() - started,
    }
    return document

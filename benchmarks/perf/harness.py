"""Micro + macro benchmarks for the simulator hot paths and the LZ4 codec.

Every hot-path microbenchmark is measured twice — against the current
implementation and against the verbatim seed implementation from
:mod:`benchmarks.perf.legacy` — so the emitted ``BENCH_*.json`` carries
its own baseline and speedup ratios that are meaningful on any machine.

Timing discipline: each measurement is the best of several repeats
(minimum wall-clock absorbs scheduler noise), and paired current/legacy
measurements are interleaved within each repeat round so load drift
hits both sides equally.
"""

from __future__ import annotations

import os
import platform
import sys
import time
import typing

from benchmarks.perf.legacy import (
    LegacyResource,
    legacy_lz4_compress,
    legacy_lz4_decompress,
)
from repro.compression.corpus import SilesiaLikeCorpus
from repro.compression.lz4 import lz4_compress, lz4_decompress
from repro.sim import kernel
from repro.sim.bandwidth import BandwidthServer
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store

#: The growth-sequence issue this harness last shipped with; names the
#: default output file (``BENCH_10.json``) and is recorded in ``meta``.
BENCH_ISSUE = 10

#: Bumped when the document layout changes incompatibly.
#: v2 (issue 10): decompress gains a legacy comparison + ``speedup``,
#: new ``bandwidth`` section (fast-path event counts), macro entries
#: gain a ``fast_path`` sub-object and are measured with the bandwidth
#: fast path *off* so ``events_per_sec`` compares identical event
#: streams across reports.
SCHEMA_VERSION = 2


def _best_of(body: typing.Callable[[], typing.Any], repeats: int) -> float:
    """Minimum wall-clock seconds of `body` over `repeats` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


def _interleaved_best(
    bodies: dict[str, typing.Callable[[], typing.Any]], repeats: int
) -> dict[str, float]:
    """Best-of timing for several bodies, interleaved round by round."""
    best = {name: float("inf") for name in bodies}
    for _ in range(repeats):
        for name, body in bodies.items():
            started = time.perf_counter()
            body()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


# -- kernel ----------------------------------------------------------------


def bench_kernel(quick: bool) -> dict:
    """Events/sec through ``Simulator.step`` for two canonical shapes.

    ``timeout_fanout`` drains a pre-scheduled batch of timeouts (pure
    heap + callback cost); ``timeout_batch_fanout`` schedules the same
    storm through :meth:`Simulator.timeout_batch` (one heapify instead
    of one sift per event); ``process_chain`` runs generator processes
    each yielding a run of timeouts (adds Process resume cost — the
    shape model code actually has).
    """
    n_timeouts = 20_000 if quick else 100_000
    n_procs = 200 if quick else 1_000
    yields = 50 if quick else 100
    delays = [i * 1e-9 for i in range(n_timeouts)]

    def timeout_fanout() -> int:
        sim = Simulator()
        for delay in delays:
            sim.timeout(delay)
        sim.run()
        return sim.steps

    def timeout_batch_fanout() -> int:
        sim = Simulator()
        sim.timeout_batch(delays)
        sim.run()
        return sim.steps

    # Schedule-phase-only bodies for schedule_speedup: the drain is
    # identical either way and ~5x the schedule cost, so timing whole
    # runs would bury the difference in noise around 1.0.
    def fanout_schedule() -> None:
        sim = Simulator()
        for delay in delays:
            sim.timeout(delay)

    def batch_schedule() -> None:
        sim = Simulator()
        sim.timeout_batch(delays)

    def process_chain() -> int:
        sim = Simulator()

        def body() -> typing.Generator:
            for _ in range(yields):
                yield sim.timeout(1e-6)

        for _ in range(n_procs):
            sim.process(body())
        sim.run()
        return sim.steps

    repeats = 3 if quick else 5
    fanout_steps = timeout_fanout()
    batch_steps = timeout_batch_fanout()
    chain_steps = process_chain()
    best = _interleaved_best(
        {"fanout": timeout_fanout, "batch": timeout_batch_fanout}, repeats
    )
    fanout_s = best["fanout"]
    batch_s = best["batch"]
    sched = _interleaved_best(
        {"fanout": fanout_schedule, "batch": batch_schedule}, repeats
    )
    chain_s = _best_of(process_chain, repeats)
    return {
        "timeout_fanout": {
            "events": fanout_steps,
            "seconds": fanout_s,
            "events_per_sec": fanout_steps / fanout_s,
        },
        "timeout_batch_fanout": {
            "events": batch_steps,
            "seconds": batch_s,
            "events_per_sec": batch_steps / batch_s,
            "schedule_speedup": sched["fanout"] / sched["batch"],
        },
        "process_chain": {
            "events": chain_steps,
            "seconds": chain_s,
            "events_per_sec": chain_steps / chain_s,
        },
    }


# -- Resource / Store ------------------------------------------------------


def _drive_resource(make_resource: typing.Callable[[Simulator], typing.Any], depth: int) -> int:
    """Fill one slot, queue `depth` waiters, then grant straight through.

    Priorities descend with arrival order, so every enqueue lands at the
    front of a sorted waiter list — the worst case for the seed's linear
    insert and exactly the overload shape deep queues create. Returns the
    number of queue operations performed (enqueues + grants).
    """
    sim = Simulator()
    resource = make_resource(sim)
    held = resource.request()  # grants immediately, occupies the slot
    waiters = [resource.request(priority=-i) for i in range(depth)]
    resource.release(held)
    for waiter in waiters:
        resource.release(waiter)
    sim.run()
    return 2 * depth


def bench_resource(quick: bool) -> dict:
    """The deep-queue microbenchmark: current heap vs seed sorted list."""
    depth = 2_000 if quick else 8_000
    repeats = 3 if quick else 5
    ops = 2 * depth
    best = _interleaved_best(
        {
            "current": lambda: _drive_resource(
                lambda sim: Resource(sim, capacity=1, name="bench"), depth
            ),
            "legacy": lambda: _drive_resource(
                lambda sim: LegacyResource(sim, capacity=1, name="bench"), depth
            ),
        },
        repeats,
    )
    current = ops / best["current"]
    legacy = ops / best["legacy"]
    return {
        "depth": depth,
        "queue_ops": ops,
        "current_ops_per_sec": current,
        "legacy_ops_per_sec": legacy,
        "speedup": current / legacy,
    }


def bench_store(quick: bool) -> dict:
    """Store put/get throughput, including the blocked-getter handoff."""
    n = 20_000 if quick else 100_000
    repeats = 3 if quick else 5

    def drive() -> None:
        sim = Simulator()
        store = Store(sim, name="bench")
        for i in range(n):
            store.put(i)
        for _ in range(n):
            store.get()
        sim.run()

    seconds = _best_of(drive, repeats)
    return {"items": n, "seconds": seconds, "ops_per_sec": 2 * n / seconds}


# -- LZ4 -------------------------------------------------------------------


def _lz4_classes(corpus: SilesiaLikeCorpus, block_size: int) -> dict[str, list[bytes]]:
    """Corpus inputs grouped by redundancy class.

    ``low_redundancy`` (the x-ray and noise files) is the class the
    bounded table + skip acceleration targets; ``text`` is the
    match-dense regime; ``corpus_blocks`` is every block of every file —
    the datapath-representative mix; ``stream`` is the whole corpus
    through one compressor call (the regime where the seed's unbounded
    table kept growing).
    """
    files = list(corpus.files())

    def blocks_of(data: bytes) -> list[bytes]:
        return [data[i : i + block_size] for i in range(0, len(data), block_size)]

    text = [b for f in files if f.name.startswith(("dickens", "webster")) for b in blocks_of(f.data)]
    low = [b for f in files if f.name.startswith(("x-ray", "noise")) for b in blocks_of(f.data)]
    every = [b for f in files for b in blocks_of(f.data)]
    stream = b"".join(f.data for f in files)
    return {
        "text_blocks": text,
        "low_redundancy_blocks": low,
        "corpus_blocks": every,
        "stream": [stream],
    }


def bench_lz4(quick: bool) -> dict:
    """Compress MB/s per input class (current vs seed) + decompress MB/s."""
    corpus = SilesiaLikeCorpus()
    classes = _lz4_classes(corpus, block_size=4096)
    if quick:
        classes = {
            name: (inputs[:: max(1, len(inputs) // 24)] if name != "stream" else inputs)
            for name, inputs in classes.items()
        }
    repeats = 2 if quick else 5

    result: dict[str, typing.Any] = {"block_size": 4096}
    for name, inputs in classes.items():
        nbytes = sum(len(piece) for piece in inputs)

        def run_current(inputs: list[bytes] = inputs) -> None:
            for piece in inputs:
                lz4_compress(piece)

        def run_legacy(inputs: list[bytes] = inputs) -> None:
            for piece in inputs:
                legacy_lz4_compress(piece)

        best = _interleaved_best({"current": run_current, "legacy": run_legacy}, repeats)
        current = nbytes / best["current"] / 1e6
        legacy = nbytes / best["legacy"] / 1e6
        ratio = nbytes / sum(len(lz4_compress(piece)) for piece in inputs)
        result[f"compress_{name}"] = {
            "input_bytes": nbytes,
            "current_mb_per_sec": current,
            "legacy_mb_per_sec": legacy,
            "speedup": current / legacy,
            "compression_ratio": ratio,
        }

    blobs = [lz4_compress(piece) for piece in classes["corpus_blocks"]]
    nbytes = sum(len(piece) for piece in classes["corpus_blocks"])

    def run_decompress() -> None:
        for blob in blobs:
            lz4_decompress(blob)

    def run_legacy_decompress() -> None:
        for blob in blobs:
            legacy_lz4_decompress(blob)

    best = _interleaved_best(
        {"current": run_decompress, "legacy": run_legacy_decompress}, repeats
    )
    current = nbytes / best["current"] / 1e6
    legacy = nbytes / best["legacy"] / 1e6
    result["decompress_corpus_blocks"] = {
        "output_bytes": nbytes,
        "mb_per_sec": current,
        "legacy_mb_per_sec": legacy,
        "speedup": current / legacy,
    }
    return result


# -- bandwidth fast path ----------------------------------------------------


def _drive_transfers(fast_path: bool, n: int) -> tuple[int, float]:
    """Run `n` sequential uncontended transfers; returns (events, seconds).

    Sequential transfers on a free lane are the fast path's home regime:
    every transfer is admitted slot-free and completes in one event
    instead of the slow path's request/grant/service/completion chain.
    """
    sim = Simulator()
    pipe = BandwidthServer(
        sim, rate=1e9, per_transfer_overhead=1e-6, fast_path=fast_path
    )

    def body() -> typing.Generator:
        for _ in range(n):
            yield pipe.transfer(4096)

    sim.process(body())
    started = time.perf_counter()
    sim.run()
    return sim.steps, time.perf_counter() - started


def bench_bandwidth(quick: bool) -> dict:
    """Kernel event counts for uncontended transfers: fast path on vs off.

    ``event_reduction`` is the headline claim for the slot-free fast
    path — events per uncontended transfer with the path off divided by
    events with it on (>= 3x by design: request + grant + service +
    overhead + completion collapse into a single analytic event).
    """
    n = 5_000 if quick else 25_000
    repeats = 3 if quick else 5
    on_events, _ = _drive_transfers(True, n)
    off_events, _ = _drive_transfers(False, n)
    best = _interleaved_best(
        {
            "fast_on": lambda: _drive_transfers(True, n),
            "fast_off": lambda: _drive_transfers(False, n),
        },
        repeats,
    )
    return {
        "transfers": n,
        "fast_on_events": on_events,
        "fast_off_events": off_events,
        "event_reduction": off_events / on_events,
        "fast_on_transfers_per_sec": n / best["fast_on"],
        "fast_off_transfers_per_sec": n / best["fast_off"],
        "wall_speedup": best["fast_off"] / best["fast_on"],
    }


# -- macro: canonical experiment runs --------------------------------------


def _run_experiment(module: typing.Any, fast_path: bool) -> dict:
    """One experiment run; returns wall/events totals across its simulators.

    Simulators are collected with a sim hook (the same mechanism trace
    sessions use) so the harness can total events processed across every
    simulator an experiment creates. ``fast_path`` forces the bandwidth
    fast path on or off for the duration of the run (servers read
    ``REPRO_BW_FAST_PATH`` at construction time).
    """
    sims: list[Simulator] = []
    kernel.add_sim_hook(sims.append)
    previous = os.environ.get("REPRO_BW_FAST_PATH")
    os.environ["REPRO_BW_FAST_PATH"] = "1" if fast_path else "0"
    try:
        started = time.perf_counter()
        module.run(quick=True)
        seconds = time.perf_counter() - started
    finally:
        kernel.remove_sim_hook(sims.append)
        if previous is None:
            del os.environ["REPRO_BW_FAST_PATH"]
        else:
            os.environ["REPRO_BW_FAST_PATH"] = previous
    return {
        "wall_seconds": seconds,
        "simulators": len(sims),
        "events": sum(sim.steps for sim in sims),
        "max_simulated_seconds": max((sim.now for sim in sims), default=0.0),
    }


def bench_macro(quick: bool) -> dict:
    """Wall-clock + simulated-events/sec for canonical quick experiment runs.

    ``events_per_sec`` is measured with the bandwidth fast path *off* so
    the event stream is identical to earlier reports (same ``events``
    count) and the number is a pure kernel-throughput comparison. The
    ``fast_path`` sub-object reports the end-to-end effect of turning
    the fast path on: fewer events *and* less wall-clock for the same
    simulated outcome — its ``events_per_sec`` is intentionally not the
    headline (fewer events per second of a smaller event stream).
    """
    from repro.experiments import ext_cache, ext_chaos

    # This container's clock speed drifts +-30% on ~10 s scales, which is
    # exactly the duration of one experiment pair — three rounds give each
    # row a fair shot at a fast phase (best-of keeps the fastest).
    rounds = 1 if quick else 3
    out: dict[str, typing.Any] = {}
    for name, module in (("ext_cache", ext_cache), ("ext_chaos", ext_chaos)):
        off = _run_experiment(module, fast_path=False)
        on = _run_experiment(module, fast_path=True)
        for _ in range(rounds - 1):  # interleaved best-of to absorb drift
            off_again = _run_experiment(module, fast_path=False)
            on_again = _run_experiment(module, fast_path=True)
            if off_again["wall_seconds"] < off["wall_seconds"]:
                off = off_again
            if on_again["wall_seconds"] < on["wall_seconds"]:
                on = on_again
        entry = dict(off)
        entry["events_per_sec"] = (
            off["events"] / off["wall_seconds"] if off["wall_seconds"] else 0.0
        )
        entry["fast_path"] = {
            "wall_seconds": on["wall_seconds"],
            "events": on["events"],
            "event_reduction": off["events"] / on["events"] if on["events"] else 0.0,
            "wall_speedup": (
                off["wall_seconds"] / on["wall_seconds"] if on["wall_seconds"] else 0.0
            ),
        }
        out[name] = entry
        if quick:
            break  # one macro experiment keeps the quick mode fast
    return out


# -- top level -------------------------------------------------------------


def run_benchmarks(quick: bool = False) -> dict:
    """Run every benchmark; returns the ``BENCH_*.json`` document."""
    started = time.time()
    document = {
        "meta": {
            "issue": BENCH_ISSUE,
            "schema_version": SCHEMA_VERSION,
            "quick": quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "unix_time": started,
        },
        "kernel": bench_kernel(quick),
        "resource": bench_resource(quick),
        "store": bench_store(quick),
        "bandwidth": bench_bandwidth(quick),
        "lz4": bench_lz4(quick),
        "macro": bench_macro(quick),
    }
    resource = document["resource"]
    lz4 = document["lz4"]
    macro = document["macro"]
    document["summary"] = {
        "resource_deep_queue_speedup": resource["speedup"],
        "lz4_compress_low_redundancy_speedup": lz4["compress_low_redundancy_blocks"]["speedup"],
        "lz4_compress_corpus_speedup": lz4["compress_corpus_blocks"]["speedup"],
        "lz4_compress_text_speedup": lz4["compress_text_blocks"]["speedup"],
        "lz4_decompress_speedup": lz4["decompress_corpus_blocks"]["speedup"],
        "bandwidth_event_reduction": document["bandwidth"]["event_reduction"],
        "kernel_events_per_sec": document["kernel"]["process_chain"]["events_per_sec"],
        "macro_events_per_sec": {
            name: entry["events_per_sec"] for name, entry in macro.items()
        },
        "harness_seconds": time.time() - started,
    }
    return document

"""Bench: extension — the read path (§2.2.2) across designs."""

from repro.experiments import ext_read_path


def test_read_path_across_designs(once):
    result = once(ext_read_path.run, quick=True)
    print("\n" + result.render())
    data = result.data

    # Everyone serves every read.
    for design, stats in data.items():
        assert stats["requests"] > 0, design
        assert stats["avg_us"] > 0, design

    # The device designs keep read payloads out of host DRAM; the
    # CPU-only tier streams every block through it.
    assert data["SmartDS-1"]["memory_bytes_during_reads"] == 0
    assert data["BF2"]["memory_bytes_during_reads"] == 0
    assert data["CPU-only"]["memory_bytes_during_reads"] > 0

    # Read latencies are all in the same order of magnitude: the storage
    # round trip dominates, decompression location shifts tens of us.
    latencies = [stats["avg_us"] for stats in data.values()]
    assert max(latencies) / min(latencies) < 2.0

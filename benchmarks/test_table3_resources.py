"""Bench: Table 3 — FPGA resource consumption (exact reproduction)."""

from repro.experiments import table3_resources

#: The published Table 3 rows: name -> (kLUTs, kRegs, BRAMs).
PAPER_ROWS = {
    "Acc": (112, 109, 172),
    "SmartDS-1": (157, 143, 292),
    "SmartDS-2": (313, 285, 584),
    "SmartDS-4": (627, 571, 1168),
    "SmartDS-6": (941, 857, 1752),
}


def test_table3_resources(once):
    result = once(table3_resources.run)
    print("\n" + result.render())
    for name, (luts, regs, brams) in PAPER_ROWS.items():
        row = result.data[name]
        assert row["luts_k"] == luts, name
        assert row["regs_k"] == regs, name
        assert row["brams"] == brams, name
    # SmartDS-6 fills most of the chip but still fits (86.9 % of BRAM).
    assert 0.8 < result.data["SmartDS-6"]["utilization"]["brams"] < 1.0

"""Bench: the full paper-claim scorecard must stay green."""

from repro.experiments import validation


def test_all_claims_reproduced(once):
    result = once(validation.run, quick=True)
    print("\n" + result.render())
    assert result.data["passed"] == result.data["total"]
    assert result.data["total"] >= 16

"""Bench: Fig. 4 — RDMA throughput under MLC memory pressure."""

from repro.experiments import fig4_memory_interference


def test_fig4_rdma_collapse(once):
    result = once(fig4_memory_interference.run, quick=False)
    print("\n" + result.render())
    # Paper: uncontended RDMA forwarding is near line rate...
    assert result.data["baseline_rdma_gbps"] > 80
    # ...and collapses to ~46 % at maximum pressure.
    assert 0.3 < result.data["min_fraction"] < 0.6
    # The decline is monotone in pressure (delays sorted descending).
    fractions = [
        rdma / result.data["baseline_rdma_gbps"] for rdma in result.data["series"].y
    ]
    assert all(b <= a + 0.02 for a, b in zip(fractions, fractions[1:]))
    # MLC's own achieved bandwidth grows as its delay shrinks.
    mlc = result.data["mlc_series"].y
    assert mlc[-1] > mlc[0]

"""Bench: ablations of the SmartDS design choices (DESIGN.md §5)."""

from repro.experiments import ablations


def test_split_ablation_quantifies_aams(once):
    rows = once(ablations.split_ablation, quick=True)
    by_label = {row[0]: row for row in rows}
    smartds = by_label["AAMS split (SmartDS-1)"]
    no_split = by_label["no split (Acc)"]
    # Same engine, same throughput class...
    assert abs(smartds[1] - no_split[1]) / no_split[1] < 0.15
    # ...but the split removes host memory traffic entirely and cuts
    # per-Gb/s PCIe traffic by more than an order of magnitude.
    assert smartds[2] < 1.0 and no_split[2] > 50
    assert no_split[5] > 10 * smartds[5]


def test_recv_window_pipelines_the_split(once):
    rows = once(ablations.recv_window_ablation, quick=True)
    tput = {window: throughput for window, throughput, _avg in rows}
    # One descriptor serializes the split; a handful restores the peak.
    assert tput[1] < 0.5 * tput[64]
    assert tput[4] > 0.9 * tput[64]


def test_engine_latency_decoupled_from_throughput(once):
    rows = once(ablations.engine_latency_ablation, quick=True)
    tputs = [row[1] for row in rows]
    latencies = {row[0]: row[2] for row in rows}
    # Pipelining: deeper engines do not cost throughput...
    assert max(tputs) / min(tputs) < 1.05
    # ...but they do cost unloaded latency, roughly the added depth.
    assert latencies[18] - latencies[1] > 10


def test_compressibility_moves_the_bottleneck(once):
    rows = once(ablations.compressibility_ablation, quick=True)
    tput = {ratio: throughput for ratio, throughput in rows}
    # Incompressible blocks triple on egress: throughput ~ port/3 x ratio.
    assert tput[1.0] < tput[2.1] < tput[4.0]
    assert tput[1.0] < 50  # egress-bound at 3x amplification


def test_replication_factor_trades_throughput(once):
    rows = once(ablations.replication_ablation, quick=True)
    tput = {replicas: throughput for replicas, throughput in rows}
    assert tput[1] > tput[3]


def test_compression_bypass_costs_egress(once):
    rows = once(ablations.latency_sensitive_ablation, quick=True)
    tput = {fraction: throughput for fraction, throughput, _avg in rows}
    # Bypassing compression sends 3x raw bytes: saturated throughput drops.
    assert tput[1.0] < 0.75 * tput[0.0]

"""Bench: Fig. 7 — throughput and latency of every middle-tier design."""

from repro.experiments import fig7_throughput_latency


def test_fig7_throughput_and_latency(once):
    result = once(fig7_throughput_latency.run, quick=True)
    print("\n" + result.render())
    measurements = result.data["measurements"]
    peaks = result.data["peaks_gbps"]

    # SmartDS-1 and Acc reach their peak with two threads...
    for design in ("SmartDS-1", "Acc"):
        two_threads = next(m for m in measurements[design] if m.n_workers == 2)
        assert two_threads.throughput_gbps > 0.9 * peaks[design], design
    # ...while CPU-only needs nearly all 48 logical cores for the same level.
    cpu = {m.n_workers: m.throughput_gbps for m in measurements["CPU-only"]}
    assert cpu[48] > 0.85 * peaks["SmartDS-1"]
    assert cpu[8] < 0.5 * peaks["SmartDS-1"]
    # Fewer cores -> strictly less CPU-only throughput (compression-bound).
    cores_sorted = sorted(cpu)
    assert all(cpu[a] < cpu[b] for a, b in zip(cores_sorted, cores_sorted[1:]))
    # BF2 is capped by its ~40 Gb/s compression engine.
    assert peaks["BF2"] < 45

    # Latency when not overloaded (Fig. 7b-d): Acc highest, BF2 lowest,
    # SmartDS-1 within ~25 % of CPU-only.
    light = result.data["unloaded_latency"]
    avg = {design: m.avg_latency_us for design, m in light.items()}
    assert avg["Acc"] == max(avg.values())
    assert avg["BF2"] == min(avg.values())
    assert abs(avg["SmartDS-1"] - avg["CPU-only"]) / avg["CPU-only"] < 0.25

"""Bench: Table 1 — PCIe latency under load."""

from repro.experiments import table1_pcie


def test_table1_pcie_latency(once):
    result = once(table1_pcie.run, quick=True)
    print("\n" + result.render())
    idle = result.data["under_loaded"]
    busy = result.data["heavily_loaded"]
    # Paper shape: ~1.4 us unloaded in both directions...
    assert 0.5 < idle["h2d_us"] < 3.0
    assert 0.5 < idle["d2h_us"] < 3.0
    # ...and a multiple-x blow-up when the link is heavily loaded.
    assert busy["h2d_us"] > 3 * idle["h2d_us"]
    assert busy["d2h_us"] > 3 * idle["d2h_us"]
    # The blow-up lands in the same order of magnitude the paper reports
    # (11.3 / 6.6 us), not in the milliseconds.
    assert busy["h2d_us"] < 40
    assert busy["d2h_us"] < 40

"""Bench: Fig. 10 — linear scaling across networking ports."""

from repro.experiments import fig10_multiport


def test_fig10_linear_port_scaling(once):
    result = once(fig10_multiport.run, quick=True)
    print("\n" + result.render())
    scaling = result.data["scaling_vs_one_port"]
    # Throughput scales linearly in the number of ports (within 5 %).
    for ports, factor in scaling.items():
        assert abs(factor - ports) / ports < 0.05, (ports, factor)

    # Latency stays flat as ports are added...
    measurements = result.data["measurements"]
    latencies = [m.avg_latency_us for _ports, m in measurements]
    assert max(latencies) / min(latencies) < 1.1
    # ...and the host stays out of the datapath at every port count.
    for _ports, m in measurements:
        assert m.memory_read_gbps + m.memory_write_gbps < 0.5
        assert sum(m.pcie_gbps.values()) < 0.1 * m.throughput_gbps

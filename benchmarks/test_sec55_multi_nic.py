"""Bench: §5.5 — multiple SmartNICs per server."""

from repro.experiments import sec55_multi_nic


def test_sec55_server_scale_up(once):
    result = once(sec55_multi_nic.run, quick=True)
    print("\n" + result.render())
    full = result.data["full_server"]

    # Paper: 8 cards -> ~2.8 Tb/s. Our simulated cards land in the same
    # regime (>2 Tb/s).
    assert full.cards == 8
    assert full.throughput_gbps > 2000

    # The multiplier over a CPU-only middle tier is tens of times
    # (paper: 51.6x; ours differs mainly through the CPU-only peak).
    assert full.speedup_vs_cpu_only > 25

    # Host memory stays far below the theoretical 1228 Gb/s...
    assert full.host_memory_gbps < 400
    # ...and per-switch PCIe at worst grazes the root-port budget rather
    # than dwarfing it the way the payloads (2.8 Tb/s) would.
    assert full.pcie_per_switch_gbps < 2 * sec55_multi_nic.SWITCH_ROOT_GBPS

    # Throughput grows monotonically with card count.
    tputs = [p.throughput_gbps for p in result.data["points"]]
    assert all(b >= a for a, b in zip(tputs, tputs[1:]))

"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures in quick
mode (smaller sweeps, fewer requests) and asserts the *shape* of the
result — who wins, by roughly what factor, where the knees are. Run
with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

"""Bench: Fig. 8 — host memory and PCIe bandwidth occupation."""

from repro.experiments import fig8_bandwidth


def test_fig8_memory_and_pcie(once):
    result = once(fig8_bandwidth.run, quick=True)
    print("\n" + result.render())
    measurements = result.data["measurements"]

    def peak(design):
        return max(measurements[design], key=lambda m: m.throughput_gbps)

    cpu = peak("CPU-only")
    acc = peak("Acc")
    acc_noddio = peak("Acc w/o DDIO")
    smartds = peak("SmartDS-1")

    # CPU-only: memory reads and writes both substantial (same order).
    assert cpu.memory_read_gbps > 20 and cpu.memory_write_gbps > 20
    # Acc w/ DDIO: writes grow, reads vanish (the LLC serves the FPGA).
    assert acc.memory_write_gbps > 20
    assert acc.memory_read_gbps < 1
    # Turning DDIO off makes the reads reappear.
    assert acc_noddio.memory_read_gbps > 20
    # Acc uses two PCIe devices, roughly doubling interconnect traffic.
    assert sum(acc.pcie_gbps.values()) > 1.5 * sum(cpu.pcie_gbps.values()) * (
        acc.throughput_gbps / cpu.throughput_gbps
    )
    # SmartDS: host memory untouched, PCIe carries only headers/completions.
    assert smartds.memory_read_gbps + smartds.memory_write_gbps < 0.5
    assert sum(smartds.pcie_gbps.values()) < 0.1 * smartds.throughput_gbps

"""Bench: Fig. 9 — performance isolation under memory pressure."""

from repro.experiments import fig9_interference


def test_fig9_isolation(once):
    result = once(fig9_interference.run, quick=True)
    print("\n" + result.render())
    retained = result.data["retained_fraction"]

    # SmartDS-1 "hardly changes" under maximum memory pressure...
    assert retained["SmartDS-1"] > 0.95
    # ...while the host-memory designs lose a large share of throughput.
    assert retained["CPU-only"] < 0.7
    assert retained["Acc"] < 0.8

    # Next to SmartDS the MLC injector itself achieves *more* bandwidth
    # than next to the host-memory designs (Fig. 9a's second axis).
    def max_pressure_mlc(design):
        series = result.data["measurements"][design]
        return max(m.mlc_gbps for _delay, m in series)

    assert max_pressure_mlc("SmartDS-1") > max_pressure_mlc("CPU-only")

    # Latency isolation too: SmartDS p99 moves by <5 %, CPU-only's blows up.
    def p99_span(design):
        series = [m.p99_latency_us for _d, m in result.data["measurements"][design]]
        return max(series) / min(series)

    assert p99_span("SmartDS-1") < 1.05
    assert p99_span("CPU-only") > 1.5

"""Benchmark suites for the SmartDS reproduction (not collected by tier-1 tests)."""

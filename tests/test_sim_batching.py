"""Batched scheduling primitives: ``timeout_batch`` and ``fluid_timeout``.

``timeout_batch`` must be semantically identical to a loop of
``sim.timeout`` calls — same firing times, same relative order — while
scheduling large storms through one heapify. ``fluid_timeout`` shares
one event per (window-aligned) bucket among every caller, the opt-in
coalescing mode for periodic work where interleaving doesn't matter.
"""

import pytest

from repro.sim.events import SimulationError, Timeout
from repro.sim.kernel import Simulator
from repro.telemetry.registry import MetricsRegistry


class TestTimeoutBatch:
    def test_matches_individual_timeouts(self):
        delays = [3e-6, 1e-6, 2e-6, 1e-6, 0.0, 5e-6]

        def drive(batched: bool):
            sim = Simulator()
            fired = []
            if batched:
                events = sim.timeout_batch(delays, value="v")
            else:
                events = [sim.timeout(d, "v") for d in delays]
            for index, event in enumerate(events):
                event.callbacks.append(
                    lambda e, index=index: fired.append((sim.now, index, e.value))
                )
            sim.run()
            return fired, sim.steps

        assert drive(True) == drive(False)

    def test_large_batch_heapifies_and_preserves_order(self):
        # Large enough that the heapify branch triggers (batch bigger
        # than log-cost threshold vs the existing queue).
        sim = Simulator()
        events = sim.timeout_batch([i * 1e-9 for i in range(5000)])
        assert len(events) == 5000
        fired = []
        events[0].callbacks.append(lambda e: fired.append("first"))
        events[-1].callbacks.append(lambda e: fired.append("last"))
        sim.run()
        assert fired == ["first", "last"]
        assert sim.steps == 5000

    def test_ties_fire_in_input_order(self):
        sim = Simulator()
        fired = []
        for index, event in enumerate(sim.timeout_batch([1e-6] * 8)):
            event.callbacks.append(lambda e, index=index: fired.append(index))
        sim.run()
        assert fired == list(range(8))

    def test_small_batch_onto_large_queue_uses_heappush(self):
        # A few entries against a big queue must not pay O(queue)
        # heapify; semantics are the same either way.
        sim = Simulator()
        for i in range(4000):
            sim.timeout(1e-3 + i * 1e-9)
        early = sim.timeout_batch([1e-6, 2e-6])
        seen = []
        for event in early:
            event.callbacks.append(lambda e: seen.append(sim.now))
        sim.run(until=1e-4)
        assert seen == [pytest.approx(1e-6), pytest.approx(2e-6)]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout_batch([1e-6, -1e-9])

    def test_returns_timeouts(self):
        sim = Simulator()
        (event,) = sim.timeout_batch([1e-6], value=42)
        assert isinstance(event, Timeout)
        sim.run()
        assert event.value == 42


class TestFluidTimeout:
    def test_same_bucket_shares_one_event(self):
        sim = Simulator()
        a = sim.fluid_timeout(0.9e-3, window=1e-3)
        b = sim.fluid_timeout(0.5e-3, window=1e-3)
        assert a is b  # both round up to the 1ms boundary
        sim.run()
        assert sim.now == pytest.approx(1e-3)
        assert sim.steps == 1

    def test_distinct_buckets_get_distinct_events(self):
        sim = Simulator()
        a = sim.fluid_timeout(0.5e-3, window=1e-3)
        b = sim.fluid_timeout(1.5e-3, window=1e-3)
        assert a is not b
        sim.run()
        assert sim.steps == 2

    def test_bucket_cleans_up_after_firing(self):
        sim = Simulator()
        first = sim.fluid_timeout(1e-3, window=1e-3)
        sim.run()
        assert not sim._fluid  # registry empty: no leak across buckets
        again = sim.fluid_timeout(1e-3, window=1e-3)
        assert again is not first

    def test_waiting_processes_all_resume(self):
        sim = Simulator()
        woke = []

        def sleeper(tag):
            yield sim.fluid_timeout(0.7e-3, window=1e-3)
            woke.append((tag, sim.now))

        for tag in "abc":
            sim.process(sleeper(tag))
        sim.run()
        assert woke == [(t, pytest.approx(1e-3)) for t in "abc"]

    def test_invalid_arguments_raise(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.fluid_timeout(1e-3, window=0.0)
        with pytest.raises(SimulationError):
            sim.fluid_timeout(-1e-3, window=1e-3)


class TestFluidSampler:
    def test_samplers_share_tick_events(self, monkeypatch):
        # Two registries sampling the same period: fluid mode coalesces
        # their ticks onto shared window boundaries (one timeout per
        # tick), and both still record the full sample series.
        def drive() -> tuple[int, int, int]:
            sim = Simulator()
            first = MetricsRegistry(name="first").attach(sim)
            second = MetricsRegistry(name="second").attach(sim)
            first.start_sampler(sim, interval=1e-3)
            second.start_sampler(sim, interval=1e-3)
            sim.timeout(10.5e-3)  # workload keeping the queue non-empty
            # Deadline, not drain: two samplers keep each other's
            # timeouts in the queue, so drain mode would never stop.
            sim.run(until=9.5e-3)
            return sim.steps, len(first.samples()), len(second.samples())

        monkeypatch.delenv("REPRO_FLUID_SAMPLER", raising=False)
        exact_steps, exact_first, exact_second = drive()
        monkeypatch.setenv("REPRO_FLUID_SAMPLER", "1")
        fluid_steps, fluid_first, fluid_second = drive()
        assert fluid_first == exact_first
        assert fluid_second == exact_second
        assert fluid_steps < exact_steps  # shared ticks -> fewer events

    def test_idle_sim_drains_in_fluid_mode(self, monkeypatch):
        # On an *idle* sim, exact samplers keep each other alive forever
        # (each one's next tick defeats the others' idle-exit check —
        # hence the deadline above). Sharing the tick removes that
        # mutual keep-alive: every sampler takes the idle exit within a
        # couple of ticks and a drain-mode run terminates.
        monkeypatch.setenv("REPRO_FLUID_SAMPLER", "1")
        sim = Simulator()
        first = MetricsRegistry(name="first").attach(sim)
        second = MetricsRegistry(name="second").attach(sim)
        first.start_sampler(sim, interval=1e-3)
        second.start_sampler(sim, interval=1e-3)
        sim.run()  # drain mode: must terminate
        assert sim.now <= 3e-3  # exits within a couple of ticks
        assert first.samples() and second.samples()

"""Smoke tests: the fast examples must run end to end.

The heavyweight sweep examples (compare/multiport/interference) are
exercised through the benchmark harness; these are the functional ones
that finish in about a second each.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name", ["quickstart", "custom_engine", "maintenance_services", "full_cloud"]
)
def test_example_runs_clean(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
    # Every functional example self-verifies its data integrity.
    assert "verif" in out or "restored" in out or "replicas" in out

"""Chaos tests: storage failures under sustained load.

Invariant under any single-server failure during a write-heavy run:
every acknowledged write remains durable on three healthy replicas once
the heartbeat monitor has done its job, and no acknowledged data is
lost (functional payloads still decompress to the original bytes).
"""

import random

import pytest

from repro.compression import SilesiaLikeCorpus, lz4_decompress
from repro.core import SmartDsMiddleTier
from repro.middletier import CpuOnlyMiddleTier, HeartbeatMonitor, Testbed
from repro.sim import Simulator
from repro.telemetry.metrics import jain_fairness
from repro.units import msec
from repro.workloads import ClientDriver, WriteRequestFactory


class TestFailureUnderLoad:
    @pytest.mark.parametrize("victim_index", [0, 2, 4])
    def test_acked_writes_survive_one_failure(self, victim_index):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4)
        tier.retain_writes = True
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=victim_index),
            concurrency=8,
            warmup_fraction=0.0,
        )

        def killer():
            yield sim.timeout(msec(1))
            testbed.storage_servers[victim_index].fail()

        sim.process(killer())
        done = driver.run(120)
        result = sim.run(until=done)
        sim.run(until=sim.now + msec(30))  # let re-replication finish
        monitor.stop()

        assert result.requests == 120
        victim = testbed.storage_servers[victim_index].address
        for entries in tier._chunk_log.values():
            for entry in entries:
                holders = [address for address, _ in entry.replicas]
                assert victim not in holders
                assert len(set(holders)) == 3

    def test_functional_payloads_survive_failure(self):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = SmartDsMiddleTier(sim, testbed, n_ports=1)
        tier.retain_writes = True
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        blocks = SilesiaLikeCorpus(seed=17, file_size=8192).blocks(4096)[:16]
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, blocks=blocks, seed=1),
            concurrency=4,
            warmup_fraction=0.0,
        )

        def killer():
            yield sim.timeout(msec(0.2))
            testbed.storage_servers[1].fail()

        sim.process(killer())
        result = sim.run(until=driver.run(len(blocks)))
        sim.run(until=sim.now + msec(30))  # re-replication of early writes
        monitor.stop()
        assert result.requests == len(blocks)
        # Every block decompresses on every replica that holds it; all
        # blocks have 3 replicas even with a dead server (fail-over).
        for block_id, original in enumerate(blocks):
            replicas = 0
            for server in testbed.storage_servers:
                record = server.store.latest(0, block_id)
                if record is None or server.failed:
                    continue
                replicas += 1
                assert lz4_decompress(record.data) == original
            assert replicas == 3, f"block {block_id} has {replicas} healthy replicas"

    def test_random_failure_schedule_never_loses_acked_data(self):
        """Randomized: kill then recover servers during a sustained run."""
        rng = random.Random(9)
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=6)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4, replica_timeout=msec(2))
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=3),
            concurrency=8,
            warmup_fraction=0.0,
        )

        def chaos():
            for _ in range(3):
                yield sim.timeout(msec(rng.uniform(0.5, 2.0)))
                victim = rng.choice(testbed.storage_servers)
                victim.fail()
                yield sim.timeout(msec(rng.uniform(2.0, 4.0)))
                victim.recover()

        sim.process(chaos())
        result = sim.run(until=driver.run(200))
        assert result.requests == 200  # every request eventually acked
        # Every acked block readable from at least one live replica.
        missing = 0
        for key, addresses in tier._block_locations.items():
            found = any(
                testbed.server(address).store.latest(key[0], key[1]) is not None
                for address in addresses
            )
            missing += not found
        assert missing == 0


class TestJainFairness:
    def test_equal_allocations_are_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0])


class TestMultitenancyExperiment:
    def test_tenants_get_fair_shares(self):
        from repro.experiments.ext_multitenancy import measure_tenants

        stats = measure_tenants("SmartDS-1", n_workers=2, n_tenants=3, n_requests_per_tenant=150)
        assert len(stats["per_tenant_gbps"]) == 3
        assert stats["fairness"] > 0.98

    def test_invalid_tenant_count(self):
        from repro.experiments.ext_multitenancy import measure_tenants

        with pytest.raises(ValueError):
            measure_tenants("CPU-only", n_workers=2, n_tenants=0, n_requests_per_tenant=10)

"""Sim-time profiler: component mapping, exclusive-time folding,
collapsed stacks, and end-to-end attribution over real tier traffic."""

import pytest

from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.params import DEFAULT_PLATFORM, FlightSpec
from repro.sim import Simulator
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import (
    COMPONENTS,
    SimProfile,
    _union_length,
    compare_attribution,
    component_of,
)
from repro.telemetry.schemas import validate_profile
from repro.telemetry.spans import SpanCollector
from repro.units import usec
from repro.workloads import ClientDriver, WriteRequestFactory


class TestComponentMapping:
    @pytest.mark.parametrize(
        "name,component",
        [
            ("write_request", "client"),
            ("read_request", "client"),
            ("client.tx", "client"),
            ("net.write_request", "net"),
            ("pcie.dma", "pcie"),
            ("hbm.alloc", "hbm"),
            ("aams.split", "engine"),
            ("compress", "engine"),
            ("storage.write", "storage"),
            ("cache.hit", "cache"),
            ("admission.decide", "admission"),
            ("write.attempt", "tier"),
            ("read.attempt", "tier"),
            ("route.wrong_shard", "routing"),
            ("mystery.stage", "other"),
        ],
    )
    def test_prefix_mapping(self, name, component):
        assert component_of(name) == component
        assert component in COMPONENTS


class TestUnionLength:
    def test_overlapping_intervals_counted_once(self):
        assert _union_length([(0.0, 4.0), (3.0, 6.0)]) == pytest.approx(6.0)

    def test_disjoint_and_nested(self):
        assert _union_length([(0.0, 2.0), (5.0, 6.0), (0.5, 1.0)]) == pytest.approx(3.0)

    def test_empty(self):
        assert _union_length([]) == 0.0


def _tree(sim, collector):
    """root [0,10us]; net [1,4us]; tier [3,6us] with storage [3,5us]."""
    root = collector.request("write_request", 1)
    sim._now = usec(1)
    net = root.child("net.tx")
    sim._now = usec(3)
    tier = root.child("write.attempt")
    storage = tier.child("storage.write")
    sim._now = usec(4)
    net.finish("ok")
    sim._now = usec(5)
    storage.finish("ok")
    sim._now = usec(6)
    tier.finish("ok")
    sim._now = usec(10)
    root.finish("ok")
    return root


class TestFolding:
    def test_exclusive_subtracts_union_of_children(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        _tree(sim, collector)
        profile = SimProfile.from_collector(collector)
        rows = {row["component"]: row for row in profile.components()}
        # Root: 10us inclusive; children cover [1,4] U [3,6] = 5us.
        assert rows["client"]["inclusive_us"] == pytest.approx(10.0)
        assert rows["client"]["exclusive_us"] == pytest.approx(5.0)
        # net: leaf, 3us exclusive.
        assert rows["net"]["exclusive_us"] == pytest.approx(3.0)
        # tier [3,6] minus storage [3,5]: 1us exclusive.
        assert rows["tier"]["inclusive_us"] == pytest.approx(3.0)
        assert rows["tier"]["exclusive_us"] == pytest.approx(1.0)
        assert rows["storage"]["exclusive_us"] == pytest.approx(2.0)
        # Concurrent siblings (net and tier overlap in [3,4]) attribute
        # their overlap to *both* — total exclusive exceeds wall time
        # exactly by that concurrency (10us wall + 1us overlap).
        assert profile.total_exclusive == pytest.approx(usec(11))

    def test_child_clipped_to_parent_window(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("write_request", 1)
        late = root.child("net.rx")
        sim._now = usec(2)
        root.finish("ok")
        sim._now = usec(8)
        late.finish("ok")  # reply-path child outlives the root
        profile = SimProfile.from_collector(collector)
        rows = {row["component"]: row for row in profile.components()}
        # Only the overlap [0,2] is subtracted from the root.
        assert rows["client"]["exclusive_us"] == pytest.approx(0.0)
        assert rows["net"]["inclusive_us"] == pytest.approx(8.0)

    def test_collapsed_stacks_nanosecond_weights(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        _tree(sim, collector)
        profile = SimProfile.from_collector(collector)
        lines = dict(
            line.rsplit(" ", 1) for line in profile.collapsed().splitlines()
        )
        assert lines["write_request"] == str(int(usec(5) * 1e9))
        assert lines["write_request;net.tx"] == str(int(usec(3) * 1e9))
        assert lines["write_request;write.attempt;storage.write"] == str(
            int(usec(2) * 1e9)
        )

    def test_from_records_profiles_alert_evidence(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=1))
        _tree(sim, collector)
        profile = SimProfile.from_records(flight.records)
        assert profile.n_traces == 1
        assert profile.n_spans == 4

    def test_empty_trace_ignored(self):
        profile = SimProfile()
        profile.add_trace(())
        assert profile.n_traces == 0
        assert profile.collapsed() == ""
        assert profile.mean_exclusive_us() == {}


class TestOutputs:
    def test_to_dict_is_schema_valid(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        _tree(sim, collector)
        profile = SimProfile.from_collector(collector)
        document = profile.to_dict()
        validate_profile(document)
        assert document["n_traces"] == 1
        assert document["n_spans"] == 4

    def test_attribution_table_and_compare_render(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        _tree(sim, collector)
        profile = SimProfile.from_collector(collector)
        table = profile.attribution_table()
        assert "client" in table and "share" in table
        comparison = compare_attribution({"a": profile, "b": profile})
        assert "client" in comparison

    def test_mean_exclusive_per_trace(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        _tree(sim, collector)
        profile = SimProfile.from_collector(collector)
        means = profile.mean_exclusive_us()
        assert means["client"] == pytest.approx(5.0)


class TestEndToEnd:
    def test_real_tier_traffic_attribution(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        testbed = Testbed(sim, DEFAULT_PLATFORM, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(DEFAULT_PLATFORM, seed=1),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(12))
        profile = SimProfile.from_collector(collector)
        assert profile.n_traces == 12
        rows = {row["component"]: row for row in profile.components()}
        # The write path touches at least client, net, and storage.
        assert {"client", "net", "storage"} <= set(rows)
        assert profile.total_exclusive > 0.0
        for row in rows.values():
            assert row["inclusive_us"] >= row["exclusive_us"] >= 0.0
        assert sum(row["share"] for row in rows.values()) == pytest.approx(1.0)
        validate_profile(profile.to_dict())

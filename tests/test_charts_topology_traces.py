"""Tests for ASCII charts, fabric topology, and trace replay."""

import pytest

from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.net import NetworkPort, RoceEndpoint
from repro.net.topology import Fabric, FabricSpec
from repro.sim import Simulator
from repro.telemetry.charts import bar_chart, line_chart
from repro.telemetry.reporting import Series
from repro.units import gbps, msec
from repro.workloads import WriteRequestFactory
from repro.workloads.traces import TraceEntry, TraceReplayer, generate_trace


class TestLineChart:
    def test_renders_all_series_markers(self):
        a = Series("cpu", (1.0, 2.0, 3.0), (10.0, 20.0, 30.0))
        b = Series("smartds", (1.0, 2.0, 3.0), (40.0, 40.0, 40.0))
        text = line_chart([a, b], title="fig")
        assert "fig" in text
        assert "o cpu" in text and "x smartds" in text
        assert "o" in text and "x" in text

    def test_extremes_on_grid(self):
        series = Series("s", (0.0, 10.0), (0.0, 100.0))
        text = line_chart([series], width=20, height=8)
        lines = text.splitlines()
        assert any("100" in line for line in lines)  # y max tick
        assert "10" in lines[-2]  # x-axis tick line (legend is last)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([Series("s", (), ())])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart([Series("s", (1.0,), (1.0,))], width=5, height=2)

    def test_flat_series_does_not_crash(self):
        series = Series("flat", (1.0, 2.0), (5.0, 5.0))
        assert "flat" in line_chart([series])


class TestBarChart:
    def test_bars_proportional(self):
        text = bar_chart(["a", "b"], [50.0, 100.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unit_suffix(self):
        assert "Gb/s" in bar_chart(["x"], [1.0], unit="Gb/s")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [float("nan")])


class TestFabric:
    def _endpoint(self, sim, name):
        return RoceEndpoint(sim, NetworkPort(sim, gbps(100), f"{name}.port"), name)

    def test_same_rack_cheaper_than_cross_rack(self):
        spec = FabricSpec()
        assert spec.one_way_latency(True) < spec.one_way_latency(False)

    def test_placement_and_latency(self):
        sim = Simulator()
        fabric = Fabric()
        a = self._endpoint(sim, "a")
        b = self._endpoint(sim, "b")
        c = self._endpoint(sim, "c")
        fabric.place(a, "rack1")
        fabric.place(b, "rack1")
        fabric.place(c, "rack2")
        assert fabric.latency_between(a, b) == fabric.spec.one_way_latency(True)
        assert fabric.latency_between(a, c) == fabric.spec.one_way_latency(False)

    def test_network_spec_carries_path_latency(self):
        sim = Simulator()
        fabric = Fabric()
        fabric.place("a", "r1")
        fabric.place("b", "r2")
        spec = fabric.network_spec_between("a", "b")
        assert spec.switch_latency == fabric.spec.one_way_latency(False)
        assert spec.port_rate == gbps(100)  # other fields preserved

    def test_unplaced_endpoint_rejected(self):
        fabric = Fabric()
        with pytest.raises(KeyError):
            fabric.rack_of("ghost")

    def test_cross_rack_storage_adds_write_latency(self):
        """3-way replication across racks costs measurable latency."""

        def run(cross_rack):
            import dataclasses

            from repro.params import PlatformSpec
            from repro.workloads import ClientDriver

            fabric = Fabric()
            latency = fabric.spec.one_way_latency(not cross_rack)
            platform = PlatformSpec()
            platform = dataclasses.replace(
                platform,
                network=dataclasses.replace(platform.network, switch_latency=latency),
            )
            sim = Simulator()
            testbed = Testbed(sim, platform)
            tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
            driver = ClientDriver(
                sim, tier, WriteRequestFactory(platform, seed=1), concurrency=2
            )
            result = sim.run(until=driver.run(20))
            return result.latency.mean()

        assert run(cross_rack=True) > run(cross_rack=False)


class TestTraceGeneration:
    def test_deterministic(self):
        a = generate_trace(duration=0.01, base_rate=50_000, seed=4)
        b = generate_trace(duration=0.01, base_rate=50_000, seed=4)
        assert a == b

    def test_timestamps_sorted_and_bounded(self):
        trace = generate_trace(duration=0.01, base_rate=50_000, seed=1)
        times = [entry.at for entry in trace]
        assert times == sorted(times)
        assert all(0 <= t < 0.01 for t in times)

    def test_read_write_mix(self):
        trace = generate_trace(
            duration=0.02, base_rate=100_000, read_fraction=0.3, seed=2
        )
        reads = sum(1 for e in trace if e.kind == "read")
        writes = sum(1 for e in trace if e.kind == "write")
        assert writes > reads > 0
        # Reads only target written LBAs.
        written = {e.lba for e in trace if e.kind == "write"}
        assert all(e.lba in written for e in trace if e.kind == "read")

    def test_bursts_raise_short_term_rate(self):
        trace = generate_trace(
            duration=0.05, base_rate=20_000, burst_rate=200_000, seed=3
        )
        # Bin arrivals; the busiest bin should far exceed the average.
        bins = [0] * 50
        for entry in trace:
            bins[min(49, int(entry.at / 0.001))] += 1
        assert max(bins) > 3 * (sum(bins) / len(bins))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_trace(duration=0, base_rate=1000)
        with pytest.raises(ValueError):
            generate_trace(duration=1, base_rate=1000, read_fraction=1.0)


class TestTraceReplay:
    def test_replay_serves_whole_trace(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=8)
        factory = WriteRequestFactory(testbed.platform, seed=1)
        replayer = TraceReplayer(sim, tier, factory)
        trace = generate_trace(
            duration=msec(2), base_rate=100_000, read_fraction=0.2, seed=6
        )
        result = sim.run(until=replayer.replay(trace))
        assert result.writes + result.reads == len(trace)
        assert result.writes > 0 and result.reads > 0
        assert result.write_latency.count == result.writes
        assert result.read_latency.count == result.reads

    def test_replay_paces_arrivals(self):
        """The replay must take at least the trace's span of time."""
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=8)
        factory = WriteRequestFactory(testbed.platform, seed=1)
        replayer = TraceReplayer(sim, tier, factory)
        trace = [TraceEntry(at=i * 0.0001, kind="write", lba=i) for i in range(10)]
        result = sim.run(until=replayer.replay(trace))
        assert result.duration >= 9 * 0.0001

    def test_empty_trace_rejected(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        replayer = TraceReplayer(sim, tier, WriteRequestFactory(testbed.platform))
        with pytest.raises(ValueError):
            replayer.replay([])

"""SLO monitor: error budgets, multi-window burn-rate alerts, verdicts.

Covers spec validation, the sliding-window burn-rate math (fast trips
before slow on an acute burst), alert latching + hysteresis re-arm,
signal flavors (availability / latency / goodput floor), flight-ring
capture at trip time, schema-valid export, and the tier integration:
``platform.slos`` puts a monitor on every tier, and completions of all
terminal statuses feed it.
"""

import dataclasses

import pytest

from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.params import DEFAULT_PLATFORM, FlightSpec, SLOSpec
from repro.sim import Simulator
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.schemas import validate_slo
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    SLOMonitor,
    slo_monitor_for,
)
from repro.telemetry.spans import SpanCollector
from repro.units import msec, usec
from repro.workloads import ClientDriver, WriteRequestFactory

#: A tight spec the window tests share: 1% budget, 100 us fast window.
TIGHT = SLOSpec(
    name="avail",
    signal="availability",
    op="any",
    target=0.99,
    window=msec(2),
    fast_window=usec(100),
    slow_window=usec(500),
)


def _feed(monitor, sim, n, status, step=usec(1), op="write", **kwargs):
    """Feed `n` completion records, advancing sim time by `step` each."""
    for _ in range(n):
        sim._now += step
        monitor.record(op, status, **kwargs)


class TestSpecValidation:
    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", target=1.5)

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", signal="vibes")

    def test_goodput_needs_floor(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", signal="goodput", goodput_floor=0.0)

    def test_fast_window_must_not_exceed_slow(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", fast_window=msec(5), slow_window=msec(1))

    def test_monitor_rejects_empty_and_duplicate_specs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SLOMonitor(sim, ())
        with pytest.raises(ValueError):
            SLOMonitor(sim, (TIGHT, TIGHT))


class TestBurnRates:
    def test_acute_burst_trips_fast_burn_once(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, (TIGHT,))
        # Fill the slow window with clean history, then burst: the
        # 100 us fast window concentrates the burst (trips at ~15% bad)
        # while the 500 us slow window dilutes it below its 6% bar.
        _feed(monitor, sim, 450, "ok")
        assert monitor.alerts == []
        _feed(monitor, sim, 20, "shed")
        fast = monitor.alerts_for("avail", "fast_burn")
        assert len(fast) == 1  # latched: the burst pages exactly once
        alert = fast[0]
        assert alert.burn_rate >= TIGHT.fast_burn
        assert alert.threshold == TIGHT.fast_burn
        assert [a.kind for a in monitor.alerts] == ["fast_burn"]

    def test_rearm_after_recovery_pages_again(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, (TIGHT,))
        _feed(monitor, sim, 450, "ok")
        _feed(monitor, sim, 20, "shed")
        assert len(monitor.alerts_for("avail", "fast_burn")) == 1
        # Recovery: enough clean traffic that both windows drain and the
        # latch re-arms below half the trip threshold.
        _feed(monitor, sim, 700, "ok")
        _feed(monitor, sim, 20, "shed")
        assert len(monitor.alerts_for("avail", "fast_burn")) == 2

    def test_chronic_trickle_trips_slow_burn_only(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, (TIGHT,))
        # 10% bad, spread out: fast burn 0.1/0.01 = 10x < 14.4x, but the
        # slow threshold (6x) is exceeded.
        for index in range(200):
            sim._now += usec(1)
            monitor.record("write", "unavailable" if index % 10 == 9 else "ok")
        assert monitor.alerts_for("avail", "fast_burn") == ()
        assert len(monitor.alerts_for("avail", "slow_burn")) == 1

    def test_alert_counter_registered(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        monitor = SLOMonitor(sim, (TIGHT,), name="m0")
        _feed(monitor, sim, 50, "ok")
        _feed(monitor, sim, 20, "shed")
        counter = registry.get("slo.alerts", component="telemetry", monitor="m0")
        assert counter.value == len(monitor.alerts) > 0


class TestSignals:
    def test_op_prefix_filter(self):
        spec = dataclasses.replace(TIGHT, name="reads", op="read")
        sim = Simulator()
        monitor = SLOMonitor(sim, (spec,))
        _feed(monitor, sim, 10, "shed", op="write")
        assert monitor.state("reads").bad_total == 0
        _feed(monitor, sim, 3, "shed", op="read_request")
        assert monitor.state("reads").bad_total == 3

    def test_wrong_shard_is_ignored(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, (TIGHT,))
        _feed(monitor, sim, 10, "wrong_shard")
        state = monitor.state("avail")
        assert state.good_total == state.bad_total == 0

    def test_latency_signal_counts_slow_ok_as_bad(self):
        spec = SLOSpec(
            name="p99",
            signal="latency",
            op="any",
            target=0.9,
            latency_threshold=usec(100),
            window=msec(2),
            fast_window=usec(100),
            slow_window=usec(500),
        )
        sim = Simulator()
        monitor = SLOMonitor(sim, (spec,))
        _feed(monitor, sim, 5, "ok", latency=usec(50))
        _feed(monitor, sim, 5, "ok", latency=usec(500))
        _feed(monitor, sim, 2, "shed", latency=usec(10))
        state = monitor.state("p99")
        assert state.good_total == 5
        assert state.bad_total == 7

    def test_goodput_floor_trips_and_rearms(self):
        spec = SLOSpec(
            name="gp",
            signal="goodput",
            op="any",
            goodput_floor=1e8,  # bytes/s
            window=msec(2),
            fast_window=usec(100),
            slow_window=usec(500),
        )
        sim = Simulator()
        monitor = SLOMonitor(sim, (spec,))
        # 4 KiB per us across the warm-up: ~4e9 B/s, well above floor.
        _feed(monitor, sim, 200, "ok", nbytes=4096)
        assert monitor.alerts == []
        # Starve: traffic continues (metadata acks) but moves no bytes.
        _feed(monitor, sim, 200, "ok", nbytes=0)
        trips = monitor.alerts_for("gp", "goodput_floor")
        assert len(trips) == 1
        # Refill well past 2x the floor: the latch re-arms, a second
        # starvation pages again.
        _feed(monitor, sim, 200, "ok", nbytes=4096)
        _feed(monitor, sim, 200, "ok", nbytes=0)
        assert len(monitor.alerts_for("gp", "goodput_floor")) == 2
        assert monitor.verdict()["gp"]["met"] is False


class TestBudgets:
    def test_budget_accounting(self):
        spec = dataclasses.replace(TIGHT, target=0.98)
        sim = Simulator()
        monitor = SLOMonitor(sim, (spec,))
        _feed(monitor, sim, 98, "ok", step=usec(50))
        _feed(monitor, sim, 1, "failed", step=usec(50))
        assert monitor.budget_remaining("avail") == pytest.approx(0.4949, abs=1e-3)
        assert monitor.verdict()["avail"]["met"] is True
        _feed(monitor, sim, 4, "failed", step=usec(50))
        assert monitor.budget_remaining("avail") < 0
        assert monitor.verdict()["avail"]["met"] is False


class TestFlightCapture:
    def test_alert_ships_ring_snapshot(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=0))
        monitor = SLOMonitor(sim, (TIGHT,), flight=flight)
        for trace_id in range(5):
            root = collector.request("write_request", trace_id)
            sim._now += usec(1)
            root.finish("shed")
            monitor.record("write", "shed")
        (alert, *_rest) = monitor.alerts
        assert alert.traces  # the page carries its evidence
        assert all(record.outcome == "shed" for record in alert.traces)
        assert alert.traces == flight.snapshot()[: len(alert.traces)]


class TestExportAndDiscovery:
    def test_to_dict_is_schema_valid(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, DEFAULT_SLOS)
        _feed(monitor, sim, 30, "ok", op="read_request", latency=usec(10))
        _feed(monitor, sim, 10, "shed", op="write")
        validate_slo({"monitors": [monitor.to_dict()]})

    def test_attach_and_lookup(self):
        sim = Simulator()
        assert slo_monitor_for(sim) is None
        monitor = SLOMonitor(sim, (TIGHT,)).attach()
        assert slo_monitor_for(sim) is monitor


class TestTierIntegration:
    def test_platform_slos_build_a_tier_monitor(self):
        platform = dataclasses.replace(
            DEFAULT_PLATFORM,
            slos=(
                SLOSpec(name="writes", signal="availability", op="write", target=0.99),
            ),
        )
        sim = Simulator()
        testbed = Testbed(sim, platform, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        assert tier.slo is not None
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(platform, seed=1),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(12))
        verdict = tier.slo.verdict()["writes"]
        assert verdict["total"] == 12
        assert verdict["bad"] == 0
        assert verdict["met"] is True
        assert tier.slo.budget_remaining("writes") == pytest.approx(1.0)

    def test_session_monitor_adopted_by_tier(self):
        sim = Simulator()
        monitor = SLOMonitor(sim, (TIGHT,)).attach()
        testbed = Testbed(sim, DEFAULT_PLATFORM, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        assert tier.slo is monitor
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(DEFAULT_PLATFORM, seed=1),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(8))
        assert monitor.state("avail").good_total == 8

    def test_no_slos_costs_nothing(self):
        sim = Simulator()
        testbed = Testbed(sim, DEFAULT_PLATFORM, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        assert tier.slo is None
        assert tier._slo_monitors == ()

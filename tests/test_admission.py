"""Overload protection: admission credits, circuit breakers, the
brownout ladder, bulkhead pacing, and end-to-end shedding.

The integration tests honour ``REPRO_FAULT_SEED`` like the rest of the
chaos matrix; every shed/short-circuit schedule is deterministic given
that seed (see ``docs/robustness.md``).
"""

import dataclasses
import os

import pytest

from repro.core import SmartDsMiddleTier
from repro.middletier import CpuOnlyMiddleTier, ResponseMatcher, Testbed
from repro.middletier.admission import (
    LEVEL_FULL,
    LEVEL_NAMES,
    LEVEL_RAW_REPLICATION,
    LEVEL_SHED,
    AdmissionController,
    CircuitBreaker,
    TenantCredits,
    address_token,
    jitter_unit,
)
from repro.middletier.maintenance import HeartbeatMonitor, probe_delay
from repro.net import Message, NetworkPort, RoceEndpoint
from repro.params import DEFAULT_PLATFORM, AdmissionSpec
from repro.sim import FlowLedger, Simulator
from repro.telemetry.registry import MetricsRegistry
from repro.units import gbps, msec, usec
from repro.workloads import WriteRequestFactory

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "11"))


def _advance(sim, delay):
    def wait():
        yield sim.timeout(delay)

    sim.run(until=sim.process(wait()))


class _StubTier:
    """Just enough tier surface for a bare AdmissionController."""

    design_name = "stub"
    address = "stub0"

    def __init__(self):
        self._requests = []


def _controller(sim, **spec_overrides):
    spec = AdmissionSpec(enabled=True, **spec_overrides)
    return AdmissionController(sim, _StubTier(), spec)


def _request(vm_id="vm0"):
    return Message("write_request", vm_id, "stub0", header={"vm_id": vm_id})


class TestAdmissionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionSpec(min_credits=8, initial_credits=4)
        with pytest.raises(ValueError):
            AdmissionSpec(latency_budget=0.0)
        with pytest.raises(ValueError):
            AdmissionSpec(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdmissionSpec(breaker_jitter=1.0)
        with pytest.raises(ValueError):
            AdmissionSpec(ladder_up=(0.7, 0.55, 0.85, 0.97))  # not increasing
        with pytest.raises(ValueError):
            AdmissionSpec(ladder_margin=0.6)  # >= first rung

    def test_disabled_by_default(self):
        assert not AdmissionSpec().enabled
        assert DEFAULT_PLATFORM.admission.enabled is False


class TestTenantCredits:
    def _pool(self, **overrides):
        fields = dict(
            enabled=True,
            min_credits=4,
            initial_credits=32,
            max_credits=256,
            latency_budget=usec(100),
            ewma_alpha=1.0,
        )
        fields.update(overrides)
        return TenantCredits("vm0", AdmissionSpec(**fields))

    def test_take_and_release(self):
        pool = self._pool()
        assert pool.try_take()
        assert pool.in_use == 1
        pool.release()
        assert pool.in_use == 0

    def test_exhaustion_blocks_further_takes(self):
        pool = self._pool(min_credits=2, initial_credits=2, max_credits=2)
        assert pool.try_take() and pool.try_take()
        assert pool.exhausted
        assert not pool.try_take()

    def test_adapt_follows_littles_law(self):
        pool = self._pool()
        for _ in range(100):
            pool.release()
        pool.adapt(window=0.001)  # 100k completions/s x 100us budget = 10
        assert pool.capacity == 10

    def test_adapt_clamps_to_max(self):
        pool = self._pool()
        for _ in range(10_000):
            pool.release()
        pool.adapt(window=0.001)  # target 1000, clamped
        assert pool.capacity == 256

    def test_idle_window_does_not_starve_the_pool(self):
        pool = self._pool()
        for _ in range(100):
            pool.release()
        pool.adapt(window=0.001)
        before = pool.capacity
        pool.adapt(window=0.001)  # no completions, nothing outstanding
        assert pool.capacity == before  # idle carries no rate information

    def test_genuine_stall_decays_to_the_floor(self):
        pool = self._pool()
        for _ in range(100):
            pool.release()
        pool.adapt(window=0.001)
        assert pool.try_take()  # credits out but nothing completing
        pool.adapt(window=0.001)
        assert pool.capacity == 4  # alpha=1.0: one stalled window floors it


class TestCircuitBreaker:
    def _breaker(self, sim, address="s1", jitter=0.0, **overrides):
        spec = AdmissionSpec(
            enabled=True,
            breaker_threshold=3,
            breaker_window=usec(5000),
            breaker_open_duration=usec(2000),
            breaker_jitter=jitter,
            **overrides,
        )
        return CircuitBreaker(sim, address, spec)

    def test_threshold_failures_trip_it_open(self):
        sim = Simulator()
        breaker = self._breaker(sim)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1

    def test_stale_failures_age_out_of_the_window(self):
        sim = Simulator()
        breaker = self._breaker(sim)
        breaker.record_failure()
        breaker.record_failure()
        _advance(sim, usec(6000))  # both fall out of the 5ms window
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_closes_on_success(self):
        sim = Simulator()
        breaker = self._breaker(sim)
        for _ in range(3):
            breaker.record_failure()
        _advance(sim, usec(2500))
        assert breaker.state == "half-open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_retrips_on_failure(self):
        sim = Simulator()
        breaker = self._breaker(sim)
        for _ in range(3):
            breaker.record_failure()
        _advance(sim, usec(2500))
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_open_duration_jitter_is_deterministic_per_seed(self):
        def open_duration(seed, address):
            sim = Simulator()
            breaker = self._breaker(sim, address=address, jitter=0.25, seed=seed)
            for _ in range(3):
                breaker.record_failure()
            return breaker._open_until

        assert open_duration(1, "s1") == open_duration(1, "s1")
        assert open_duration(1, "s1") != open_duration(2, "s1")
        assert open_duration(1, "s1") != open_duration(1, "s2")
        low, high = usec(2000) * 0.75, usec(2000) * 1.25
        assert low <= open_duration(1, "s1") <= high


class TestBrownoutLadder:
    def _controller(self, **overrides):
        sim = Simulator()
        defaults = dict(queue_target=10, latency_budget=usec(500))
        defaults.update(overrides)
        return sim, _controller(sim, **defaults)

    def test_queue_depth_climbs_the_ladder_with_hysteresis(self):
        _sim, controller = self._controller()
        tier = controller.tier
        brownout = controller.brownout
        tier._requests = [None] * 7  # score 0.7: host-ingress rung
        assert brownout.current_level() == 2
        tier._requests = [None] * 6  # 0.6 is inside the hysteresis band
        assert brownout.current_level() == 2
        tier._requests = [None] * 5  # 0.5 < 0.7 - 0.1: drops one rung
        assert brownout.current_level() == 1
        tier._requests = []
        assert brownout.current_level() == LEVEL_FULL
        assert brownout.transitions.value == 3  # 0->2, 2->1, 1->0

    def test_estimated_wait_is_the_primary_signal(self):
        _sim, controller = self._controller()
        controller._completion_gap = usec(50)
        for request_id in range(20):  # 20 x 50us = 2x the 500us budget
            controller._outstanding[request_id] = ("vm0", 0.0)
        assert controller.estimated_wait() == pytest.approx(usec(1000))
        assert controller.brownout.current_level() == LEVEL_SHED
        assert controller.admit(_request()) == "overload"
        assert controller.shed_overload.value == 1

    def test_lone_tenant_starvation_stops_below_the_shed_rung(self):
        _sim, controller = self._controller(
            min_credits=1, initial_credits=1, max_credits=1
        )
        assert controller.admit(_request()) is None
        assert controller.pools["vm0"].exhausted
        score = controller.brownout.overload_score()
        assert score == pytest.approx(0.9)
        assert controller.brownout.current_level() == LEVEL_RAW_REPLICATION
        assert not controller.compression_allowed()
        assert controller.prefer_host_ingress()

    def test_level_names_cover_the_ladder(self):
        assert LEVEL_NAMES == (
            "full",
            "no-cache-fills",
            "host-ingress",
            "raw-replication",
            "shed",
        )

    def test_credit_shed_replies_before_the_ladder_engages(self):
        _sim, controller = self._controller(
            min_credits=2, initial_credits=2, max_credits=2
        )
        assert controller.admit(_request()) is None
        assert controller.admit(_request()) is None
        assert controller.admit(_request()) == "credits"
        assert controller.shed_credits.value == 1
        assert controller.shed_total == 1

    def test_release_is_idempotent(self):
        _sim, controller = self._controller()
        message = _request()
        assert controller.admit(message) is None
        controller.release(message)
        assert controller.pools["vm0"].in_use == 0
        controller.release(message)  # double release: a no-op
        assert controller.pools["vm0"].in_use == 0

    def test_idle_gap_does_not_poison_the_wait_estimate(self):
        sim, controller = self._controller()
        first, second, third = _request(), _request(), _request()
        controller.admit(first)
        _advance(sim, usec(10))
        controller.release(first)
        controller.admit(second)
        _advance(sim, usec(10))
        controller.release(second)
        gap_before = controller._completion_gap
        _advance(sim, msec(50))  # a long idle stretch between waves
        controller.admit(third)
        controller.release(third)
        # The 50ms silence is not a drain-rate observation: the EWMA
        # must still reflect the ~10us busy-period gap.
        assert controller._completion_gap == pytest.approx(gap_before)


class TestBulkhead:
    def test_background_work_proceeds_when_idle(self):
        sim = Simulator()
        controller = _controller(sim)
        done = []

        def maintenance():
            yield from controller.bulkhead.acquire()
            done.append(sim.now)

        sim.run(until=sim.process(maintenance()))
        assert done == [0.0]
        assert controller.bulkhead.deferrals.value == 0
        assert controller.bulkhead.admissions.value == 1

    def test_starved_pool_paces_background_work(self):
        sim = Simulator()
        controller = _controller(
            sim,
            min_credits=1,
            initial_credits=1,
            max_credits=1,
            maintenance_pause=usec(100),
        )
        message = _request()
        assert controller.admit(message) is None  # pool now exhausted
        done = []

        def maintenance():
            yield from controller.bulkhead.acquire()
            done.append(sim.now)

        def foreground():
            yield sim.timeout(usec(350))
            controller.release(message)

        sim.process(maintenance())
        sim.process(foreground())
        sim.run()
        assert done and done[0] >= usec(350)
        assert controller.bulkhead.deferrals.value >= 3


class TestProbeDelay:
    def test_deterministic_and_within_band(self):
        first = probe_delay(FAULT_SEED, msec(1), 0.35, "s1", 1)
        assert first == probe_delay(FAULT_SEED, msec(1), 0.35, "s1", 1)
        assert msec(1) * 0.65 <= first <= msec(1) * 1.35

    def test_decorrelates_across_seed_address_and_count(self):
        base = probe_delay(1, msec(1), 0.35, "s1", 1)
        assert base != probe_delay(2, msec(1), 0.35, "s1", 1)
        assert base != probe_delay(1, msec(1), 0.35, "s2", 1)
        assert base != probe_delay(1, msec(1), 0.35, "s1", 2)

    def test_jitter_unit_is_a_pure_function(self):
        token = address_token("storage3")
        assert address_token("storage3") == token  # process-stable hash
        assert jitter_unit(5, token, 2) == jitter_unit(5, token, 2)
        assert 0.0 <= jitter_unit(5, token, 2) < 1.0


class TestHeartbeatProbeJitter:
    def _suspect(self, seed):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        monitor = HeartbeatMonitor(
            sim, tier, interval=msec(1), timeout=msec(1), seed=seed
        )
        victim = testbed.storage_servers[1]
        victim.fail()
        sim.run(until=sim.now + msec(5))
        assert victim.address in monitor.suspected
        schedule = monitor._next_probe[victim.address]
        monitor.stop()
        sim.run(until=sim.now + msec(3))
        return victim.address, schedule

    def test_reprobe_schedule_is_seeded_and_decorrelated(self):
        address_a, schedule_a = self._suspect(seed=1)
        address_b, schedule_b = self._suspect(seed=2)
        assert address_a == address_b  # identical runs up to the jitter
        assert schedule_a != schedule_b
        _address, replay = self._suspect(seed=1)
        assert replay == schedule_a


class TestMatcherMetrics:
    def _matcher(self, sim):
        from repro.params import NetworkSpec

        spec = NetworkSpec()
        a = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "a.port"), "a", spec=spec)
        b = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "b.port"), "b", spec=spec)
        return ResponseMatcher(sim, a.connect(b))

    def test_series_registered_under_tier_matcher(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        matcher = self._matcher(sim)
        assert (
            registry.get("tier.matcher.late_replies", component="middletier")
            is matcher.late_replies
        )
        assert (
            registry.get("tier.matcher.unexpected_replies", component="middletier")
            is matcher.unexpected_replies
        )
        assert (
            registry.get("tier.matcher.forgotten_evicted", component="middletier")
            is matcher.forgotten_evicted
        )

    def test_forgotten_ring_evicts_oldest_first(self, monkeypatch):
        monkeypatch.setattr(ResponseMatcher, "FORGOTTEN_LIMIT", 4)
        sim = Simulator()
        matcher = self._matcher(sim)
        for request_id in range(6):
            matcher.expect(request_id)
            matcher.forget(request_id)
        assert list(matcher._forgotten) == [2, 3, 4, 5]
        assert matcher.forgotten_evicted.value == 2


def _tight_platform(**overrides):
    defaults = dict(
        enabled=True,
        min_credits=2,
        initial_credits=2,
        max_credits=2,
        latency_budget=msec(50),
        adapt_interval=msec(10),
    )
    defaults.update(overrides)
    return dataclasses.replace(DEFAULT_PLATFORM, admission=AdmissionSpec(**defaults))


class TestShedEndToEnd:
    def test_smartds_burst_sheds_explicitly_and_conserves_bytes(self):
        """The tier-1 guard of docs/robustness.md: a burst beyond the
        credit pool yields explicit ``status="shed"`` replies, every
        request terminates, and flow-tagged bytes balance across the
        ingress link (the conftest drain audit re-checks the ledger)."""
        sim = Simulator()
        platform = _tight_platform()
        testbed = Testbed(sim, platform, n_storage_servers=5)
        tier = SmartDsMiddleTier(sim, testbed, n_ports=1)
        ledger = FlowLedger(sim, name="shed-ledger")
        client_port = NetworkPort(sim, gbps(100), "c0.port")
        client_port.attach_ledger(ledger)
        tier_port = tier.client_endpoint.port
        tier_port.attach_ledger(ledger)
        client = RoceEndpoint(sim, client_port, "c0", spec=platform.network)
        qp = tier.attach_client(client)
        tier.start()
        factory = WriteRequestFactory(platform, seed=FAULT_SEED)
        n = 40
        replies = []

        def send_all():
            for index in range(n):
                message = factory.make()
                message.flow = f"req-{index}"
                yield qp.send(message)

        def recv_all():
            while len(replies) < n:
                replies.append((yield qp.recv()))

        sim.process(send_all())
        sim.run(until=sim.process(recv_all()))
        sim.run()

        assert len(replies) == n  # zero hung requests
        statuses = [reply.header.get("status", "ok") for reply in replies]
        assert statuses.count("ok") > 0
        assert statuses.count("shed") > 0
        assert set(statuses) <= {"ok", "shed"}
        admission = tier.admission
        assert admission is not None
        assert admission.shed_total == statuses.count("shed")
        assert admission.admitted.value == statuses.count("ok")
        assert not admission._outstanding  # every credit returned
        # Byte conservation per flow: what the client transmitted is
        # exactly what the tier's port received, shed requests included.
        for index in range(n):
            ledger.assert_balanced(
                f"req-{index}", [client_port.tx.name], [tier_port.rx.name]
            )
        # Shed replies keep the flow tag, so the shed path stays visible
        # to byte-conservation audits end to end.
        shed_flows = {reply.flow for reply in replies if reply.header.get("status") == "shed"}
        assert shed_flows
        for flow in shed_flows:
            assert ledger.total(flow, client_port.rx.name) > 0

    def test_shed_replies_are_deterministic(self):
        def signature():
            sim = Simulator()
            platform = _tight_platform()
            testbed = Testbed(sim, platform, n_storage_servers=5)
            tier = SmartDsMiddleTier(sim, testbed, n_ports=1)
            client_port = NetworkPort(sim, gbps(100), "c0.port")
            client = RoceEndpoint(sim, client_port, "c0", spec=platform.network)
            qp = tier.attach_client(client)
            tier.start()
            factory = WriteRequestFactory(platform, seed=FAULT_SEED)
            replies = []

            def send_all():
                for _ in range(24):
                    yield qp.send(factory.make())

            def recv_all():
                while len(replies) < 24:
                    replies.append((yield qp.recv()))

            sim.process(send_all())
            sim.run(until=sim.process(recv_all()))
            sim.run()
            return tuple(
                (reply.header.get("block_id"), reply.header.get("status", "ok"))
                for reply in sorted(replies, key=lambda r: r.header.get("in_reply_to", 0))
            )

        first = signature()
        assert any(status == "shed" for _lba, status in first)
        assert first == signature()


class TestOverloadExperimentCell:
    def test_sweep_point_acceptance(self):
        from repro.experiments.ext_overload import (
            TERMINAL_STATUSES,
            calibrate_saturation,
            measure_point,
            overload_platform,
        )

        platform = overload_platform()
        saturation = calibrate_saturation(platform, 128)
        assert saturation > 0
        at_1x = measure_point(saturation, 300, platform)
        at_2x = measure_point(2.0 * saturation, 300, platform)
        for point in (at_1x, at_2x):
            assert point["answered"] == point["offered"] == 300
            assert set(point["statuses"]) <= TERMINAL_STATUSES
        # The goodput plateau: 2x offered load does not collapse the tier.
        assert at_2x["goodput"] >= 0.9 * at_1x["goodput"]

"""Tests for alternate hardware-engine operations (checksum, encryption)."""

import pytest

from repro.core import DeviceBuffer, SmartDsDevice
from repro.core.engines import (
    checksum_op,
    decrypt_op,
    encrypt_op,
    lz4_compress_op,
    lz4_decompress_op,
    verify_checksum_op,
)
from repro.net.message import Payload
from repro.sim import Simulator


def run_engine(operation, payload):
    sim = Simulator()
    device = SmartDsDevice(sim)
    engine = device.instance(0).engine
    src = DeviceBuffer(size=payload.size, payload=payload)
    dest = DeviceBuffer(size=payload.size + 64)
    out = {}

    def body():
        out["result"] = yield engine.run(src, payload.size, dest, operation=operation)

    sim.process(body())
    sim.run()
    return out["result"]


class TestChecksumEngine:
    def test_appends_four_byte_trailer(self):
        payload = Payload.from_bytes(b"data block" * 40)
        result = run_engine(checksum_op, payload)
        assert result.size == payload.size + 4
        assert result.data[:-4] == payload.data

    def test_verify_roundtrip(self):
        payload = Payload.from_bytes(b"integrity" * 30)
        stamped = run_engine(checksum_op, payload)
        restored = run_engine(verify_checksum_op, stamped)
        assert restored.data == payload.data

    def test_corruption_detected(self):
        payload = Payload.from_bytes(b"integrity" * 30)
        stamped = checksum_op(payload)
        corrupted = Payload.from_bytes(b"X" + stamped.data[1:])
        with pytest.raises(ValueError, match="checksum mismatch"):
            verify_checksum_op(corrupted)

    def test_synthetic_mode_tracks_sizes(self):
        payload = Payload.synthetic(4096, 2.0)
        stamped = checksum_op(payload)
        assert stamped.size == 4100
        assert verify_checksum_op(stamped).size == 4096

    def test_too_small_payload_rejected(self):
        with pytest.raises(ValueError):
            verify_checksum_op(Payload.from_bytes(b"ab"))


class TestEncryptionEngine:
    def test_encrypt_changes_bytes_and_preserves_size(self):
        payload = Payload.from_bytes(b"secret block" * 50)
        sealed = run_engine(encrypt_op, payload)
        assert sealed.size == payload.size
        assert sealed.data != payload.data

    def test_decrypt_roundtrip(self):
        payload = Payload.from_bytes(bytes(range(256)) * 16)
        sealed = run_engine(encrypt_op, payload)
        opened = run_engine(decrypt_op, sealed)
        assert opened.data == payload.data

    def test_synthetic_mode_size_preserving(self):
        payload = Payload.synthetic(4096, 2.0)
        assert encrypt_op(payload).size == 4096
        assert decrypt_op(payload).size == 4096


class TestOperationComposition:
    def test_compress_then_encrypt_then_invert(self):
        """An at-rest pipeline: LZ4 -> encrypt, inverted on the way back."""
        payload = Payload.from_bytes(b"compress me please " * 200)
        compressed = lz4_compress_op(payload)
        sealed = encrypt_op(compressed)
        assert sealed.size == compressed.size < payload.size
        opened = decrypt_op(sealed)
        restored = lz4_decompress_op(
            Payload(
                size=opened.size,
                data=opened.data,
                is_compressed=True,
                original_size=payload.size,
            )
        )
        assert restored.data == payload.data

    def test_engine_counters_track_alternate_ops(self):
        payload = Payload.from_bytes(b"counting" * 64)
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine
        src = DeviceBuffer(size=payload.size, payload=payload)
        dest = DeviceBuffer(size=payload.size + 8)

        def body():
            yield engine.run(src, payload.size, dest, operation=checksum_op)

        sim.process(body())
        sim.run()
        assert engine.blocks_processed.value == 1
        assert engine.bytes_out.value == payload.size + 4

"""Property-based tests of kernel, bandwidth, and metric invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import BandwidthServer, Resource, Simulator
from repro.telemetry.metrics import LatencyRecorder


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_clock_is_monotone_for_any_timeout_set(delays):
    """Whatever timeouts are scheduled, observed time never decreases."""
    sim = Simulator()
    observed = []

    def body(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(body(delay))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=25),
    st.floats(min_value=10.0, max_value=1e6),
    st.integers(min_value=1, max_value=4),
)
def test_bandwidth_server_conserves_bytes_and_respects_rate(sizes, rate, lanes):
    """Served bytes equal offered bytes, and the makespan is never faster
    than the pipe's aggregate rate allows."""
    sim = Simulator()
    pipe = BandwidthServer(sim, rate=rate, lanes=lanes)

    def body(n):
        yield pipe.transfer(n)

    for n in sizes:
        sim.process(body(n))
    sim.run()
    assert pipe.bytes_served == sum(sizes)
    # A lane serves at rate/lanes; total work cannot finish faster than
    # the busiest possible schedule allows.
    lower_bound = sum(sizes) / rate
    assert sim.now >= lower_bound * (1 - 1e-9)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=20),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = {"value": 0}

    def worker(hold):
        req = resource.request()
        yield req
        peak["value"] = max(peak["value"], resource.in_use)
        yield sim.timeout(hold)
        resource.release(req)

    for hold in hold_times:
        sim.process(worker(hold))
    sim.run()
    assert peak["value"] <= capacity
    assert resource.in_use == 0
    assert resource.queue_length == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_percentiles_are_monotone_and_bounded(samples):
    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record(sample)
    fractions = [0.1, 0.5, 0.9, 0.99, 0.999, 1.0]
    values = [recorder.percentile(f) for f in fractions]
    assert values == sorted(values)
    assert min(samples) <= values[0]
    assert values[-1] == max(samples)
    # The mean lies in [min, max] up to rounding of the final division;
    # slack must scale with the samples (an absolute epsilon is
    # meaningless at 1e6).
    slack = 1e-9 * max(1.0, max(samples))
    assert min(samples) - slack <= recorder.mean() <= max(samples) + slack


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_process_chains_preserve_causality(steps):
    """A chain of processes each waiting on the previous one finishes at
    the sum of its delays, regardless of unrelated concurrent noise."""
    sim = Simulator()

    def link(prev, delay):
        if prev is not None:
            yield prev
        yield sim.timeout(delay)
        return sim.now

    def noise(delay):
        yield sim.timeout(delay)

    prev = None
    total = 0.0
    for noise_delay, chain_delay in steps:
        sim.process(noise(noise_delay))
        prev = sim.process(link(prev, chain_delay))
        total += chain_delay
    result = sim.run(until=prev)
    assert result == pytest.approx(total)

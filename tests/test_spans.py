"""Request-scoped causal tracing: span units, end-to-end datapath
traces, the failover/degradation reports, and the zero-cost discipline.

The end-to-end tests run real workloads through the middle tier and
assert on the span trees the datapath emits — including the satellite
guarantees: a failed-over read records one ``read.attempt`` span per
attempt with exactly one ``ok``, and an unavailable read's critical
path names the give-up stage.
"""

import json
import time

import pytest

from repro.core import SmartDsMiddleTier
from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.net.message import Message
from repro.sim import Simulator
from repro.telemetry.profiler import COMPONENTS, component_of
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import OUTCOMES, SpanCollector, TraceSession
from repro.units import usec
from repro.workloads import ClientDriver, WriteRequestFactory

TIER_FACTORIES = [
    lambda sim, testbed: CpuOnlyMiddleTier(sim, testbed, n_workers=2),
    lambda sim, testbed: SmartDsMiddleTier(sim, testbed, n_ports=1),
]
TIER_IDS = ["cpu-only", "smartds"]


def _write_then_locate(sim, tier, testbed, n_writes=8, concurrency=4, seed=1):
    """Run a short write phase; return (driver, replica addresses of LBA 0)."""
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(testbed.platform, seed=seed),
        concurrency=concurrency,
        warmup_fraction=0.0,
    )
    sim.run(until=driver.run(n_writes))
    return driver, tier._block_locations[(0, 0)]


class TestSpan:
    def test_child_and_finish(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("write_request", 1, vm="vm0")
        child = root.child("client.tx", port=0)
        sim._now = 2.5  # advance time directly; no processes needed
        child.finish("ok", nbytes=4096)
        assert child.parent_id == root.span_id
        assert child.trace_id == 1
        assert child.duration == pytest.approx(2.5)
        assert child.outcome == "ok"
        assert child.nbytes == 4096
        assert child.attrs == {"port": 0}

    def test_first_finish_wins(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        span = collector.request("r", 1)
        span.finish("degraded", nbytes=7)
        span.finish("ok", nbytes=9)  # ignored, never raises
        assert span.outcome == "degraded"
        assert span.nbytes == 7

    def test_event_is_zero_duration(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("r", 1)
        marker = root.event("cache.miss")
        assert marker.duration == 0.0
        assert marker.outcome == "ok"
        assert marker.parent_id == root.span_id

    def test_child_of_finished_parent_allowed(self):
        # Reply-path stages hang off parents that already closed.
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("r", 1)
        root.finish("ok")
        late = root.child("net.reply")
        assert late.parent_id == root.span_id

    def test_outcome_vocabulary(self):
        assert OUTCOMES == ("ok", "degraded", "retried", "failed", "shed")


class TestSpanCollector:
    def test_trace_tree_queries(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("r", 42)
        a = root.child("a")
        b = root.child("b")
        grandchild = a.child("a.a")
        assert collector.trace_ids == (42,)
        assert collector.root(42) is root
        assert collector.children(root) == (a, b)
        assert collector.children(a) == (grandchild,)
        assert len(collector.trace(42)) == 4

    def test_limit_drops_beyond_cap(self):
        sim = Simulator()
        collector = SpanCollector(sim, limit=2)
        root = collector.request("r", 1)
        root.child("kept")
        root.child("dropped")
        assert len(collector.spans) == 2
        assert collector.spans_dropped == 1

    def test_cap_evicts_oldest_root_first(self):
        # Ring semantics: at the cap, the *oldest trace* is evicted
        # whole, so the buffer always holds the newest complete trees.
        sim = Simulator()
        collector = SpanCollector(sim, limit=4)
        for trace_id in (1, 2):
            root = collector.request("r", trace_id)
            root.child("stage").finish()
        assert collector.trace_ids == (1, 2)
        # Trace 3's root is the 5th span: trace 1 (2 spans) must go.
        collector.request("r", 3)
        assert collector.trace_ids == (2, 3)
        assert collector.trace(1) == ()
        assert collector.spans_dropped == 2
        assert collector.traces_evicted == 1
        # The evicted trace's trees are gone but the newer ones intact.
        assert [span.trace_id for span in collector.spans] == [2, 2, 3]

    def test_cap_honored_under_concurrent_roots(self):
        sim = Simulator()
        limit = 6
        collector = SpanCollector(sim, limit=limit)
        created = 0
        roots = [collector.request("r", trace_id) for trace_id in range(4)]
        created += len(roots)
        for name in ("a", "b"):  # interleave children across open traces
            for root in roots:
                root.child(name)
                created += 1
                assert len(collector.spans) <= limit
        # Conservation: every span created was either kept or counted.
        assert collector.spans_dropped == created - len(collector.spans)
        assert collector.traces_evicted > 0

    def test_one_giant_trace_drops_new_spans_not_old(self):
        sim = Simulator()
        collector = SpanCollector(sim, limit=3)
        root = collector.request("r", 1)
        root.child("kept")
        root.child("kept2")
        root.child("dropped")  # the trace *is* the oldest: drop the new span
        assert collector.trace_ids == (1,)
        assert len(collector.spans) == 3
        assert collector.spans_dropped == 1
        assert collector.traces_evicted == 0

    def test_dropped_span_counter_exposed_in_registry(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        collector = SpanCollector(sim, limit=1)
        root = collector.request("r", 1)
        root.child("dropped")
        series = registry.get("trace.spans_dropped", component="telemetry")
        assert series is not None
        assert series.value == 1
        assert collector.spans_dropped == 1
        dump = registry.to_dict()
        assert any(entry["name"] == "trace.spans_dropped" for entry in dump["series"])

    def test_critical_path_follows_latest_finish(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("r", 1)
        fast = root.child("fast")
        slow = root.child("slow")
        sim._now = 1.0
        fast.finish("ok")
        sim._now = 3.0
        slow_child = slow.child("slow.inner")
        sim._now = 4.0
        slow_child.finish("retried")
        slow.finish("ok")
        root.finish("ok")
        path = collector.critical_path(1)
        assert [span.name for span in path] == ["r", "slow", "slow.inner"]
        text = collector.format_critical_path(1)
        assert "slow.inner" in text and "retried" in text

    def test_critical_path_of_unknown_trace(self):
        collector = SpanCollector(Simulator())
        assert collector.critical_path(99) == []
        assert "no trace recorded" in collector.format_critical_path(99)

    def test_chrome_trace_export_is_valid_json(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("r", 1, policy={"max": 3}, rate=float("inf"))
        sim._now = 1e-6
        root.finish("ok", nbytes=64)
        open_span = root.child("still.open")
        document = collector.to_chrome_trace(pid=7)
        json.dumps(document)  # strictly serialisable, exotic attrs and all
        events = document["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 2
        complete = spans[0]
        # Both spans fold to the "other" component: one process, pid
        # namespaced under the collector's pid, named for Perfetto.
        other_pid = 7 * 100 + COMPONENTS.index("other")
        assert complete["pid"] == other_pid and complete["tid"] == 1
        assert complete["ts"] == pytest.approx(0.0)
        assert complete["dur"] == pytest.approx(1.0)  # microseconds
        assert complete["args"]["outcome"] == "ok"
        assert complete["args"]["bytes"] == 64
        assert spans[1]["args"]["outcome"] == "open"
        assert open_span.end is None
        names = {e["name"]: e for e in metadata}
        assert names["process_name"]["args"]["name"] == "sim7 other"
        assert names["thread_name"]["tid"] == 1
        assert names["process_sort_index"]["args"]["sort_index"] == COMPONENTS.index("other")

    def test_chrome_trace_groups_spans_by_component(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        root = collector.request("write_request", 9)
        root.child("net.write_request").finish()
        root.child("admission.shed").finish("shed")
        root.finish("shed")
        document = collector.to_chrome_trace(pid=1)
        by_pid = {}
        for event in document["traceEvents"]:
            if event["ph"] == "M" and event["name"] == "process_name":
                by_pid[event["pid"]] = event["args"]["name"]
        assert set(by_pid.values()) == {"sim1 client", "sim1 net", "sim1 admission"}
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        for span in spans:
            assert by_pid[span["pid"]].endswith(component_of(span["name"]))

    def test_write_chrome_trace(self, tmp_path):
        sim = Simulator()
        collector = SpanCollector(sim)
        collector.request("r", 1).finish("ok")
        path = tmp_path / "trace.json"
        collector.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        assert document["traceEvents"]

    def test_detach_restores_untraced_sim(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        assert sim._span_collector is collector
        collector.detach()
        assert sim._span_collector is None

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            SpanCollector(Simulator(), limit=0)


class TestEndToEndTraces:
    @pytest.mark.parametrize("tier_factory", TIER_FACTORIES, ids=TIER_IDS)
    def test_every_write_request_traces_completely(self, tier_factory):
        sim = Simulator()
        collector = SpanCollector(sim)
        testbed = Testbed(sim, n_storage_servers=3)
        tier = tier_factory(sim, testbed)
        _write_then_locate(sim, tier, testbed, n_writes=8)
        sim.run()

        assert len(collector.trace_ids) == 8
        for trace_id in collector.trace_ids:
            root = collector.root(trace_id)
            assert root is not None and root.name == "write_request"
            assert root.outcome == "ok"
            spans = collector.trace(trace_id)
            # At least one *complete* child span per request beyond the root.
            assert any(s.end is not None and s.parent_id is not None for s in spans)
            names = {s.name for s in spans}
            assert "client.tx" in names
            assert "net.write_request" in names
            assert any(s.name == "storage.write" and s.outcome == "ok" for s in spans)

    @pytest.mark.parametrize("tier_factory", TIER_FACTORIES, ids=TIER_IDS)
    def test_failover_read_records_one_ok_attempt(self, tier_factory):
        """Satellite: N attempt spans, exactly one ``ok``, the rest retried."""
        sim = Simulator()
        collector = SpanCollector(sim)
        testbed = Testbed(sim, n_storage_servers=5)
        tier = tier_factory(sim, testbed)
        driver, locations = _write_then_locate(sim, tier, testbed)
        testbed.server(locations[0]).fail()  # the replica attempt 1 targets

        sim.run(until=driver.run_reads([0], concurrency=1))
        sim.run()

        read_ids = [
            tid for tid in collector.trace_ids
            if collector.root(tid) is not None and collector.root(tid).name == "read_request"
        ]
        assert len(read_ids) == 1
        spans = collector.trace(read_ids[0])
        attempts = [s for s in spans if s.name == "read.attempt"]
        assert len(attempts) >= 2  # primary timed out, fail-over succeeded
        outcomes = [s.outcome for s in attempts]
        assert outcomes.count("ok") == 1
        assert all(outcome == "retried" for outcome in outcomes if outcome != "ok")
        # The timed-out attempt names the dead replica.
        assert attempts[0].attrs["server"] == locations[0]
        assert collector.root(read_ids[0]).outcome == "ok"

    @pytest.mark.parametrize("tier_factory", TIER_FACTORIES, ids=TIER_IDS)
    def test_unavailable_read_critical_path_names_the_giveup(self, tier_factory):
        sim = Simulator()
        collector = SpanCollector(sim)
        testbed = Testbed(sim, n_storage_servers=5)
        tier = tier_factory(sim, testbed)
        driver, locations = _write_then_locate(sim, tier, testbed)
        for address in locations:
            testbed.server(address).fail()

        sim.run(until=driver.run_reads([0], concurrency=1))
        sim.run()

        read_ids = [
            tid for tid in collector.trace_ids
            if collector.root(tid) is not None and collector.root(tid).name == "read_request"
        ]
        assert len(read_ids) == 1
        root = collector.root(read_ids[0])
        assert root.outcome == "failed"
        path = collector.critical_path(read_ids[0])
        names = [span.name for span in path]
        assert "read.unavailable" in names
        giveup = next(span for span in path if span.name == "read.unavailable")
        assert giveup.outcome == "failed"
        assert giveup.attrs["max_attempts"] >= 1  # RetryPolicy.describe()
        text = collector.format_critical_path(read_ids[0])
        assert "read.unavailable" in text and "failed" in text


class TestTraceSession:
    def test_attaches_to_sims_created_inside_only(self):
        before = Simulator()
        with TraceSession(sample_interval=None) as session:
            inside = Simulator()
        after = Simulator()
        assert before._span_collector is None
        assert inside._span_collector is session.collectors[0]
        assert inside._metrics_registry is session.registries[0]
        assert after._span_collector is None
        assert len(session.collectors) == 1

    def test_merged_chrome_trace_namespaces_pids_per_sim(self):
        with TraceSession(sample_interval=None) as session:
            for _ in range(2):
                sim = Simulator()
                sim._span_collector.request("r", 1).finish("ok")
        document = session.to_chrome_trace()
        # Component pids are namespaced per collector: sim N's processes
        # live in [N*100, N*100+len(COMPONENTS)).
        pids = {event["pid"] for event in document["traceEvents"]}
        assert {pid // 100 for pid in pids} == {1, 2}
        assert session.total_spans == 2
        assert session.total_traces == 2

    def test_sampler_runs_and_still_drains(self):
        with TraceSession(sample_interval=usec(100)):
            sim = Simulator()
            gauge = sim._metrics_registry.gauge("depth")

            def work():
                for level in range(5):
                    gauge.set(level)
                    yield sim.timeout(usec(250))

            sim.process(work())
            sim.run()  # drain mode: the daemon sampler must not wedge this
            samples = sim._metrics_registry.samples()
            assert len(samples) >= 5
            assert any(sample["gauges"] for sample in samples)

    def test_interesting_trace_prefers_non_ok(self):
        with TraceSession(sample_interval=None) as session:
            sim = Simulator()
            sim._span_collector.request("boring", 1).finish("ok")
            spicy = sim._span_collector.request("spicy", 2)
            spicy.child("read.attempt").finish("retried")
            spicy.finish("ok")
        collector, trace_id = session.interesting_trace()
        assert trace_id == 2

    def test_interesting_trace_falls_back_to_slowest(self):
        with TraceSession(sample_interval=None) as session:
            sim = Simulator()
            fast = sim._span_collector.request("fast", 1)
            sim._now = 1.0
            fast.finish("ok")
            slow = sim._span_collector.request("slow", 2)
            sim._now = 5.0
            slow.finish("ok")
        _collector, trace_id = session.interesting_trace()
        assert trace_id == 2

    def test_empty_session(self):
        with TraceSession(sample_interval=None) as session:
            pass
        assert session.interesting_trace() is None
        assert session.to_chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ns"}


class TestZeroCostDiscipline:
    def test_untraced_message_carries_no_span(self):
        sim = Simulator()
        assert sim._span_collector is None
        message = Message("write_request", "a", "b")
        assert message.span is None

    def test_untraced_guard_cost_is_negligible(self):
        """The whole untraced cost is one attribute load + ``is not None``.

        Bound it in absolute terms: the guard must stay orders of
        magnitude below the cheapest simulated event's bookkeeping
        (~1 us of host time), so an untraced run cannot measurably
        differ from the uninstrumented seed.
        """
        message = Message("write_request", "a", "b")
        n = 200_000
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            for _ in range(n):
                if message.span is not None:  # the instrumented hot path
                    raise AssertionError("untraced message grew a span")
            best = min(best, time.perf_counter() - started)
        per_site = best / n
        assert per_site < 1e-6  # < 1 us per instrumentation site

    def test_untraced_sites_allocate_nothing(self):
        """Telemetry-off sites build no label dicts, f-strings, or spans.

        Deterministic (allocation-counting, not timing): run the guards a
        site executes on an untraced simulator many times and require the
        net traced allocation to stay flat — an accidental per-iteration
        allocation would grow it by at least n * minimum-object-size.
        """
        import tracemalloc

        sim = Simulator()
        message = Message("write_request", "a", "b")
        collector = sim._span_collector
        n = 10_000
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(n):
                if collector is not None:  # generator-side site
                    raise AssertionError("collector attached unexpectedly")
                if message.span is not None:  # transport/server-side site
                    raise AssertionError("untraced message grew a span")
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Allow slack for interpreter-internal bookkeeping, but far less
        # than one object per iteration (n * 16 bytes minimum).
        assert after - before < 4096

    def test_untraced_hot_path_within_five_percent_of_uninstrumented(self):
        """The guarded hot path times within 5% of the same path unguarded.

        The measured unit is the real generator hot-path slice (build a
        request message and its reply event, as ``workloads.generators``
        does per request); the guarded variant adds the two telemetry
        checks that slice executes when tracing is off. Samples are
        interleaved plain/guarded within every round so drift in machine
        load hits both variants equally, and min-of-rounds absorbs the
        remaining noise.
        """
        sim = Simulator()
        n = 20_000

        def plain():
            event = sim.event
            started = time.perf_counter()
            for seq in range(n):
                message = Message("write_request", "a", "b")
                event(name="reply")
            return time.perf_counter() - started

        def guarded():
            event = sim.event
            collector = sim._span_collector
            started = time.perf_counter()
            for seq in range(n):
                message = Message("write_request", "a", "b")
                if collector is not None:  # generator instrumentation site
                    raise AssertionError("collector attached unexpectedly")
                if message.span is not None:  # transport instrumentation site
                    raise AssertionError("untraced message grew a span")
                event(name="reply")
            return time.perf_counter() - started

        plain()  # warm up allocator and caches
        guarded()
        best_plain = best_guarded = float("inf")
        for _ in range(9):
            best_plain = min(best_plain, plain())
            best_guarded = min(best_guarded, guarded())
        assert best_guarded <= best_plain * 1.05

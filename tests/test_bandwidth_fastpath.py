"""Fast/slow-path equivalence for the slot-free BandwidthServer fast path.

The slot-free fast path must be a pure implementation detail: for any
schedule of transfers — uncontended, bursty, prioritized, with or
without per-transfer overhead — completion times, transfer values,
meter contents, and FlowLedger booking must be bit-identical with the
fast path forced off versus on. These tests drive seeded randomized
contention schedules through both configurations and compare every
observable, including sweeps over the same seeds an experiment's
``REPRO_FAULT_SEED`` fault plans draw from.
"""

import random

import pytest

from repro.sim.bandwidth import BandwidthServer
from repro.sim.debug import FlowLedger
from repro.sim.kernel import Simulator
from repro.telemetry.metrics import BandwidthMeter


def _run_schedule(
    fast_path: bool,
    seed: int,
    lanes: int = 2,
    overhead: float = 0.0,
    producers: int = 4,
    transfers: int = 60,
    max_gap: float = 2e-6,
):
    """Drive a randomized transfer schedule; returns every observable."""
    sim = Simulator()
    pipe = BandwidthServer(
        sim,
        rate=8e9,
        name="pipe",
        lanes=lanes,
        per_transfer_overhead=overhead,
        fast_path=fast_path,
    )
    meter = BandwidthMeter("shared")
    ledger = FlowLedger(name="ledger")
    pipe.attach_meter(meter)
    pipe.attach_ledger(ledger)
    completions = []

    def producer(pid: int):
        rng = random.Random(seed * 1009 + pid)
        for i in range(transfers):
            gap = rng.choice([0.0, rng.random() * max_gap])
            if gap:
                yield sim.timeout(gap)
            nbytes = rng.randrange(64, 65536)
            value = yield pipe.transfer(
                nbytes, priority=rng.randrange(-2, 3), flow=f"flow{pid}"
            )
            completions.append((pid, i, sim.now, value))

    for pid in range(producers):
        sim.process(producer(pid), name=f"producer{pid}")
    sim.run()
    return {
        "completions": sorted(completions),
        "bytes_served": pipe.bytes_served,
        "meter": (meter.total_bytes, meter.events, meter.first_event, meter.last_event),
        "ledger": ledger._cells,
        "final_time": sim.now,
    }


class TestFastPathEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23, 1234])
    def test_randomized_contention_is_bit_identical(self, seed):
        off = _run_schedule(fast_path=False, seed=seed)
        on = _run_schedule(fast_path=True, seed=seed)
        assert on == off

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_equivalence_with_per_transfer_overhead(self, seed):
        # Overhead delays completion but must not occupy the lane; the
        # fast path folds it into its single event.
        off = _run_schedule(fast_path=False, seed=seed, overhead=5e-7)
        on = _run_schedule(fast_path=True, seed=seed, overhead=5e-7)
        assert on == off

    @pytest.mark.parametrize("seed", [5, 17])
    def test_equivalence_single_lane_heavy_contention(self, seed):
        # One lane and zero gaps: almost every transfer queues, so the
        # fast path admits rarely and materialization must hand exact
        # FIFO state to the slow path.
        off = _run_schedule(
            fast_path=False, seed=seed, lanes=1, producers=6, max_gap=2e-7
        )
        on = _run_schedule(
            fast_path=True, seed=seed, lanes=1, producers=6, max_gap=2e-7
        )
        assert on == off

    def test_priority_burst_orders_identically(self):
        # A simultaneous burst with distinct priorities: the first
        # transfer may take the fast path, the rest queue by priority.
        # Grant order (hence completion order) must match the slow path.
        def run(fast_path: bool):
            sim = Simulator()
            pipe = BandwidthServer(sim, rate=1e9, lanes=1, fast_path=fast_path)
            order = []

            def one(tag: str, priority: int):
                yield pipe.transfer(4096, priority=priority)
                order.append((tag, sim.now))

            for tag, priority in [("a", 2), ("b", -1), ("c", 0), ("d", -2)]:
                sim.process(one(tag, priority))
            sim.run()
            return order

        assert run(True) == run(False)

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_fault_seed_style_sweep(self, seed, monkeypatch):
        # The same seeds CI's chaos matrix passes via REPRO_FAULT_SEED:
        # equivalence must hold for every seeded schedule, not a lucky
        # one. The env var is set for fidelity with that harness even
        # though the schedule derives from the seed directly.
        monkeypatch.setenv("REPRO_FAULT_SEED", str(seed))
        off = _run_schedule(
            fast_path=False, seed=seed, lanes=3, producers=5, overhead=1e-7
        )
        on = _run_schedule(
            fast_path=True, seed=seed, lanes=3, producers=5, overhead=1e-7
        )
        assert on == off


class TestFastPathMechanics:
    def test_uncontended_event_reduction_is_at_least_3x(self):
        def drive(fast_path: bool) -> int:
            sim = Simulator()
            pipe = BandwidthServer(
                sim, rate=1e9, per_transfer_overhead=1e-6, fast_path=fast_path
            )

            def body():
                for _ in range(100):
                    yield pipe.transfer(4096)

            sim.process(body())
            sim.run()
            return sim.steps

        slow = drive(False)
        fast = drive(True)
        assert slow / fast >= 3.0, f"only {slow / fast:.2f}x fewer events"

    def test_fast_path_counters_and_busy_lanes(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=1e9, lanes=2, fast_path=True)

        def body():
            done = pipe.transfer(1000)
            assert pipe.fast_transfers == 1
            assert pipe.busy_lanes == 1
            yield done
            # Service ended; the lazy reap must drop the lane hold.
            assert pipe.busy_lanes == 0

        sim.process(body())
        sim.run()
        assert pipe.slow_transfers == 0
        assert pipe.bytes_served == 1000

    def test_env_flag_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_BW_FAST_PATH", "0")
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=1e9)
        assert pipe.fast_path is False
        monkeypatch.setenv("REPRO_BW_FAST_PATH", "1")
        assert BandwidthServer(sim, rate=1e9).fast_path is True
        # An explicit constructor argument beats the environment.
        assert BandwidthServer(sim, rate=1e9, fast_path=True).fast_path is True

    def test_materialization_preserves_lane_accounting(self):
        # Saturate both lanes via the fast path, then queue a third
        # transfer: materialization converts the holds to real slots and
        # the queued transfer starts exactly when a lane frees.
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=2e9, lanes=2, fast_path=True)
        finished = []

        def body():
            first = pipe.transfer(2000)  # fast, lane 0
            second = pipe.transfer(4000)  # fast, lane 1
            third = pipe.transfer(2000)  # queues -> materializes holds
            assert pipe.slow_transfers == 1
            assert pipe.busy_lanes == 2
            yield first
            yield second
            yield third
            finished.append(sim.now)

        sim.process(body())
        sim.run()
        # lane rate is 1e9 B/s: first ends at 2us, third starts then and
        # ends at 4us; second ends at 4us as well.
        assert finished == [pytest.approx(4e-6)]
        assert pipe.bytes_served == 8000

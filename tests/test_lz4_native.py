"""Optional native LZ4 backend: gating, fidelity, and ratio parity.

The native backend (the ``lz4`` PyPI package's block API) is an opt-in
accelerator behind ``REPRO_LZ4_NATIVE=1``; pure Python remains the
default and the fidelity reference. When the package is installed the
native output must round-trip byte-exactly through the *pure*
``lz4_decompress`` (same block format) and corpus compression ratios
must stay within 2% of the pure codec. Without the package the flag
must fall back to the pure paths silently.
"""

import pytest

from repro.compression.corpus import SilesiaLikeCorpus
from repro.compression.lz4 import (
    lz4_compress,
    lz4_decompress,
    native_backend_available,
)

needs_native = pytest.mark.skipif(
    not native_backend_available(), reason="lz4 PyPI package not installed"
)


def _corpus_blocks(block_size: int = 4096) -> list[bytes]:
    files = list(SilesiaLikeCorpus().files())
    return [
        f.data[i : i + block_size]
        for f in files
        for i in range(0, len(f.data), block_size)
    ]


class TestGating:
    def test_flag_off_means_pure_python(self, monkeypatch):
        # Without the env flag the native module must not be consulted,
        # installed or not: output is the pure codec's, byte for byte.
        monkeypatch.delenv("REPRO_LZ4_NATIVE", raising=False)
        data = b"the quick brown fox " * 300
        pure = lz4_compress(data)
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "0")
        assert lz4_compress(data) == pure

    def test_flag_without_package_falls_back(self, monkeypatch):
        # REPRO_LZ4_NATIVE=1 with no package installed must silently use
        # the pure codec (containers without the wheel keep working).
        if native_backend_available():
            pytest.skip("native backend installed; fallback not reachable")
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "1")
        data = b"fallback path " * 500
        blob = lz4_compress(data)
        assert lz4_decompress(blob) == data

    def test_stats_hook_stays_pure(self, monkeypatch):
        # The _stats diagnostic hook is only meaningful for the pure
        # scan; requesting it must bypass the native delegation.
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "1")
        stats: dict = {}
        blob = lz4_compress(b"stats stay pure " * 400, _stats=stats)
        assert stats["table_slots"] > 0
        assert lz4_decompress(blob) == b"stats stay pure " * 400


@needs_native
class TestNativeFidelity:
    def test_round_trips_corpus_byte_exactly(self, monkeypatch):
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "1")
        for block in _corpus_blocks():
            blob = lz4_compress(block)
            assert lz4_decompress(blob) == block

    def test_ratios_within_2_percent_of_pure(self, monkeypatch):
        blocks = _corpus_blocks()
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "0")
        pure_total = sum(len(lz4_compress(b)) for b in blocks)
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "1")
        native_total = sum(len(lz4_compress(b)) for b in blocks)
        raw = sum(len(b) for b in blocks)
        pure_ratio = raw / pure_total
        native_ratio = raw / native_total
        assert abs(native_ratio - pure_ratio) / pure_ratio <= 0.02, (
            f"native ratio {native_ratio:.4f} vs pure {pure_ratio:.4f} "
            "diverges by more than 2%"
        )

    def test_empty_and_tiny_inputs(self, monkeypatch):
        monkeypatch.setenv("REPRO_LZ4_NATIVE", "1")
        for data in (b"", b"a", b"abc", b"x" * 64):
            assert lz4_decompress(lz4_compress(data)) == data

"""Property-based tests of the append-only chunk store.

A random interleaving of appends, overwrites, dead-marking, GC, and
snapshots must preserve the store's core invariants: live bytes equal
the sum of live entries, `latest` always returns the newest live
version, reclaimed + live never exceeds appended, and snapshots are
immutable views.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage import ChunkStore


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5), st.integers(1, 512)),
        min_size=1,
        max_size=40,
    )
)
def test_latest_returns_newest_version(appends):
    store = ChunkStore()
    newest = {}
    for chunk_id, block_id, size in appends:
        record = store.append(chunk_id, block_id, size)
        newest[(chunk_id, block_id)] = record.location
    for (chunk_id, block_id), location in newest.items():
        assert store.latest(chunk_id, block_id).location == location


class ChunkStoreMachine(RuleBasedStateMachine):
    """Random walks over the chunk store API."""

    def __init__(self):
        super().__init__()
        self.store = ChunkStore()
        self.live_locations = {}  # location -> size
        self.dead_locations = set()
        self.snapshots = {}  # snap id -> frozenset(locations at snap time)

    @rule(chunk=st.integers(0, 2), block=st.integers(0, 4), size=st.integers(1, 256))
    def append(self, chunk, block, size):
        record = self.store.append(chunk, block, size)
        self.live_locations[record.location] = size

    @rule()
    def mark_one_dead(self):
        if not self.live_locations:
            return
        location = next(iter(self.live_locations))
        self.store.mark_dead(location)
        del self.live_locations[location]
        self.dead_locations.add(location)

    @rule(chunk=st.integers(0, 2))
    def gc(self, chunk):
        reclaimed = self.store.gc(chunk)
        assert reclaimed >= 0

    @rule()
    def snapshot(self):
        snap = self.store.snapshot()
        self.snapshots[snap] = set(self.live_locations)

    @rule()
    def drop_a_snapshot(self):
        if not self.snapshots:
            return
        snap = next(iter(self.snapshots))
        self.store.drop_snapshot(snap)
        del self.snapshots[snap]

    @invariant()
    def live_bytes_match_model(self):
        assert self.store.live_bytes == sum(self.live_locations.values())

    @invariant()
    def live_entries_readable(self):
        for location, size in self.live_locations.items():
            assert self.store.read(location).size == size

    @invariant()
    def snapshots_remain_complete(self):
        for snap, locations in self.snapshots.items():
            snapshot_locations = {r.location for r in self.store.snapshot_blocks(snap)}
            assert locations <= snapshot_locations

    @invariant()
    def accounting_conserves_bytes(self):
        assert self.store.bytes_reclaimed <= self.store.bytes_appended


TestChunkStoreStateMachine = ChunkStoreMachine.TestCase
TestChunkStoreStateMachine.settings = settings(max_examples=30, deadline=None)

"""Tests of the Table 2 API: the paper's Listing 1, executable.

The central test transcribes Listing 1 almost line for line onto the
simulated SmartDS and checks that a write request is split, compressed
on the hardware engine, and forwarded to a storage server — with the
payload never touching host memory.
"""

import pytest

from repro.core import SmartDsApi, SmartDsDevice
from repro.hostmodel import DdioLlc, MemorySubsystem
from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim import Simulator

HEAD_SIZE = 64
MAX_SIZE = 4096 + 512


def make_plain_endpoint(sim, name):
    platform = PlatformSpec()
    port = NetworkPort(sim, rate=platform.network.port_rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=platform.network)


class TestMemoryApi:
    def test_host_and_dev_alloc(self):
        sim = Simulator()
        api = SmartDsApi(SmartDsDevice(sim))
        h_buf = api.host_alloc(MAX_SIZE)
        d_buf = api.dev_alloc(MAX_SIZE)
        assert h_buf.size == MAX_SIZE
        assert d_buf.size == MAX_SIZE
        api.dev_free(d_buf)
        assert api.device.allocator.allocated == 0

    def test_bad_alloc_rejected(self):
        sim = Simulator()
        api = SmartDsApi(SmartDsDevice(sim))
        with pytest.raises(ValueError):
            api.host_alloc(0)
        with pytest.raises(ValueError):
            api.dev_alloc(-1)


class TestOpenRoceInstance:
    def test_context_exposes_endpoint_and_engine(self):
        sim = Simulator()
        api = SmartDsApi(SmartDsDevice(sim, n_ports=2))
        ctx0 = api.open_roce_instance(0)
        ctx1 = api.open_roce_instance(1)
        assert ctx0.endpoint is not ctx1.endpoint
        assert ctx0.engine is not ctx1.engine

    def test_out_of_range_instance(self):
        sim = Simulator()
        api = SmartDsApi(SmartDsDevice(sim, n_ports=1))
        with pytest.raises(ValueError):
            api.open_roce_instance(1)


class TestListingOne:
    """The paper's running example, end to end."""

    def test_serve_one_write_request(self):
        sim = Simulator()
        host_memory = MemorySubsystem.for_host(sim)
        device = SmartDsDevice(sim, host_memory=host_memory, host_llc=DdioLlc())
        api = SmartDsApi(device)

        vm = make_plain_endpoint(sim, "vm")
        storage = make_plain_endpoint(sim, "storage")

        served = {}

        def middle_tier():
            # Listing 1, lines 2-11.
            h_buf_recv = api.host_alloc(MAX_SIZE)
            h_buf_send = api.host_alloc(MAX_SIZE)
            d_buf_recv = api.dev_alloc(MAX_SIZE)
            d_buf_send = api.dev_alloc(MAX_SIZE)
            ctx = api.open_roce_instance(0)
            qp_recv = vm.connect(ctx.endpoint).peer
            qp_send = ctx.connect_qp(storage)

            # Listing 1, lines 14-17: split recv.
            event = api.dev_mixed_recv(qp_recv, h_buf_recv, HEAD_SIZE, d_buf_recv, MAX_SIZE)
            yield from api.poll(event)
            payload_size = event.size

            # Lines 19-21: flexible host-side header processing.
            parsed = h_buf_recv.content
            h_buf_send.content = {"kind": "storage_write", **parsed}

            if parsed.get("latency_sensitive"):
                # Lines 24-27: forward raw.
                send = api.dev_mixed_send(qp_send, h_buf_send, HEAD_SIZE, d_buf_recv, payload_size)
                yield from api.poll(send)
            else:
                # Lines 29-35: compress on engine 0, then send.
                compress = api.dev_func(
                    d_buf_recv, payload_size, d_buf_send, MAX_SIZE, engine=ctx.engine
                )
                yield from api.poll(compress)
                compressed_size = compress.size
                send = api.dev_mixed_send(
                    qp_send, h_buf_send, HEAD_SIZE, d_buf_send, compressed_size
                )
                yield from api.poll(send)
            served["payload_size"] = payload_size

        def client():
            qp = vm.queue_pairs[0]
            request = Message(
                kind="write_request",
                src="vm",
                dst="tier",
                header_size=HEAD_SIZE,
                payload=Payload.synthetic(4096, ratio=2.0),
                header={"vm_id": "vm0", "block_id": 7, "latency_sensitive": False},
            )
            yield qp.send(request)

        def storage_side():
            qp = storage.queue_pairs[0]
            message = yield qp.recv()
            served["storage_got"] = message

        sim.process(middle_tier())
        sim.run(until=0.001)  # give client/storage processes time to exist
        sim.process(client())
        sim.process(storage_side())
        sim.run()

        assert served["payload_size"] == 4096
        stored = served["storage_got"]
        assert stored.kind == "storage_write"
        assert stored.payload.is_compressed
        assert stored.payload.size == 2048
        assert stored.header["block_id"] == 7
        # AAMS's whole point: the 4 KB payload never crossed into host DRAM.
        assert host_memory.total_bytes == 0

    def test_functional_bytes_roundtrip_through_engine(self):
        """Real bytes: the engine really LZ4-compresses them."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm = make_plain_endpoint(sim, "vm")
        data = b"silesia-like block content " * 150
        out = {}

        def middle_tier():
            ctx = api.open_roce_instance(0)
            qp = vm.connect(ctx.endpoint).peer
            h_buf = api.host_alloc(HEAD_SIZE)
            d_in = api.dev_alloc(len(data) + 512)
            d_out = api.dev_alloc(len(data) + 512)
            event = api.dev_mixed_recv(qp, h_buf, HEAD_SIZE, d_in, len(data) + 512)
            yield from api.poll(event)
            compress = api.dev_func(d_in, event.size, d_out, len(data) + 512, ctx.engine)
            yield from api.poll(compress)
            out["compressed"] = d_out.payload

        def client():
            qp = vm.queue_pairs[0]
            yield qp.send(
                Message(
                    "write_request",
                    "vm",
                    "tier",
                    header_size=HEAD_SIZE,
                    payload=Payload.from_bytes(data),
                )
            )

        sim.process(middle_tier())
        sim.run(until=0.001)
        sim.process(client())
        sim.run()

        from repro.compression import lz4_decompress

        compressed = out["compressed"]
        assert compressed.is_compressed
        assert compressed.size < len(data)
        assert lz4_decompress(compressed.data) == data


class TestSplitBehaviour:
    def test_header_only_messages_bypass_split(self):
        """Acks flow whole to the host receive queue, like a plain NIC."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        vm = make_plain_endpoint(sim, "vm")
        qp = vm.connect(device.instance(0).endpoint)
        got = []

        def receiver():
            message = yield qp.peer.recv()
            got.append(message.kind)

        def sender():
            yield qp.send(Message("storage_ack", "vm", "tier", header_size=64))

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == ["storage_ack"]

    def test_payload_message_waits_for_descriptor(self):
        """RNR behaviour: a large message blocks until a descriptor is posted."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm = make_plain_endpoint(sim, "vm")
        qp = vm.connect(device.instance(0).endpoint)
        times = {}

        def sender():
            yield qp.send(
                Message("write_request", "vm", "t", payload=Payload.synthetic(4096, 2.0))
            )
            times["delivered"] = sim.now

        def late_poster():
            yield sim.timeout(0.001)
            h_buf = api.host_alloc(64)
            d_buf = api.dev_alloc(MAX_SIZE)
            event = api.dev_mixed_recv(qp.peer, h_buf, 64, d_buf, MAX_SIZE)
            yield from api.poll(event)
            times["split_done"] = sim.now

        sim.process(sender())
        sim.process(late_poster())
        sim.run()
        assert times["split_done"] >= 0.001
        assert times["delivered"] >= 0.001

    def test_descriptor_validation(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm = make_plain_endpoint(sim, "vm")
        qp = vm.connect(device.instance(0).endpoint)
        h_buf = api.host_alloc(16)
        d_buf = api.dev_alloc(64)
        with pytest.raises(ValueError):
            api.dev_mixed_recv(qp.peer, h_buf, 32, d_buf, 64)  # h_size > buffer
        with pytest.raises(ValueError):
            api.dev_mixed_recv(qp.peer, h_buf, 16, d_buf, 128)  # d_size > buffer

    def test_foreign_qp_rejected(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        left = make_plain_endpoint(sim, "a")
        right = make_plain_endpoint(sim, "b")
        foreign_qp = left.connect(right)
        with pytest.raises(ValueError):
            api.dev_mixed_recv(foreign_qp, api.host_alloc(64), 64, api.dev_alloc(64), 64)
